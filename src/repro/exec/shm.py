"""Zero-copy shared-memory data plane for the sharded execution engine.

The PR 7 engine shipped every shard's point slice — O(n·d) pickled bytes —
through the command pipe on *every* iteration, so IPC dwarfed the kernel
work ("Exact Acceleration of K-Means++ and K-Means||" makes the same
observation for distributed k-means: it pays off only when per-round
communication is O(k·d)).  This module is the fix: the point set and the
per-shard persistent state (labels, upper/lower bounds) are published
**once per fit** into ``multiprocessing.shared_memory`` segments; workers
attach — read-only to the points, read-write to their own disjoint state
slice — and the per-iteration pipe traffic collapses to the centroid
broadcast.

Integrity
---------
Every segment starts with a fixed 64-byte header stamped by the
publisher: magic, format version, dtype, shape, a CRC32 of the fit-key
token the segment belongs to, and (for immutable payloads) a CRC32 of the
payload bytes.  :func:`attach_shm_array` validates the header against the
:class:`ShmArraySpec` the supervisor shipped and raises
:class:`~repro.common.exceptions.ShmIntegrityError` on any disagreement —
a worker must never silently compute on foreign bytes.  Mutable segments
(state slices the workers themselves write) stamp the CRC of the
*published* payload and skip the payload check on attach: a respawned
worker legitimately attaches mid-fit, after the bytes have moved on.

Naming
------
Segment names come from :func:`segment_name` and are a pure function of
the fit token (:func:`repro.exec.checkpoint.fit_token`), the publishing
process id, a per-process lease sequence number, and the segment role —
**never** RNG, ``uuid`` or wall-clock time (the R012 analysis rule
enforces this project-wide).  Determinism keeps chaos replays exact;
pid + sequence keep concurrent fits of identical inputs collision-free.

Lifecycle
---------
:class:`ShmLease` owns every segment of one fit.  ``release()`` is
idempotent and unlinks on every exit path the engine has: the sharded
mixin calls it in a ``finally`` around ``fit`` (normal finish,
``ShardFailedError``, ``KeyboardInterrupt``, worker kill), and a
module-level ``atexit`` backstop releases anything a hard-crashed
supervisor left behind.  Workers only ever *attach* and never unlink
(``track=False`` on 3.13+; on 3.9–3.12 the attach-side resource-tracker
registration is deliberately left in place — see :func:`_open_attached`).
"""

from __future__ import annotations

import atexit
import itertools
import os
import struct
import sys
import zlib
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import ClassVar, Dict, List, Tuple

import numpy as np

from repro.common.exceptions import ShmIntegrityError, ValidationError

#: segment-name prefix; the leak tests scan ``/dev/shm`` for it
SEGMENT_PREFIX = "rpx"

#: header layout: magic, version, dtype string, flags, ndim, shape[2],
#: payload CRC32, fit-token CRC32 — padded to HEADER_SIZE bytes
HEADER_MAGIC = b"RPXSHM1\x00"
HEADER_VERSION = 1
HEADER_SIZE = 64
_HEADER_FORMAT = "<8sI8sIIQQII"
_FLAG_MUTABLE = 1

#: roles may be at most this long so names stay under the POSIX shm
#: name limit on every platform (macOS caps at 31 bytes incl. the slash)
_MAX_ROLE_LENGTH = 8

#: per-process monotone lease sequence; part of the segment name so two
#: concurrent fits of identical inputs in one process cannot collide
_LEASE_SEQUENCE = itertools.count()


def segment_name(fit_token: str, role: str, *, pid: int, sequence: int) -> str:
    """Deterministic segment name for one role of one fit's data plane.

    A pure function of its inputs: the fit token contributes a CRC32 (the
    full token is far over the POSIX name limit), pid and lease sequence
    disambiguate concurrent publishers, and the role names the array.  No
    RNG, uuid, or time — replaying a fit must republish the same names.
    """
    if not role or len(role) > _MAX_ROLE_LENGTH or not role.isidentifier():
        raise ValidationError(
            f"segment role must be a short identifier "
            f"(<= {_MAX_ROLE_LENGTH} chars), got {role!r}"
        )
    token_crc = zlib.crc32(fit_token.encode()) & 0xFFFFFFFF
    return f"{SEGMENT_PREFIX}{token_crc:08x}p{pid % 10_000_000}s{sequence}{role}"


@dataclass(frozen=True)
class ShmArraySpec:
    """Picklable attach ticket for one published array segment."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    crc: int
    token_crc: int
    mutable: bool

    @property
    def nbytes(self) -> int:
        count = 1
        for extent in self.shape:
            count *= int(extent)
        return count * np.dtype(self.dtype).itemsize


def _pack_header(spec: ShmArraySpec) -> bytes:
    if len(spec.shape) > 2:
        raise ValidationError(
            f"data-plane arrays are at most 2-D, got shape {spec.shape}"
        )
    shape0 = spec.shape[0] if len(spec.shape) >= 1 else 0
    shape1 = spec.shape[1] if len(spec.shape) >= 2 else 0
    header = struct.pack(
        _HEADER_FORMAT,
        HEADER_MAGIC,
        HEADER_VERSION,
        spec.dtype.encode("ascii").ljust(8, b"\x00"),
        _FLAG_MUTABLE if spec.mutable else 0,
        len(spec.shape),
        shape0,
        shape1,
        spec.crc,
        spec.token_crc,
    )
    return header.ljust(HEADER_SIZE, b"\x00")


def _check_header(buf: memoryview, spec: ShmArraySpec) -> None:
    """Validate a segment's stamped header against the supervisor's spec."""
    raw = bytes(buf[:HEADER_SIZE])
    magic, version, dtype_raw, flags, ndim, shape0, shape1, crc, token_crc = (
        struct.unpack(_HEADER_FORMAT, raw[: struct.calcsize(_HEADER_FORMAT)])
    )
    if magic != HEADER_MAGIC:
        raise ShmIntegrityError(
            f"segment {spec.name!r} has no data-plane header (bad magic)"
        )
    if version != HEADER_VERSION:
        raise ShmIntegrityError(
            f"segment {spec.name!r} uses header version {version}, "
            f"expected {HEADER_VERSION}"
        )
    dtype = dtype_raw.rstrip(b"\x00").decode("ascii")
    shape = (shape0, shape1)[:ndim]
    if dtype != spec.dtype or shape != tuple(spec.shape):
        raise ShmIntegrityError(
            f"segment {spec.name!r} header says {dtype}{shape}, spec says "
            f"{spec.dtype}{tuple(spec.shape)}"
        )
    if token_crc != spec.token_crc:
        raise ShmIntegrityError(
            f"segment {spec.name!r} belongs to a different fit "
            f"(token crc {token_crc:#x} != {spec.token_crc:#x})"
        )
    mutable = bool(flags & _FLAG_MUTABLE)
    if mutable != spec.mutable:
        raise ShmIntegrityError(
            f"segment {spec.name!r} mutability flag disagrees with its spec"
        )
    if not mutable:
        # Slice, copy, release: a memoryview local surviving in this
        # frame's traceback would keep an exported pointer alive and make
        # the caller's segment.close() raise BufferError.
        payload = buf[HEADER_SIZE : HEADER_SIZE + spec.nbytes]
        try:
            actual = zlib.crc32(bytes(payload)) & 0xFFFFFFFF
        finally:
            payload.release()
        if actual != crc:
            raise ShmIntegrityError(
                f"segment {spec.name!r} payload crc {actual:#x} disagrees "
                f"with the publisher's stamp {crc:#x}"
            )


def _array_view(segment: shared_memory.SharedMemory, spec: ShmArraySpec) -> np.ndarray:
    return np.ndarray(
        tuple(spec.shape),
        dtype=np.dtype(spec.dtype),
        buffer=segment.buf,
        offset=HEADER_SIZE,
    )


def _open_attached(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    On 3.13+ ``track=False`` makes attach-only semantics explicit.  On
    3.9–3.12 the attach registers the name with the resource tracker —
    which is harmless *and must be left alone* here: pool workers are
    children of the publishing supervisor and share its tracker process
    (both fork and spawn hand the tracker fd down), so the registration
    is an idempotent set-add, while an eager ``unregister`` would clobber
    the supervisor's own entry and make the final ``unlink`` race the
    tracker.  A worker's exit never triggers tracker cleanup while the
    supervisor lives; if the supervisor dies without releasing, the
    still-registered name is exactly what lets the tracker reclaim the
    segment.
    """
    if sys.version_info >= (3, 13):
        return shared_memory.SharedMemory(name=name, track=False)
    return shared_memory.SharedMemory(name=name)


def attach_shm_array(
    spec: ShmArraySpec,
) -> Tuple[np.ndarray, shared_memory.SharedMemory]:
    """Worker-side attach: validated numpy view plus the segment handle.

    The caller must keep the returned handle alive as long as the view is
    used (the view borrows the handle's buffer) and ``close()`` it on the
    way out; it must never ``unlink()`` — the supervisor's lease owns the
    name.
    """
    segment = _open_attached(spec.name)
    try:
        _check_header(segment.buf, spec)
    except ShmIntegrityError:
        segment.close()
        raise
    return _array_view(segment, spec), segment


class ShmLease:
    """Owner of every shared-memory segment of one fit's data plane.

    Created by the sharded supervisor, holds creator-side views, and
    guarantees the segments are unlinked exactly once — explicitly via
    :meth:`release` (the engine's ``finally``), or by the ``atexit``
    backstop if the supervisor never got there.  Usable as a context
    manager for the same guarantee in tests.
    """

    #: per-process registry of unreleased leases, scanned by the atexit
    #: backstop.  Deliberately *process-local* bookkeeping: each process
    #: tracks the leases it created, and the owner-pid guard keeps a
    #: forked child from ever releasing its parent's (workers attach,
    #: supervisors own).
    _live: ClassVar[List["ShmLease"]] = []

    def __init__(self, fit_token: str) -> None:
        self.fit_token = fit_token
        self._token_crc = zlib.crc32(fit_token.encode()) & 0xFFFFFFFF
        self._owner_pid = os.getpid()
        self._sequence = next(_LEASE_SEQUENCE)
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._views: Dict[str, np.ndarray] = {}
        self._specs: Dict[str, ShmArraySpec] = {}
        self._released = False
        self._live.append(self)

    # ------------------------------------------------------------------
    # Publishing.
    # ------------------------------------------------------------------

    def publish(
        self, role: str, array: np.ndarray, *, mutable: bool = True
    ) -> np.ndarray:
        """Copy ``array`` into a fresh named segment; return the live view.

        The returned view aliases the segment, so for mutable roles the
        supervisor keeps operating on it directly and workers see every
        write without further copies.
        """
        if self._released:
            raise ValidationError("lease already released; cannot publish")
        if role in self._segments:
            raise ValidationError(f"role {role!r} already published")
        source = np.ascontiguousarray(array)
        spec = ShmArraySpec(
            name=segment_name(
                self.fit_token, role, pid=self._owner_pid, sequence=self._sequence
            ),
            dtype=source.dtype.str,
            shape=tuple(int(extent) for extent in source.shape),
            crc=zlib.crc32(source.tobytes()) & 0xFFFFFFFF,
            token_crc=self._token_crc,
            mutable=mutable,
        )
        header = _pack_header(spec)  # validates shape before any allocation
        segment = shared_memory.SharedMemory(
            name=spec.name, create=True, size=HEADER_SIZE + max(1, spec.nbytes)
        )
        segment.buf[:HEADER_SIZE] = header
        view = _array_view(segment, spec)
        view[...] = source
        self._segments[role] = segment
        self._views[role] = view
        self._specs[role] = spec
        return view

    def spec(self, role: str) -> ShmArraySpec:
        return self._specs[role]

    def specs(self) -> Dict[str, ShmArraySpec]:
        return dict(self._specs)

    def array(self, role: str) -> np.ndarray:
        return self._views[role]

    @property
    def roles(self) -> Tuple[str, ...]:
        return tuple(sorted(self._segments))

    @property
    def data_plane_bytes(self) -> int:
        """Total payload bytes published once per fit (headers excluded)."""
        return sum(spec.nbytes for spec in self._specs.values())

    # ------------------------------------------------------------------
    # Release.
    # ------------------------------------------------------------------

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Close and unlink every segment; idempotent, never raises.

        A ``BufferError`` on close (a stray numpy view still borrowing the
        buffer) downgrades to close-at-process-exit: the *unlink* still
        runs, so the name — the leakable resource — is always removed.
        """
        if self._released:
            return
        self._released = True
        self._views.clear()
        for role in sorted(self._segments):
            segment = self._segments[role]
            try:
                segment.close()
            except BufferError:
                # A borrowed view keeps the mapping alive until the
                # process exits; unlinking below still frees the name.
                # Disarm the handle's finalizer so GC / interpreter
                # shutdown doesn't retry the doomed close and spray
                # "Exception ignored" noise — the mapping itself is
                # reclaimed by the OS when the process exits.
                segment._buf = None
                segment._mmap = None
                fd = getattr(segment, "_fd", -1)
                if fd >= 0:
                    os.close(fd)
                    segment._fd = -1
            try:
                segment.unlink()
            except FileNotFoundError:
                pass  # already gone (double release race, external cleanup)
        self._segments.clear()
        if self in self._live:
            self._live.remove(self)

    def __enter__(self) -> "ShmLease":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


# ----------------------------------------------------------------------
# atexit backstop.
# ----------------------------------------------------------------------


def _release_leaked_leases() -> None:
    """Unlink every segment a dying supervisor still owns.

    Guarded by pid: a forked worker inherits the registry but must never
    release its parent's lease (workers attach, supervisors own).
    """
    pid = os.getpid()
    for lease in list(ShmLease._live):
        if lease._owner_pid == pid:
            lease.release()


def live_lease_count() -> int:
    """Leases not yet released in this process (tests assert this is 0)."""
    return sum(1 for lease in ShmLease._live if lease._owner_pid == os.getpid())


# Registered at import, not lazily: the hook itself is pid-guarded and a
# no-op when nothing leaked, so unconditional registration is free and
# keeps every function in this module mutation-free under R007.
atexit.register(_release_leaked_leases)


__all__ = [
    "HEADER_SIZE",
    "SEGMENT_PREFIX",
    "ShmArraySpec",
    "ShmLease",
    "attach_shm_array",
    "live_lease_count",
    "segment_name",
]
