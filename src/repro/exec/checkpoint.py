"""Per-iteration shard-state checkpointing for the sharded engine.

Follows the ``repro.eval.logdb`` pattern: an append-only JSONL file whose
records are flushed and fsynced per append (:func:`append_jsonl`), so a
crash after an iteration's record landed never loses it, and a crash
mid-append leaves at worst one truncated final line that
:func:`read_jsonl` quarantines and repairs on the next load.

Resume keying
-------------
A checkpoint record belongs to one *fit*, identified by
:meth:`ShardCheckpoint.fit_key`: algorithm name, shard count, failure
policy mode, the data shape, and CRC32 digests of the data matrix and the
initial centroids.  Equal keys imply the bit-identical trajectory, so
replaying a record's labels is exact.  Each record additionally carries a
CRC32 digest of the centroids the assignment ran against; a digest
mismatch during replay means the stored trajectory diverged from the
running fit (e.g. a hand-edited file) and raises
:class:`~repro.common.exceptions.CheckpointError` instead of silently
producing a wrong model.

What a record stores — and what it deliberately does not
--------------------------------------------------------
One record per completed fit iteration: the full post-assignment label
vector, the absolute post-assignment counter snapshot, the per-shard
recovery state, and any degraded-iteration annotation.  Bound arrays
(Elkan's ``(n, k)`` lower-bound matrix) are *not* stored: on resume the
engine replays labels and counters and then reseeds bounds to the sound
conservative state (``ub = inf``, ``lb = 0``) — the bound-based
algorithms stay exact under any sound bounds, so the resumed fit
reproduces the identical final model (labels, centroids, iteration
count) while only the post-resume *pruning-counter* trace may differ
from the uninterrupted run (see docs/sharding.md).
"""

from __future__ import annotations

import base64
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.common.exceptions import CheckpointError
from repro.datasets.loaders import append_jsonl, read_jsonl

PathLike = Union[str, Path]


def array_crc(arr: np.ndarray) -> int:
    """CRC32 digest of an array's contents (dtype-stable, deterministic)."""
    return zlib.crc32(np.ascontiguousarray(arr).tobytes()) & 0xFFFFFFFF


def fit_token(
    algorithm: str,
    shards: int,
    policy_mode: str,
    X: np.ndarray,
    initial_centroids: np.ndarray,
) -> str:
    """Identity of one sharded fit; equal tokens replay bit-identically.

    Doubles as the naming root of the fit's shared-memory data plane
    (:func:`repro.exec.shm.segment_name`): a pure content digest, so
    segment names are deterministic across replays — never RNG or time
    (the R012 analysis rule enforces this).
    """
    n, d = X.shape
    k = len(initial_centroids)
    return (
        f"{algorithm}:shards{shards}:{policy_mode}:n{n}:d{d}:k{k}"
        f":x{array_crc(X):08x}:c{array_crc(initial_centroids):08x}"
    )


def encode_labels(labels: np.ndarray) -> str:
    """Compact ASCII encoding of a label vector (int64 little-endian)."""
    return base64.b64encode(
        labels.astype("<i8", copy=False).tobytes()
    ).decode("ascii")


def decode_labels(blob: str, n: int) -> np.ndarray:
    raw = base64.b64decode(blob.encode("ascii"))
    labels = np.frombuffer(raw, dtype="<i8")
    if len(labels) != n:
        raise CheckpointError(
            f"checkpointed label vector has {len(labels)} entries, fit has {n}"
        )
    return labels.astype(np.intp)


class ShardCheckpoint:
    """Fsync'd JSONL store of per-iteration shard-fit state."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------
    # Keying.
    # ------------------------------------------------------------------

    #: identity of one sharded fit (module-level :func:`fit_token`), kept
    #: as a static method for the established checkpoint-record schema
    fit_key = staticmethod(fit_token)

    # ------------------------------------------------------------------
    # I/O.
    # ------------------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one iteration record (flush + fsync)."""
        append_jsonl(self.path, [record])

    def load(self, fit_key: str) -> Dict[int, Dict[str, Any]]:
        """Replayable records for ``fit_key``: the contiguous prefix.

        Reads with the quarantine-and-repair truncation policy (a crash
        mid-append must not poison later appends), keeps the *last* record
        per iteration (a resumed fit re-appends its live iterations), and
        returns only the contiguous run ``0..r`` — a hole means the
        records after it belong to a trajectory this fit cannot reach by
        replay, so they are ignored rather than trusted.
        """
        by_iteration: Dict[int, Dict[str, Any]] = {}
        for record in read_jsonl(self.path, truncated="quarantine", repair=True):
            if record.get("fit_key") != fit_key:
                continue
            try:
                iteration = int(record["iteration"])
            except (KeyError, TypeError, ValueError):
                continue
            by_iteration[iteration] = record
        contiguous: Dict[int, Dict[str, Any]] = {}
        t = 0
        while t in by_iteration:
            contiguous[t] = by_iteration[t]
            t += 1
        return contiguous


def validate_record(
    record: Dict[str, Any], *, n: int, centroid_digest: int
) -> np.ndarray:
    """Check one replay record against the running fit; return its labels.

    The digest is taken over the centroids the current fit is about to
    assign against; a mismatch means the stored trajectory and the live
    one disagree and replay must stop loudly.
    """
    stored = record.get("centroid_crc")
    if stored != centroid_digest:
        raise CheckpointError(
            f"checkpoint record for iteration {record.get('iteration')} was "
            f"taken against different centroids (digest {stored} != "
            f"{centroid_digest}); refusing to replay a diverged trajectory"
        )
    return decode_labels(record["labels"], n)


def shard_state_from_record(record: Dict[str, Any]) -> Optional[List[bool]]:
    raw = record.get("has_state")
    if raw is None:
        return None
    return [bool(flag) for flag in raw]
