"""Fault-tolerant sharded data-parallel execution of the assignment phase.

The paper's Table 3 premise — assignment dominates k-means cost — makes the
assignment pass the one phase worth parallelizing.  This engine splits the
point set into contiguous *shards*, runs the row-subset assignment kernels
of :mod:`repro.core.vectorized` in supervised worker processes
(:func:`repro.eval.runtime.supervised_map`), and merges per-shard results
back in fixed shard-rank order, so the fitted model is **bit-identical** to
the single-process vectorized backend regardless of worker completion
order.

Determinism contract
--------------------
Three disciplines carry the bit-identity guarantee:

1. *Row-subset invariant kernels.*  Per-point assignment decisions of
   Lloyd/Elkan/Hamerly are independent across points, so a kernel run on
   ``X[lo:hi]`` produces exactly rows ``[lo, hi)`` of the full-matrix pass
   (see the kernel section of :mod:`repro.core.vectorized`).
2. *Rank-order merge.*  Label/bound slices are written back at their
   shard's fixed offsets, and the ``rescan`` refinement fold goes through
   :func:`repro.core.refinement.merge_shard_assignments` — one scatter-add
   over the full matrix, never a sum of per-shard partial sums (float
   addition is not associative; the docstring there holds a concrete
   counterexample).
3. *Supervisor-side centroid context.*  Centroid-level work
   (``centroid_separations``) is computed — and charged — once in the
   supervisor and shipped to every shard, so OpCounters totals also match
   the single-process pass exactly.

Failure handling
----------------
Shard workers inherit the full robustness runtime: per-shard wall-clock
timeouts, :class:`~repro.common.exceptions.TransientError` retries with
deterministic CRC32 backoff, and crash/hang containment.  What happens
when a shard fails *terminally* is the :class:`ShardFailurePolicy`:

``strict``
    Raise :class:`~repro.common.exceptions.ShardFailedError` carrying the
    shard rank, iteration, and classified error type.
``recompute``
    Re-run each lost shard's kernel inline in the supervisor on the exact
    same inputs — the recovered fit is bit-identical to a fault-free run.
``degrade``
    Finish the iteration from the surviving shards; lost shards keep their
    previous (stale) labels and bounds — still *sound* bounds, so the
    bound-based algorithms self-correct on the next successful pass — and
    the iteration is annotated with a structured :class:`DegradedIteration`
    record naming the affected point ranges.

Faults injected via :class:`~repro.eval.faults.FaultPlan` can target
individual shard workers (``kill:lloyd:shard=1:iter=2``); see
:meth:`FaultPlan.apply_shard`.

Checkpointing: pass ``checkpoint=<path>`` to durably record each
iteration's post-assignment state (:mod:`repro.exec.checkpoint`); an
interrupted fit re-run with the same inputs replays the stored prefix and
resumes live, reproducing the identical final model.

See docs/sharding.md for the full lifecycle and policy decision table.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.distance import sq_norms
from repro.common.exceptions import (
    ConfigurationError,
    ShardFailedError,
    TransientError,
    ValidationError,
)
from repro.core.refinement import merge_shard_assignments
from repro.core.vectorized import (
    VectorizedElkanKMeans,
    VectorizedHamerlyKMeans,
    VectorizedLloydKMeans,
    elkan_assign_rows,
    elkan_seed_rows,
    hamerly_assign_rows,
    hamerly_seed_rows,
    lloyd_assign_rows,
)
from repro.exec.checkpoint import (
    ShardCheckpoint,
    array_crc,
    encode_labels,
    shard_state_from_record,
    validate_record,
)
from repro.instrumentation.counters import OpCounters
from repro.eval.runtime import ExecutionPolicy, FailedRun, RunKey, supervised_map

SHARD_POLICY_MODES = ("strict", "recompute", "degrade")

SHARD_RUNNERS = ("auto", "process", "inline")


def shard_bounds(n: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous near-equal partition of ``[0, n)`` into ``shards`` ranges.

    The first ``n % shards`` shards get one extra row; deterministic in
    ``(n, shards)`` alone, so every fit of the same shape shards the same
    way (the checkpoint/replay path depends on this).
    """
    if shards < 1:
        raise ValidationError(f"shards must be >= 1, got {shards}")
    base, extra = divmod(n, shards)
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for rank in range(shards):
        hi = lo + base + (1 if rank < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


@dataclass(frozen=True)
class ShardFailurePolicy:
    """What the supervisor does when a shard fails terminally.

    =============  ====================================================
    mode           semantics
    =============  ====================================================
    ``strict``     raise :class:`ShardFailedError` (fail the fit loudly)
    ``recompute``  re-run lost shards inline; bit-identical recovery
    ``degrade``    finish from survivors + :class:`DegradedIteration`
    =============  ====================================================
    """

    mode: str = "strict"

    def __post_init__(self) -> None:
        if self.mode not in SHARD_POLICY_MODES:
            raise ConfigurationError(
                f"unknown shard policy {self.mode!r}; known: {SHARD_POLICY_MODES}"
            )

    @classmethod
    def parse(cls, value) -> "ShardFailurePolicy":
        if isinstance(value, ShardFailurePolicy):
            return value
        if value is None:
            return cls()
        return cls(mode=str(value))


@dataclass(frozen=True)
class DegradedIteration:
    """Structured record of one iteration finished without every shard.

    Emitted under the ``degrade`` policy and surfaced through the fit
    result's ``extras["degraded_iterations"]`` so campaign logs carry an
    auditable account of exactly which points went stale when.
    """

    iteration: int
    shards: Tuple[int, ...]
    point_ranges: Tuple[Tuple[int, int], ...]
    error_types: Tuple[str, ...]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "iteration": self.iteration,
            "shards": list(self.shards),
            "point_ranges": [list(r) for r in self.point_ranges],
            "error_types": list(self.error_types),
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "DegradedIteration":
        return cls(
            iteration=int(record["iteration"]),
            shards=tuple(int(s) for s in record["shards"]),
            point_ranges=tuple(
                (int(lo), int(hi)) for lo, hi in record["point_ranges"]
            ),
            error_types=tuple(str(e) for e in record["error_types"]),
        )


# ----------------------------------------------------------------------
# Worker side.
#
# Everything below runs inside supervised worker processes (or inline in
# the supervisor when nested under a daemon pool worker).  The functions
# are module-level and registered in SHARD_KERNELS so they are picklable
# under every start method and discoverable as pool-dispatch roots by the
# R007 parallel-safety rule.  Payloads are plain dicts of arrays/floats;
# mutable state slices are *copies* made by the supervisor, so a kernel's
# in-place updates never leak into supervisor state before the rank-order
# merge, under any runner or start method.
# ----------------------------------------------------------------------


def lloyd_shard_kernel(payload: Dict[str, Any], counters: OpCounters) -> Dict[str, Any]:
    labels = lloyd_assign_rows(
        payload["X"],
        payload["centroids"],
        payload["x_sq"],
        payload["c_sq"],
        counters,
        margin_factor=payload["margin_factor"],
    )
    return {"labels": labels}


def elkan_seed_shard_kernel(
    payload: Dict[str, Any], counters: OpCounters
) -> Dict[str, Any]:
    labels, ub, lb = elkan_seed_rows(payload["X"], payload["centroids"], counters)
    return {"labels": labels, "ub": ub, "lb": lb}


def elkan_shard_kernel(payload: Dict[str, Any], counters: OpCounters) -> Dict[str, Any]:
    labels = payload["labels"]
    ub = payload["ub"]
    lb = payload["lb"]
    elkan_assign_rows(
        payload["X"],
        payload["centroids"],
        labels,
        ub,
        lb,
        payload["half_cc"],
        payload["s"],
        counters,
    )
    return {"labels": labels, "ub": ub, "lb": lb}


def hamerly_seed_shard_kernel(
    payload: Dict[str, Any], counters: OpCounters
) -> Dict[str, Any]:
    labels, ub, lb = hamerly_seed_rows(payload["X"], payload["centroids"], counters)
    return {"labels": labels, "ub": ub, "lb": lb}


def hamerly_shard_kernel(
    payload: Dict[str, Any], counters: OpCounters
) -> Dict[str, Any]:
    labels = payload["labels"]
    ub = payload["ub"]
    lb = payload["lb"]
    hamerly_assign_rows(
        payload["X"],
        payload["centroids"],
        labels,
        ub,
        lb,
        payload["s"],
        counters,
    )
    return {"labels": labels, "ub": ub, "lb": lb}


#: Registry of shard assignment kernels.  Values are the worker-side entry
#: points dispatched through the supervised pool; the R007 parallel-safety
#: rule discovers them from this literal and lints them (and their callees)
#: like any other pool-dispatch root.
SHARD_KERNELS = {
    "lloyd": lloyd_shard_kernel,
    "elkan_seed": elkan_seed_shard_kernel,
    "elkan": elkan_shard_kernel,
    "hamerly_seed": hamerly_seed_shard_kernel,
    "hamerly": hamerly_shard_kernel,
}


def _shard_worker(item: Tuple[Any, ...], attempt: int) -> Dict[str, Any]:
    """Supervised-pool entry: apply targeted faults, run one shard kernel.

    ``item`` is ``(kernel_name, payload, key, rank, iteration, fault_plan)``.
    Counters start from zero in every worker; the supervisor merges them in
    shard-rank order (integer accumulation, so totals equal the
    single-process charge exactly).
    """
    kernel_name, payload, key, rank, iteration, fault_plan = item
    if fault_plan is not None:
        fault_plan.apply_shard(key, shard=rank, iteration=iteration, attempt=attempt)
    counters = OpCounters()
    out = SHARD_KERNELS[kernel_name](payload, counters)
    out["shard"] = rank
    out["counters"] = counters
    return out


def _inline_map(
    fn, items: Sequence[Any], keys: Sequence[RunKey], *, policy: ExecutionPolicy
) -> List[Any]:
    """In-process fallback runner with supervised_map's settle semantics.

    Used when the supervisor itself is a daemon pool worker (e.g. a
    sharded fit inside ``parallel_compare``) and may not spawn children.
    Transient failures retry with the same deterministic backoff; any
    other exception degrades to a classified :class:`FailedRun` in place.
    No timeout isolation: ``hang`` faults would hang (the *outer* pool's
    deadline contains them), so chaos tests pin ``runner="process"``.
    """
    results: List[Any] = []
    start = time.monotonic()
    deadline = (
        None if policy.max_total_time is None else start + policy.max_total_time
    )
    for item, key in zip(items, keys):
        first = time.monotonic()
        attempt = 1
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                results.append(
                    FailedRun(
                        key=key,
                        error_type="RunTimeoutError",
                        message=(
                            f"batch exceeded the {policy.max_total_time:.3g}s "
                            "max_total_time budget"
                        ),
                        attempts=attempt,
                        elapsed=time.monotonic() - first,
                    )
                )
                break
            try:
                results.append(fn(item, attempt))
                break
            except TransientError as exc:
                if attempt <= policy.retries:
                    delay = policy.backoff_delay(str(key), attempt)
                    if deadline is None or time.monotonic() + delay < deadline:
                        time.sleep(delay)
                        attempt += 1
                        continue
                results.append(
                    FailedRun(
                        key=key,
                        error_type="TransientError",
                        message=str(exc),
                        attempts=attempt,
                        elapsed=time.monotonic() - first,
                    )
                )
                break
            except Exception as exc:  # mirror _child_main's classification
                results.append(
                    FailedRun(
                        key=key,
                        error_type=type(exc).__name__,
                        message=str(exc),
                        attempts=attempt,
                        elapsed=time.monotonic() - first,
                    )
                )
                break
    return results


# ----------------------------------------------------------------------
# Supervisor side.
# ----------------------------------------------------------------------


class _ShardedAssignMixin:
    """Replaces the assignment pass with supervised shard fan-out.

    Mixed in *before* a vectorized algorithm class, it overrides
    ``_assign`` (fan out / merge / recover), ``_refine`` (rank-order merge
    fold for the ``rescan`` mode), ``_update_bounds`` (replay transition),
    and ``_extras`` (degradation/resume reporting).  Everything else —
    setup, initialization, convergence, drift correction — is the
    inherited single-process implementation, which is exactly why the
    result is bit-identical.
    """

    #: registry key of the steady-state assignment kernel
    shard_kernel: str = ""
    #: registry key of the iteration-0 (seeding) kernel; None when the
    #: steady-state kernel is already a full scan (Lloyd)
    shard_seed_kernel: Optional[str] = None

    def __init__(
        self,
        *,
        shards: int = 2,
        shard_policy="strict",
        execution: Optional[ExecutionPolicy] = None,
        fault_plan=None,
        checkpoint=None,
        runner: str = "auto",
        mp_context=None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if int(shards) < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if runner not in SHARD_RUNNERS:
            raise ConfigurationError(
                f"unknown shard runner {runner!r}; known: {SHARD_RUNNERS}"
            )
        self.shards = int(shards)
        self.shard_policy = ShardFailurePolicy.parse(shard_policy)
        self.shard_execution = execution if execution is not None else ExecutionPolicy()
        self.shard_fault_plan = fault_plan
        self.shard_runner = runner
        self._mp_context = mp_context
        self._checkpoint = (
            ShardCheckpoint(checkpoint) if checkpoint is not None else None
        )
        self._ranges: List[Tuple[int, int]] = []
        self._shard_has_state: List[bool] = []
        self._degraded: List[DegradedIteration] = []
        self._replay: Dict[int, Dict[str, Any]] = {}
        self._fit_key: Optional[str] = None
        self._current_iteration = -1
        self._last_was_replay = False
        self._resumed_iterations = 0

    # ------------------------------------------------------------------
    # Fit-loop hooks.
    # ------------------------------------------------------------------

    def _setup(self) -> None:
        super()._setup()
        n = len(self.X)
        # Degenerate shards are clamped away rather than erroring: a tiny
        # smoke fit with shards > n still runs, one row per shard.
        effective = max(1, min(self.shards, n))
        self._ranges = shard_bounds(n, effective)
        self._shard_has_state = [False] * effective
        self._degraded = []
        self._replay = {}
        self._fit_key = None
        self._current_iteration = -1
        self._last_was_replay = False
        self._resumed_iterations = 0

    def _assign(self, iteration: int) -> None:
        self._current_iteration = iteration
        entry_crc = (
            array_crc(self._centroids) if self._checkpoint is not None else 0
        )
        if self._maybe_replay(iteration, entry_crc):
            return
        self._last_was_replay = False
        kernels, payloads = self._shard_tasks(iteration)
        keys = self._shard_keys(iteration)
        items = [
            (kernels[rank], payloads[rank], keys[rank], rank, iteration,
             self.shard_fault_plan)
            for rank in range(len(self._ranges))
        ]
        outcomes = list(self._dispatch(items, keys))
        losses: Dict[int, FailedRun] = {
            rank: out
            for rank, out in enumerate(outcomes)
            if isinstance(out, FailedRun)
        }
        if losses:
            losses = self._recover(iteration, items, outcomes, losses)
        for rank, out in enumerate(outcomes):
            if isinstance(out, FailedRun):
                continue
            lo, hi = self._ranges[rank]
            self._apply_shard_result(rank, lo, hi, out)
            self.counters.merge(out["counters"])
            self._shard_has_state[rank] = True
        degraded = None
        if losses:
            ranks = tuple(sorted(losses))
            degraded = DegradedIteration(
                iteration=iteration,
                shards=ranks,
                point_ranges=tuple(self._ranges[r] for r in ranks),
                error_types=tuple(losses[r].error_type for r in ranks),
            )
            self._degraded.append(degraded)
        self._write_checkpoint(iteration, entry_crc, degraded)

    def _refine(self, iteration: int, previous_labels: np.ndarray) -> np.ndarray:
        if self.refinement != "rescan":
            # ``delta`` handles degraded shards natively: a lost shard's
            # labels did not move, and a late-seeded row's old label is -1,
            # which the mover filter already excludes from subtraction.
            return super()._refine(iteration, previous_labels)
        # Rank-order merge fold: one scatter-add over the concatenated
        # survivor rows — bit-identical to the unsharded rescan when every
        # shard is present (see merge_shard_assignments).
        slices = [self._labels[lo:hi] for lo, hi in self._ranges]
        lost = [
            rank for rank, ok in enumerate(self._shard_has_state) if not ok
        ]
        _, sums, counts = merge_shard_assignments(
            self.X, self.k, slices, self._ranges, lost=lost
        )
        self._sums[:] = sums
        self._counts = counts
        folded = len(self.X) - sum(
            self._ranges[rank][1] - self._ranges[rank][0] for rank in lost
        )
        self.counters.add_point_accesses(folded)
        new_centroids = self._centroids.copy()
        nonempty = self._counts > 0
        new_centroids[nonempty] = self._sums[nonempty] / self._counts[nonempty, None]
        return new_centroids

    def _update_bounds(self, drifts: np.ndarray) -> None:
        if self._last_was_replay:
            # While the next iteration will also replay, bound arrays may
            # not even exist — skip maintenance entirely.  On the last
            # replayed iteration, transition to live execution by seeding
            # sound conservative bounds (exactness does not depend on
            # tightness; see docs/sharding.md on resume semantics).
            if (self._current_iteration + 1) not in self._replay:
                self._reseed_bounds()
                self._last_was_replay = False
            return
        super()._update_bounds(drifts)

    def _extras(self) -> Dict[str, Any]:
        extras = dict(super()._extras())
        extras["shards"] = len(self._ranges)
        extras["shard_policy"] = self.shard_policy.mode
        if self._degraded:
            extras["degraded_iterations"] = [d.as_dict() for d in self._degraded]
        if self._resumed_iterations:
            extras["resumed_iterations"] = self._resumed_iterations
        return extras

    # ------------------------------------------------------------------
    # Dispatch and recovery.
    # ------------------------------------------------------------------

    def _dispatch(self, items, keys):
        runner = self.shard_runner
        if runner == "auto":
            # A daemon pool worker (harness parallel_compare) may not
            # spawn children; run shards sequentially in-process there.
            runner = (
                "inline"
                if multiprocessing.current_process().daemon
                else "process"
            )
        if runner == "process":
            return supervised_map(
                _shard_worker,
                items,
                keys,
                policy=self.shard_execution,
                max_workers=len(items),
                mp_context=self._mp_context,
            )
        return _inline_map(
            _shard_worker, items, keys, policy=self.shard_execution
        )

    def _recover(
        self,
        iteration: int,
        items: List[Tuple[Any, ...]],
        outcomes: List[Any],
        losses: Dict[int, FailedRun],
    ) -> Dict[int, FailedRun]:
        """Apply the failure policy to terminally-failed shards.

        Returns the ranks still lost after recovery (empty for
        ``recompute``); mutates ``outcomes`` in place for recovered ranks.
        """
        mode = self.shard_policy.mode
        if mode == "strict":
            rank = min(losses)
            failure = losses[rank]
            raise ShardFailedError(
                f"shard {rank} of {self.name} failed terminally at iteration "
                f"{iteration}: {failure.error_type}: {failure.message}",
                shard=rank,
                iteration=iteration,
                error_type=failure.error_type,
            )
        if mode == "recompute":
            # Deterministic recovery: the payload still holds the exact
            # pre-iteration inputs (workers mutate their own copies, and
            # the fault paths fire before any kernel touches state), so an
            # inline re-run is bit-identical to a fault-free worker.  The
            # recovery path itself is deliberately fault-free — injected
            # faults target workers, not the supervisor.
            for rank in sorted(losses):
                kernel_name, payload = items[rank][0], items[rank][1]
                counters = OpCounters()
                out = SHARD_KERNELS[kernel_name](payload, counters)
                out["shard"] = rank
                out["counters"] = counters
                outcomes[rank] = out
            return {}
        return losses  # degrade

    def _shard_keys(self, iteration: int) -> List[RunKey]:
        d = self.X.shape[1]
        return [
            RunKey(
                algorithm=self.name,
                dataset=f"shard[{lo}:{hi})",
                n=hi - lo,
                d=d,
                k=self.k,
                seed=rank,
                max_iter=iteration,
            )
            for rank, (lo, hi) in enumerate(self._ranges)
        ]

    # ------------------------------------------------------------------
    # Checkpoint replay.
    # ------------------------------------------------------------------

    def _maybe_replay(self, iteration: int, entry_crc: int) -> bool:
        if self._checkpoint is None:
            return False
        if iteration == 0:
            self._fit_key = self._checkpoint.fit_key(
                self.name,
                len(self._ranges),
                self.shard_policy.mode,
                self.X,
                self._centroids,
            )
            self._replay = self._checkpoint.load(self._fit_key)
        record = self._replay.get(iteration)
        if record is None:
            return False
        labels = validate_record(
            record, n=len(self.X), centroid_digest=entry_crc
        )
        self._labels[:] = labels
        # Counters restore *absolutely* from the post-assignment snapshot:
        # the supervisor charged nothing this iteration (no context, no
        # dispatch), and skipped bound maintenance heals itself because the
        # next record's snapshot already includes it.
        for name, value in record.get("counters", {}).items():
            if hasattr(self.counters, name):
                setattr(self.counters, name, int(value))
        restored = shard_state_from_record(record)
        if restored is not None and len(restored) == len(self._shard_has_state):
            self._shard_has_state = restored
        if record.get("degraded"):
            self._degraded.append(DegradedIteration.from_dict(record["degraded"]))
        self._last_was_replay = True
        self._resumed_iterations += 1
        return True

    def _write_checkpoint(
        self,
        iteration: int,
        entry_crc: int,
        degraded: Optional[DegradedIteration],
    ) -> None:
        if self._checkpoint is None:
            return
        self._checkpoint.append(
            {
                "fit_key": self._fit_key,
                "iteration": iteration,
                "labels": encode_labels(self._labels),
                "counters": self.counters.snapshot().as_dict(),
                "centroid_crc": entry_crc,
                "has_state": [int(flag) for flag in self._shard_has_state],
                "degraded": degraded.as_dict() if degraded is not None else None,
            }
        )

    # ------------------------------------------------------------------
    # Per-algorithm hooks.
    # ------------------------------------------------------------------

    def _shard_tasks(
        self, iteration: int
    ) -> Tuple[List[str], List[Dict[str, Any]]]:
        """Kernel name + payload per shard for this iteration."""
        raise NotImplementedError

    def _apply_shard_result(
        self, rank: int, lo: int, hi: int, out: Dict[str, Any]
    ) -> None:
        """Write one shard's outputs back at its fixed row offsets."""
        raise NotImplementedError

    def _reseed_bounds(self) -> None:
        """Seed sound conservative bounds at the replay→live transition."""


class ShardedLloydKMeans(_ShardedAssignMixin, VectorizedLloydKMeans):
    """Sharded vectorized Lloyd: every iteration is a full scan."""

    shard_kernel = "lloyd"

    def _shard_tasks(self, iteration: int):
        if self._x_sq is None:
            self._x_sq = sq_norms(self.X)
        c_sq = sq_norms(self._centroids)
        kernels: List[str] = []
        payloads: List[Dict[str, Any]] = []
        for lo, hi in self._ranges:
            kernels.append(self.shard_kernel)
            payloads.append(
                {
                    "X": self.X[lo:hi],
                    "x_sq": self._x_sq[lo:hi],
                    "centroids": self._centroids,
                    "c_sq": c_sq,
                    "margin_factor": self._MARGIN_FACTOR,
                }
            )
        return kernels, payloads

    def _apply_shard_result(self, rank, lo, hi, out):
        self._labels[lo:hi] = out["labels"]


class _BoundedShardMixin(_ShardedAssignMixin):
    """Shared fan-out logic for the bound-maintaining pair (Elkan/Hamerly).

    A shard runs the *seed* kernel until its first successful pass (always
    iteration 0 in a fault-free fit; later under ``degrade`` when the
    iteration-0 worker was lost), then the steady-state assignment kernel
    on its slice of the bound state.  Mutable slices are copied into the
    payload so worker/inline mutation never bypasses the rank-order merge.
    """

    def _shard_tasks(self, iteration: int):
        kernels: List[str] = []
        payloads: List[Dict[str, Any]] = []
        context: Optional[Dict[str, Any]] = None
        if any(self._shard_has_state):
            context = self._steady_context()
        self._ensure_bound_arrays()
        for rank, (lo, hi) in enumerate(self._ranges):
            if not self._shard_has_state[rank]:
                kernels.append(self.shard_seed_kernel)
                payloads.append({"X": self.X[lo:hi], "centroids": self._centroids})
                continue
            payload = {
                "X": self.X[lo:hi],
                "centroids": self._centroids,
                "labels": self._labels[lo:hi].copy(),
                "ub": self._ub[lo:hi].copy(),
                "lb": self._lb[lo:hi].copy(),
            }
            payload.update(context)
            kernels.append(self.shard_kernel)
            payloads.append(payload)
        return kernels, payloads

    def _apply_shard_result(self, rank, lo, hi, out):
        self._ensure_bound_arrays()
        self._labels[lo:hi] = out["labels"]
        self._ub[lo:hi] = out["ub"]
        self._lb[lo:hi] = out["lb"]

    def _steady_context(self) -> Dict[str, Any]:
        """Centroid-level payload context, charged once in the supervisor."""
        raise NotImplementedError

    def _ensure_bound_arrays(self) -> None:
        raise NotImplementedError


class ShardedElkanKMeans(_BoundedShardMixin, VectorizedElkanKMeans):
    """Sharded vectorized Elkan with supervisor-computed separations."""

    shard_kernel = "elkan"
    shard_seed_kernel = "elkan_seed"

    def _steady_context(self):
        half_cc, s = self._separation_context()
        return {"half_cc": half_cc, "s": s}

    def _ensure_bound_arrays(self):
        if self._ub is None:
            n = len(self.X)
            self._ub = np.zeros(n)
            self._lb = np.zeros((n, self.k))

    def _reseed_bounds(self):
        n = len(self.X)
        self._ub = np.full(n, np.inf)
        self._lb = np.zeros((n, self.k))


class ShardedHamerlyKMeans(_BoundedShardMixin, VectorizedHamerlyKMeans):
    """Sharded vectorized Hamerly with supervisor-computed separations."""

    shard_kernel = "hamerly"
    shard_seed_kernel = "hamerly_seed"

    def _steady_context(self):
        return {"s": self._separation_context()}

    def _ensure_bound_arrays(self):
        if self._ub is None:
            n = len(self.X)
            self._ub = np.zeros(n)
            self._lb = np.zeros(n)

    def _reseed_bounds(self):
        n = len(self.X)
        self._ub = np.full(n, np.inf)
        self._lb = np.zeros(n)


#: Algorithms with a sharded implementation.  Yinyang and index k-means
#: keep per-iteration *global* group/tree state inside the assignment pass
#: and are not row-subset decomposable without changing their decision
#: procedure, so they are deliberately absent.
SHARDED_ALGORITHMS: Dict[str, type] = {
    "lloyd": ShardedLloydKMeans,
    "elkan": ShardedElkanKMeans,
    "hamerly": ShardedHamerlyKMeans,
}


def make_sharded_algorithm(name: str, **kwargs):
    """Instantiate a sharded algorithm by registry name.

    Raises :class:`ConfigurationError` for algorithms without a sharded
    implementation; accepts the mixin's engine knobs (``shards``,
    ``shard_policy``, ``execution``, ``fault_plan``, ``checkpoint``,
    ``runner``) plus the wrapped algorithm's own keyword arguments.
    """
    try:
        cls = SHARDED_ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(SHARDED_ALGORITHMS))
        raise ConfigurationError(
            f"algorithm {name!r} has no sharded implementation; "
            f"sharded execution supports: {known}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "DegradedIteration",
    "SHARD_KERNELS",
    "SHARDED_ALGORITHMS",
    "SHARD_POLICY_MODES",
    "ShardFailurePolicy",
    "ShardedElkanKMeans",
    "ShardedHamerlyKMeans",
    "ShardedLloydKMeans",
    "make_sharded_algorithm",
    "shard_bounds",
]
