"""Fault-tolerant sharded data-parallel execution of the assignment phase.

The paper's Table 3 premise — assignment dominates k-means cost — makes the
assignment pass the one phase worth parallelizing.  This engine splits the
point set into contiguous *shards* and runs the row-subset assignment
kernels of :mod:`repro.core.vectorized` across worker processes, merging
per-shard results in fixed shard-rank order so the fitted model is
**bit-identical** to the single-process vectorized backend regardless of
worker completion order.

Control plane vs data plane
---------------------------
The engine is split into two planes so per-iteration IPC is O(k·d), not
O(n·d):

* **Data plane** (:mod:`repro.exec.shm`): the point matrix and the
  per-shard persistent state (labels, upper/lower bounds, the epoch
  vector) are published **once per fit** into CRC-stamped shared-memory
  segments.  Workers attach read-only to the points and read-write to
  the state; each shard's command names a disjoint row range, so worker
  writes land directly at their fixed offsets — the rank-order merge
  discipline, now with zero copies.
* **Control plane** (:mod:`repro.exec.pool`): a persistent supervised
  worker pool, spawned **once per fit**, carries only the per-iteration
  centroid broadcast (plus the O(k²) separation context for Elkan) and
  the O(1) result envelopes.  Exact traffic is accounted by the pool's
  :class:`~repro.instrumentation.TransportCounters` and surfaced through
  the fit result's ``extras["ipc"]``.

The PR 7 engine this replaces re-spawned a process per shard per
iteration and pickled each point shard every round; the BENCH entries it
produced ran *slower* than single-process.  The inline runner (used when
the supervisor is itself a daemon pool worker) keeps the exact same
command path minus the processes.

Determinism contract
--------------------
Three disciplines carry the bit-identity guarantee:

1. *Row-subset invariant kernels.*  Per-point assignment decisions of
   Lloyd/Elkan/Hamerly are independent across points, so a kernel run on
   ``X[lo:hi]`` produces exactly rows ``[lo, hi)`` of the full-matrix pass
   (see the kernel section of :mod:`repro.core.vectorized`).
2. *Rank-order merge.*  Shards own disjoint row ranges of the shared
   state, counters merge in shard-rank order (integer accumulation), and
   the ``rescan`` refinement fold goes through
   :func:`repro.core.refinement.merge_shard_assignments` — one
   scatter-add over the full matrix, never a sum of per-shard partial
   sums (float addition is not associative; the docstring there holds a
   concrete counterexample).
3. *Supervisor-side centroid context.*  Centroid-level work
   (``centroid_separations``) is computed — and charged — once in the
   supervisor and broadcast to every shard, so OpCounters totals also
   match the single-process pass exactly.

Failure handling
----------------
Shard commands inherit the full robustness runtime: per-command
wall-clock deadlines (a hung long-lived worker is killed and respawned),
:class:`~repro.common.exceptions.TransientError` retries with
deterministic CRC32 backoff, and crash containment with setup replay on
respawn.  What happens when a shard fails *terminally* is the
:class:`ShardFailurePolicy`:

``strict``
    Raise :class:`~repro.common.exceptions.ShardFailedError` carrying the
    shard rank, iteration, and classified error type.
``recompute``
    Re-run each lost shard's command inline in the supervisor on the
    shared state — bit-identical recovery, guarded by the *epoch
    protocol* below.
``degrade``
    Finish the iteration from the surviving shards; lost shards keep
    their previous (stale) labels and bounds — still *sound* bounds, so
    the bound-based algorithms self-correct on the next successful pass —
    and the iteration is annotated with a structured
    :class:`DegradedIteration` record naming the affected point ranges.

Epoch protocol
~~~~~~~~~~~~~~
Because workers mutate shared state in place, a worker dying *mid-kernel*
could leave its slice torn.  Each command brackets its kernel with writes
to a per-shard epoch slot: ``-(iteration + 2)`` before the kernel,
``iteration`` after the write-back.  Injected faults
(:meth:`~repro.eval.faults.FaultPlan.apply_shard`) fire *before* the
dirty mark, so chaos recovery always sees clean state and stays
bit-identical.  A genuinely torn slice (``epoch <= -2``) makes
``recompute`` of a state-*reading* kernel raise
``ShardFailedError(error_type="ShardStateCorrupted")`` instead of
recomputing from corrupt inputs, and makes ``degrade`` mark the shard
stateless so its next pass reseeds from scratch.

Checkpointing: pass ``checkpoint=<path>`` to durably record each
iteration's post-assignment state (:mod:`repro.exec.checkpoint`); an
interrupted fit re-run with the same inputs replays the stored prefix and
resumes live — including across a pool restart — reproducing the
identical final model.

See docs/sharding.md for the full lifecycle, segment layout, and policy
decision table.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.distance import sq_norms
from repro.common.exceptions import (
    ConfigurationError,
    ShardFailedError,
    TransientError,
    ValidationError,
)
from repro.core.refinement import merge_shard_assignments
from repro.core.vectorized import (
    VectorizedElkanKMeans,
    VectorizedHamerlyKMeans,
    VectorizedLloydKMeans,
    elkan_assign_rows,
    elkan_seed_rows,
    hamerly_assign_rows,
    hamerly_seed_rows,
    lloyd_assign_rows,
)
from repro.exec.checkpoint import (
    ShardCheckpoint,
    array_crc,
    encode_labels,
    fit_token,
    shard_state_from_record,
    validate_record,
)
from repro.exec.pool import WorkerPool
from repro.exec.shm import ShmLease, attach_shm_array
from repro.instrumentation.counters import OpCounters
from repro.eval.runtime import ExecutionPolicy, FailedRun, RunKey

SHARD_POLICY_MODES = ("strict", "recompute", "degrade")

SHARD_RUNNERS = ("auto", "process", "inline")

#: epoch values <= this mark a shard slice as torn (kernel started, never
#: finished); see the epoch-protocol section of the module docstring
EPOCH_DIRTY_THRESHOLD = -2


def shard_bounds(n: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous near-equal partition of ``[0, n)`` into ``shards`` ranges.

    The first ``n % shards`` shards get one extra row; deterministic in
    ``(n, shards)`` alone, so every fit of the same shape shards the same
    way (the checkpoint/replay path depends on this).
    """
    if shards < 1:
        raise ValidationError(f"shards must be >= 1, got {shards}")
    base, extra = divmod(n, shards)
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for rank in range(shards):
        hi = lo + base + (1 if rank < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


@dataclass(frozen=True)
class ShardFailurePolicy:
    """What the supervisor does when a shard fails terminally.

    =============  ====================================================
    mode           semantics
    =============  ====================================================
    ``strict``     raise :class:`ShardFailedError` (fail the fit loudly)
    ``recompute``  re-run lost shards inline; bit-identical recovery
    ``degrade``    finish from survivors + :class:`DegradedIteration`
    =============  ====================================================
    """

    mode: str = "strict"

    def __post_init__(self) -> None:
        if self.mode not in SHARD_POLICY_MODES:
            raise ConfigurationError(
                f"unknown shard policy {self.mode!r}; known: {SHARD_POLICY_MODES}"
            )

    @classmethod
    def parse(cls, value) -> "ShardFailurePolicy":
        if isinstance(value, ShardFailurePolicy):
            return value
        if value is None:
            return cls()
        return cls(mode=str(value))


@dataclass(frozen=True)
class DegradedIteration:
    """Structured record of one iteration finished without every shard.

    Emitted under the ``degrade`` policy and surfaced through the fit
    result's ``extras["degraded_iterations"]`` so campaign logs carry an
    auditable account of exactly which points went stale when.
    """

    iteration: int
    shards: Tuple[int, ...]
    point_ranges: Tuple[Tuple[int, int], ...]
    error_types: Tuple[str, ...]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "iteration": self.iteration,
            "shards": list(self.shards),
            "point_ranges": [list(r) for r in self.point_ranges],
            "error_types": list(self.error_types),
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "DegradedIteration":
        return cls(
            iteration=int(record["iteration"]),
            shards=tuple(int(s) for s in record["shards"]),
            point_ranges=tuple(
                (int(lo), int(hi)) for lo, hi in record["point_ranges"]
            ),
            error_types=tuple(str(e) for e in record["error_types"]),
        )


# ----------------------------------------------------------------------
# Worker side.
#
# Everything below runs inside the persistent pool workers (or inline in
# the supervisor under the inline runner).  The functions are module-level
# and registered in SHARD_KERNELS / POOL_HANDLERS so they are picklable
# under every start method and discoverable as pool-dispatch roots by the
# R007 parallel-safety rule.  Kernels operate *in place* on views of the
# shared data plane: each command names a disjoint row range, so direct
# mutation IS the rank-order merge, and the epoch protocol (module
# docstring) detects the only hazard — a kernel that dies mid-write.
# ----------------------------------------------------------------------


def lloyd_shard_kernel(payload: Dict[str, Any], counters: OpCounters) -> Dict[str, Any]:
    labels = lloyd_assign_rows(
        payload["X"],
        payload["centroids"],
        payload["x_sq"],
        payload["c_sq"],
        counters,
        margin_factor=payload["margin_factor"],
    )
    return {"labels": labels}


def elkan_seed_shard_kernel(
    payload: Dict[str, Any], counters: OpCounters
) -> Dict[str, Any]:
    labels, ub, lb = elkan_seed_rows(payload["X"], payload["centroids"], counters)
    return {"labels": labels, "ub": ub, "lb": lb}


def elkan_shard_kernel(payload: Dict[str, Any], counters: OpCounters) -> Dict[str, Any]:
    labels = payload["labels"]
    ub = payload["ub"]
    lb = payload["lb"]
    elkan_assign_rows(
        payload["X"],
        payload["centroids"],
        labels,
        ub,
        lb,
        payload["half_cc"],
        payload["s"],
        counters,
    )
    return {"labels": labels, "ub": ub, "lb": lb}


def hamerly_seed_shard_kernel(
    payload: Dict[str, Any], counters: OpCounters
) -> Dict[str, Any]:
    labels, ub, lb = hamerly_seed_rows(payload["X"], payload["centroids"], counters)
    return {"labels": labels, "ub": ub, "lb": lb}


def hamerly_shard_kernel(
    payload: Dict[str, Any], counters: OpCounters
) -> Dict[str, Any]:
    labels = payload["labels"]
    ub = payload["ub"]
    lb = payload["lb"]
    hamerly_assign_rows(
        payload["X"],
        payload["centroids"],
        labels,
        ub,
        lb,
        payload["s"],
        counters,
    )
    return {"labels": labels, "ub": ub, "lb": lb}


#: Registry of shard assignment kernels.  Values are the worker-side entry
#: points dispatched through the persistent pool; the R007 parallel-safety
#: rule discovers them from this literal and lints them (and their callees)
#: like any other pool-dispatch root.
SHARD_KERNELS = {
    "lloyd": lloyd_shard_kernel,
    "elkan_seed": elkan_seed_shard_kernel,
    "elkan": elkan_shard_kernel,
    "hamerly_seed": hamerly_seed_shard_kernel,
    "hamerly": hamerly_shard_kernel,
}

#: steady-state kernels that *read* persistent shard state (labels/bounds)
#: and therefore cannot recompute from a torn slice
STATE_READING_KERNELS = frozenset({"elkan", "hamerly"})


def build_shard_payload(
    arrays: Dict[str, np.ndarray], command: Dict[str, Any]
) -> Dict[str, Any]:
    """Assemble one kernel's payload from data-plane views + the command.

    The bulk inputs (``X``, state slices) are *views* of the attached
    arrays; only the centroids and the O(k²) context arrive through the
    command — this is the O(k·d)-per-iteration property in code form.
    """
    lo, hi = command["lo"], command["hi"]
    kernel = command["kernel"]
    payload: Dict[str, Any] = {
        "X": arrays["x"][lo:hi],
        "centroids": command["centroids"],
    }
    payload.update(command.get("context") or {})
    if kernel == "lloyd":
        payload["x_sq"] = arrays["xsq"][lo:hi]
    elif kernel in STATE_READING_KERNELS:
        payload["labels"] = arrays["labels"][lo:hi]
        payload["ub"] = arrays["ub"][lo:hi]
        payload["lb"] = arrays["lb"][lo:hi]
    return payload


def execute_shard_command(
    arrays: Dict[str, np.ndarray],
    command: Dict[str, Any],
    counters: OpCounters,
) -> Dict[str, Any]:
    """Run one shard command against the data plane (worker or inline).

    Applies targeted faults first (so injected chaos never tears state),
    brackets the kernel with the epoch protocol's dirty/clean marks, and
    writes any kernel outputs that are not already in-place views back at
    the shard's fixed row offsets.
    """
    rank = command["rank"]
    iteration = command["iteration"]
    fault_plan = command.get("fault_plan")
    if fault_plan is not None:
        fault_plan.apply_shard(
            command["key"],
            shard=rank,
            iteration=iteration,
            attempt=command.get("attempt", 1),
        )
    epoch = arrays.get("epoch")
    if epoch is not None:
        epoch[rank] = -(iteration + 2)
    payload = build_shard_payload(arrays, command)
    out = SHARD_KERNELS[command["kernel"]](payload, counters)
    lo, hi = command["lo"], command["hi"]
    for role in ("labels", "ub", "lb"):
        value = out.get(role)
        target = arrays.get(role)
        if value is None or target is None:
            continue
        window = target[lo:hi]
        if not np.shares_memory(value, window):
            window[...] = value
    if epoch is not None:
        epoch[rank] = iteration
    return {"shard": rank}


def pool_attach_handler(state: Dict[str, Any], message: Dict[str, Any]) -> Dict[str, Any]:
    """Pool setup prologue: attach this worker to the fit's data plane.

    Replayed into respawned workers by the pool, so a killed worker
    re-attaches before its slot is reused.  Views are parked in the
    worker-local ``state`` dict; segment handles are kept alive beside
    them and closed by the worker loop on shutdown.
    """
    for role in sorted(message["specs"]):
        view, segment = attach_shm_array(message["specs"][role])
        state["arrays"][role] = view
        state["segments"].append(segment)
    return {"attached": sorted(message["specs"])}


def pool_run_handler(state: Dict[str, Any], message: Dict[str, Any]) -> Dict[str, Any]:
    """Pool steady-state command: one shard kernel against attached state.

    Counters start from zero per command; the supervisor merges them in
    shard-rank order (integer accumulation, so totals equal the
    single-process charge exactly).
    """
    counters = OpCounters()
    out = execute_shard_command(state["arrays"], message, counters)
    out["counters"] = counters
    return out


#: Command handlers of the persistent shard worker pool.  Values are the
#: worker-side dispatch roots the R007 parallel-safety rule walks (their
#: whole callee closure, including SHARD_KERNELS, is linted for hidden
#: global mutation).
POOL_HANDLERS = {
    "attach": pool_attach_handler,
    "run": pool_run_handler,
}


def _run_inline(
    arrays: Dict[str, np.ndarray],
    commands: Sequence[Dict[str, Any]],
    keys: Sequence[RunKey],
    *,
    policy: ExecutionPolicy,
) -> List[Any]:
    """In-process fallback runner with the pool's settle semantics.

    Used when the supervisor itself is a daemon pool worker (e.g. a
    sharded fit inside ``parallel_compare``) and may not spawn children.
    Runs the *same* command path as the pool workers against the
    supervisor's own arrays.  Transient failures retry with the same
    deterministic backoff; any other exception degrades to a classified
    :class:`FailedRun` in place.  No timeout isolation: ``hang`` faults
    would hang (the *outer* pool's deadline contains them), so chaos
    tests pin ``runner="process"``.
    """
    results: List[Any] = []
    start = time.monotonic()
    deadline = (
        None if policy.max_total_time is None else start + policy.max_total_time
    )
    for command, key in zip(commands, keys):
        first = time.monotonic()
        attempt = 1
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                results.append(
                    FailedRun(
                        key=key,
                        error_type="RunTimeoutError",
                        message=(
                            f"batch exceeded the {policy.max_total_time:.3g}s "
                            "max_total_time budget"
                        ),
                        attempts=attempt,
                        elapsed=time.monotonic() - first,
                    )
                )
                break
            try:
                counters = OpCounters()
                attempt_command = dict(command)
                attempt_command["attempt"] = attempt
                out = execute_shard_command(arrays, attempt_command, counters)
                out["counters"] = counters
                results.append(out)
                break
            except TransientError as exc:
                if attempt <= policy.retries:
                    delay = policy.backoff_delay(str(key), attempt)
                    if deadline is None or time.monotonic() + delay < deadline:
                        time.sleep(delay)
                        attempt += 1
                        continue
                results.append(
                    FailedRun(
                        key=key,
                        error_type="TransientError",
                        message=str(exc),
                        attempts=attempt,
                        elapsed=time.monotonic() - first,
                    )
                )
                break
            except Exception as exc:  # mirror the pool's classification
                results.append(
                    FailedRun(
                        key=key,
                        error_type=type(exc).__name__,
                        message=str(exc),
                        attempts=attempt,
                        elapsed=time.monotonic() - first,
                    )
                )
                break
    return results


# ----------------------------------------------------------------------
# Supervisor side.
# ----------------------------------------------------------------------


class _ShardedAssignMixin:
    """Replaces the assignment pass with persistent-pool shard fan-out.

    Mixed in *before* a vectorized algorithm class, it overrides ``fit``
    (data-plane/pool lifecycle around the inherited loop), ``_assign``
    (command fan-out / recover), ``_refine`` (rank-order merge fold for
    the ``rescan`` mode), ``_update_bounds`` (replay transition), and
    ``_extras`` (degradation/resume/IPC reporting).  Everything else —
    setup, initialization, convergence, drift correction — is the
    inherited single-process implementation, which is exactly why the
    result is bit-identical.
    """

    #: registry key of the steady-state assignment kernel
    shard_kernel: str = ""
    #: registry key of the iteration-0 (seeding) kernel; None when the
    #: steady-state kernel is already a full scan (Lloyd)
    shard_seed_kernel: Optional[str] = None

    def __init__(
        self,
        *,
        shards: int = 2,
        shard_policy="strict",
        execution: Optional[ExecutionPolicy] = None,
        fault_plan=None,
        checkpoint=None,
        runner: str = "auto",
        mp_context=None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if int(shards) < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if runner not in SHARD_RUNNERS:
            raise ConfigurationError(
                f"unknown shard runner {runner!r}; known: {SHARD_RUNNERS}"
            )
        self.shards = int(shards)
        self.shard_policy = ShardFailurePolicy.parse(shard_policy)
        self.shard_execution = execution if execution is not None else ExecutionPolicy()
        self.shard_fault_plan = fault_plan
        self.shard_runner = runner
        self._mp_context = mp_context
        self._checkpoint = (
            ShardCheckpoint(checkpoint) if checkpoint is not None else None
        )
        self._ranges: List[Tuple[int, int]] = []
        self._shard_has_state: List[bool] = []
        self._degraded: List[DegradedIteration] = []
        self._replay: Dict[int, Dict[str, Any]] = {}
        self._fit_key: Optional[str] = None
        self._current_iteration = -1
        self._last_was_replay = False
        self._resumed_iterations = 0
        self._runner_resolved: Optional[str] = None
        self._pool: Optional[WorkerPool] = None
        self._plane_lease: Optional[ShmLease] = None
        self._plane_arrays: Optional[Dict[str, np.ndarray]] = None
        self._epoch: Optional[np.ndarray] = None
        self._live_iterations = 0
        self._setup_ipc_bytes = 0

    # ------------------------------------------------------------------
    # Fit-loop hooks.
    # ------------------------------------------------------------------

    def fit(self, X, k, **kwargs):
        """Inherited fit loop bracketed by the execution-backend lifecycle.

        The ``finally`` is the single release point for every exit path —
        normal completion, :class:`ShardFailedError`, ``KeyboardInterrupt``,
        a worker kill mid-iteration — so the pool is always shut down and
        the shared-memory lease always unlinked (tests assert ``/dev/shm``
        is clean after chaos runs; :mod:`repro.exec.shm` adds an ``atexit``
        backstop for a supervisor that dies before reaching it).
        """
        try:
            return super().fit(X, k, **kwargs)
        finally:
            self._release_execution_backend()

    def _setup(self) -> None:
        super()._setup()
        self._release_execution_backend()
        n = len(self.X)
        # Degenerate shards are clamped away rather than erroring: a tiny
        # smoke fit with shards > n still runs, one row per shard.
        effective = max(1, min(self.shards, n))
        self._ranges = shard_bounds(n, effective)
        self._shard_has_state = [False] * effective
        self._degraded = []
        self._replay = {}
        self._fit_key = None
        self._current_iteration = -1
        self._last_was_replay = False
        self._resumed_iterations = 0
        self._live_iterations = 0
        self._setup_ipc_bytes = 0

    def _assign(self, iteration: int) -> None:
        self._current_iteration = iteration
        entry_crc = (
            array_crc(self._centroids) if self._checkpoint is not None else 0
        )
        if self._maybe_replay(iteration, entry_crc):
            return
        self._last_was_replay = False
        self._ensure_execution_backend()
        keys = self._shard_keys(iteration)
        commands = self._shard_commands(iteration, keys)
        if self._pool is not None:
            self._sync_state_to_plane()
            outcomes = list(self._pool.run_batch(commands, keys))
        else:
            outcomes = _run_inline(
                self._local_arrays(), commands, keys, policy=self.shard_execution
            )
        self._live_iterations += 1
        losses: Dict[int, FailedRun] = {
            rank: out
            for rank, out in enumerate(outcomes)
            if isinstance(out, FailedRun)
        }
        if losses:
            losses = self._recover(iteration, commands, outcomes, losses)
        for rank, out in enumerate(outcomes):
            if isinstance(out, FailedRun):
                continue
            self.counters.merge(out["counters"])
            self._shard_has_state[rank] = True
        degraded = None
        if losses:
            ranks = tuple(sorted(losses))
            degraded = DegradedIteration(
                iteration=iteration,
                shards=ranks,
                point_ranges=tuple(self._ranges[r] for r in ranks),
                error_types=tuple(losses[r].error_type for r in ranks),
            )
            self._degraded.append(degraded)
        self._write_checkpoint(iteration, entry_crc, degraded)

    def _refine(self, iteration: int, previous_labels: np.ndarray) -> np.ndarray:
        if self.refinement != "rescan":
            # ``delta`` handles degraded shards natively: a lost shard's
            # labels did not move, and a late-seeded row's old label is -1,
            # which the mover filter already excludes from subtraction.
            return super()._refine(iteration, previous_labels)
        # Rank-order merge fold: one scatter-add over the concatenated
        # survivor rows — bit-identical to the unsharded rescan when every
        # shard is present (see merge_shard_assignments).
        slices = [self._labels[lo:hi] for lo, hi in self._ranges]
        lost = [
            rank for rank, ok in enumerate(self._shard_has_state) if not ok
        ]
        _, sums, counts = merge_shard_assignments(
            self.X, self.k, slices, self._ranges, lost=lost
        )
        self._sums[:] = sums
        self._counts = counts
        folded = len(self.X) - sum(
            self._ranges[rank][1] - self._ranges[rank][0] for rank in lost
        )
        self.counters.add_point_accesses(folded)
        new_centroids = self._centroids.copy()
        nonempty = self._counts > 0
        new_centroids[nonempty] = self._sums[nonempty] / self._counts[nonempty, None]
        return new_centroids

    def _update_bounds(self, drifts: np.ndarray) -> None:
        if self._last_was_replay:
            # While the next iteration will also replay, bound arrays may
            # not even exist — skip maintenance entirely.  On the last
            # replayed iteration, transition to live execution by seeding
            # sound conservative bounds (exactness does not depend on
            # tightness; see docs/sharding.md on resume semantics).
            if (self._current_iteration + 1) not in self._replay:
                self._reseed_bounds()
                self._last_was_replay = False
            return
        super()._update_bounds(drifts)

    def _extras(self) -> Dict[str, Any]:
        extras = dict(super()._extras())
        extras["shards"] = len(self._ranges)
        extras["shard_policy"] = self.shard_policy.mode
        if self._runner_resolved is not None:
            extras["shard_runner"] = self._runner_resolved
        if self._degraded:
            extras["degraded_iterations"] = [d.as_dict() for d in self._degraded]
        if self._resumed_iterations:
            extras["resumed_iterations"] = self._resumed_iterations
        if self._pool is not None:
            stats = self._pool.stats()
            total = stats["bytes_sent"] + stats["bytes_received"]
            live = max(1, self._live_iterations)
            extras["ipc"] = {
                "bytes_sent": stats["bytes_sent"],
                "bytes_received": stats["bytes_received"],
                "messages": stats["messages"],
                "setup_bytes": self._setup_ipc_bytes,
                "bytes_per_iter": int(
                    round((total - self._setup_ipc_bytes) / live)
                ),
                "data_plane_bytes": (
                    self._plane_lease.data_plane_bytes
                    if self._plane_lease is not None
                    else 0
                ),
            }
            extras["pool"] = {
                "workers": stats["workers"],
                "spawned_processes": stats["spawned_processes"],
                "respawns": stats["respawns"],
            }
        return extras

    # ------------------------------------------------------------------
    # Execution backend lifecycle (control plane + data plane).
    # ------------------------------------------------------------------

    def _resolve_runner(self) -> str:
        runner = self.shard_runner
        daemonic = multiprocessing.current_process().daemon
        if runner == "auto":
            # A daemon pool worker (harness parallel_compare) may not
            # spawn children; run shards sequentially in-process there.
            runner = "inline" if daemonic else "process"
        elif runner == "process" and daemonic:
            # Explicit request that cannot be honored: multiprocessing
            # would die with a bare AssertionError at Process.start().
            raise ConfigurationError(
                "shard_runner='process' spawns worker processes, which a "
                "daemonic pool worker (e.g. a parallel_compare cell) may "
                "not do; use shard_runner='auto' or 'inline' here"
            )
        return runner

    def _ensure_execution_backend(self) -> None:
        """Lazily build the per-fit execution backend, exactly once.

        First live iteration only: resolve the runner, allocate the epoch
        vector, and — for the process runner — publish the data plane and
        spawn + attach the persistent pool.  Replayed iterations never get
        here, so a checkpoint-resumed fit pays for workers only when it
        goes live.
        """
        if self._runner_resolved is None:
            self._runner_resolved = self._resolve_runner()
            self._epoch = np.full(len(self._ranges), -1, dtype=np.int64)
        if self._runner_resolved != "process" or self._pool is not None:
            return
        token = fit_token(
            self.name,
            len(self._ranges),
            self.shard_policy.mode,
            self.X,
            self._centroids,
        )
        lease = ShmLease(token)
        try:
            arrays: Dict[str, np.ndarray] = {
                "x": lease.publish("x", self.X, mutable=False)
            }
            for role, (array, mutable) in self._state_arrays().items():
                arrays[role] = lease.publish(role, array, mutable=mutable)
            arrays["epoch"] = lease.publish("epoch", self._epoch, mutable=True)
            self._epoch = arrays["epoch"]
            self._rebind_state(arrays)
            pool = WorkerPool(
                POOL_HANDLERS,
                workers=len(self._ranges),
                policy=self.shard_execution,
                mp_context=self._mp_context,
            )
            pool.start()
            pool.setup([{"op": "attach", "specs": lease.specs()}])
        except BaseException:
            lease.release()
            raise
        self._plane_lease = lease
        self._plane_arrays = arrays
        self._pool = pool
        self._setup_ipc_bytes = (
            pool.transport.bytes_sent + pool.transport.bytes_received
        )

    def _sync_state_to_plane(self) -> None:
        """Safety net: re-home state an inherited hook rebound off-plane.

        The inherited bound maintenance is fully in-place, so in the
        normal flow every mutable state array *is* its plane view and this
        is a no-op identity walk.  If a future override rebinds one, its
        contents are copied back into the segment and the attribute
        re-pointed, keeping worker reads coherent.
        """
        arrays = self._plane_arrays
        if arrays is None:
            return
        rebound = False
        for role, (array, mutable) in self._state_arrays().items():
            if mutable and array is not arrays[role]:
                arrays[role][...] = array
                rebound = True
        if rebound:
            self._rebind_state(arrays)

    def _release_execution_backend(self) -> None:
        """Tear down pool + data plane; idempotent, runs on every exit."""
        pool, self._pool = self._pool, None
        lease, self._plane_lease = self._plane_lease, None
        try:
            if pool is not None:
                pool.shutdown()
        finally:
            if self._plane_arrays is not None:
                # Copy state out of the segments so the fitted model (and
                # any later inspection) outlives the unlink below.
                self._unbind_state()
                if self._epoch is not None:
                    self._epoch = np.array(self._epoch, copy=True)
                self._plane_arrays = None
            if lease is not None:
                lease.release()
        self._runner_resolved = None

    def _local_arrays(self) -> Dict[str, np.ndarray]:
        """The data plane as seen from the supervisor (inline/recompute).

        Under the process runner the mutable entries are the very same
        segment views the workers write, so inline recompute operates on
        identical state.
        """
        arrays: Dict[str, np.ndarray] = {"x": self.X}
        if self._epoch is not None:
            arrays["epoch"] = self._epoch
        for role, (array, _mutable) in self._state_arrays().items():
            arrays[role] = array
        return arrays

    # ------------------------------------------------------------------
    # Dispatch and recovery.
    # ------------------------------------------------------------------

    def _shard_commands(
        self, iteration: int, keys: Sequence[RunKey]
    ) -> List[Dict[str, Any]]:
        """One ``run`` command per shard: centroid broadcast + bookkeeping."""
        kernels = [
            self._shard_kernel_for(rank) for rank in range(len(self._ranges))
        ]
        context = self._command_context(kernels)
        commands: List[Dict[str, Any]] = []
        for rank, (lo, hi) in enumerate(self._ranges):
            commands.append(
                {
                    "op": "run",
                    "kernel": kernels[rank],
                    "rank": rank,
                    "lo": lo,
                    "hi": hi,
                    "iteration": iteration,
                    "centroids": self._centroids,
                    "context": context.get(kernels[rank]),
                    "key": keys[rank],
                    "fault_plan": self.shard_fault_plan,
                }
            )
        return commands

    def _recover(
        self,
        iteration: int,
        commands: List[Dict[str, Any]],
        outcomes: List[Any],
        losses: Dict[int, FailedRun],
    ) -> Dict[int, FailedRun]:
        """Apply the failure policy to terminally-failed shards.

        Returns the ranks still lost after recovery (empty for
        ``recompute``); mutates ``outcomes`` in place for recovered ranks.
        """
        mode = self.shard_policy.mode
        if mode == "strict":
            rank = min(losses)
            failure = losses[rank]
            raise ShardFailedError(
                f"shard {rank} of {self.name} failed terminally at iteration "
                f"{iteration}: {failure.error_type}: {failure.message}",
                shard=rank,
                iteration=iteration,
                error_type=failure.error_type,
            )
        if mode == "recompute":
            # Deterministic recovery: injected faults fire before the
            # epoch dirty mark, so the shared state still holds the exact
            # pre-iteration inputs and an inline re-run is bit-identical
            # to a fault-free worker.  The epoch guard refuses to
            # recompute a state-reading kernel from a genuinely torn
            # slice.  The recovery path itself is deliberately fault-free
            # — injected faults target workers, not the supervisor.
            arrays = self._local_arrays()
            for rank in sorted(losses):
                if self._slice_is_torn(commands[rank]):
                    failure = losses[rank]
                    raise ShardFailedError(
                        f"shard {rank} of {self.name} died mid-kernel at "
                        f"iteration {iteration} leaving its state slice torn "
                        f"({failure.error_type}: {failure.message}); recompute "
                        "cannot reproduce the fault-free iteration",
                        shard=rank,
                        iteration=iteration,
                        error_type="ShardStateCorrupted",
                    )
                command = dict(commands[rank])
                command["fault_plan"] = None
                command["attempt"] = 1
                counters = OpCounters()
                out = execute_shard_command(arrays, command, counters)
                out["counters"] = counters
                outcomes[rank] = out
            return {}
        # degrade: a torn state-reading shard cannot keep "stale but
        # sound" bounds — mark it stateless so its next pass reseeds.
        for rank in sorted(losses):
            if self._slice_is_torn(commands[rank]):
                self._shard_has_state[rank] = False
        return losses

    def _slice_is_torn(self, command: Dict[str, Any]) -> bool:
        return (
            command["kernel"] in STATE_READING_KERNELS
            and self._epoch is not None
            and int(self._epoch[command["rank"]]) <= EPOCH_DIRTY_THRESHOLD
        )

    def _shard_keys(self, iteration: int) -> List[RunKey]:
        d = self.X.shape[1]
        return [
            RunKey(
                algorithm=self.name,
                dataset=f"shard[{lo}:{hi})",
                n=hi - lo,
                d=d,
                k=self.k,
                seed=rank,
                max_iter=iteration,
            )
            for rank, (lo, hi) in enumerate(self._ranges)
        ]

    # ------------------------------------------------------------------
    # Checkpoint replay.
    # ------------------------------------------------------------------

    def _maybe_replay(self, iteration: int, entry_crc: int) -> bool:
        if self._checkpoint is None:
            return False
        if iteration == 0:
            self._fit_key = self._checkpoint.fit_key(
                self.name,
                len(self._ranges),
                self.shard_policy.mode,
                self.X,
                self._centroids,
            )
            self._replay = self._checkpoint.load(self._fit_key)
        record = self._replay.get(iteration)
        if record is None:
            return False
        labels = validate_record(
            record, n=len(self.X), centroid_digest=entry_crc
        )
        self._labels[:] = labels
        # Counters restore *absolutely* from the post-assignment snapshot:
        # the supervisor charged nothing this iteration (no context, no
        # dispatch), and skipped bound maintenance heals itself because the
        # next record's snapshot already includes it.
        for name, value in record.get("counters", {}).items():
            if hasattr(self.counters, name):
                setattr(self.counters, name, int(value))
        restored = shard_state_from_record(record)
        if restored is not None and len(restored) == len(self._shard_has_state):
            self._shard_has_state = restored
        if record.get("degraded"):
            self._degraded.append(DegradedIteration.from_dict(record["degraded"]))
        self._last_was_replay = True
        self._resumed_iterations += 1
        return True

    def _write_checkpoint(
        self,
        iteration: int,
        entry_crc: int,
        degraded: Optional[DegradedIteration],
    ) -> None:
        if self._checkpoint is None:
            return
        self._checkpoint.append(
            {
                "fit_key": self._fit_key,
                "iteration": iteration,
                "labels": encode_labels(self._labels),
                "counters": self.counters.snapshot().as_dict(),
                "centroid_crc": entry_crc,
                "has_state": [int(flag) for flag in self._shard_has_state],
                "degraded": degraded.as_dict() if degraded is not None else None,
            }
        )

    # ------------------------------------------------------------------
    # Per-algorithm hooks.
    # ------------------------------------------------------------------

    def _shard_kernel_for(self, rank: int) -> str:
        """Registry key of the kernel shard ``rank`` runs this iteration."""
        raise NotImplementedError

    def _command_context(
        self, kernels: Sequence[str]
    ) -> Dict[str, Dict[str, Any]]:
        """Per-kernel broadcast context, charged once in the supervisor."""
        raise NotImplementedError

    def _state_arrays(self) -> Dict[str, Tuple[np.ndarray, bool]]:
        """Role -> (array, mutable) map of this algorithm's plane state."""
        raise NotImplementedError

    def _rebind_state(self, arrays: Dict[str, np.ndarray]) -> None:
        """Point the mutable state attributes at their plane views."""
        raise NotImplementedError

    def _unbind_state(self) -> None:
        """Copy mutable state out of the plane views (pre-unlink)."""
        raise NotImplementedError

    def _reseed_bounds(self) -> None:
        """Seed sound conservative bounds at the replay→live transition.

        Must mutate the bound arrays *in place* — rebinding them would
        detach the supervisor from the views the workers attached to.
        """


class ShardedLloydKMeans(_ShardedAssignMixin, VectorizedLloydKMeans):
    """Sharded vectorized Lloyd: every iteration is a full scan."""

    shard_kernel = "lloyd"

    def _shard_kernel_for(self, rank: int) -> str:
        return self.shard_kernel

    def _command_context(self, kernels):
        return {
            "lloyd": {
                "c_sq": sq_norms(self._centroids),
                "margin_factor": self._MARGIN_FACTOR,
            }
        }

    def _state_arrays(self):
        if self._x_sq is None:
            self._x_sq = sq_norms(self.X)
        return {"xsq": (self._x_sq, False), "labels": (self._labels, True)}

    def _rebind_state(self, arrays):
        self._labels = arrays["labels"]

    def _unbind_state(self):
        self._labels = np.array(self._labels, copy=True)


class _BoundedShardMixin(_ShardedAssignMixin):
    """Shared fan-out logic for the bound-maintaining pair (Elkan/Hamerly).

    A shard runs the *seed* kernel until its first successful pass (always
    iteration 0 in a fault-free fit; later under ``degrade`` when the
    iteration-0 worker was lost), then the steady-state assignment kernel
    on its slice of the shared bound state.
    """

    def _shard_kernel_for(self, rank: int) -> str:
        if not self._shard_has_state[rank]:
            return self.shard_seed_kernel
        return self.shard_kernel

    def _command_context(self, kernels):
        if self.shard_kernel not in kernels:
            return {}
        return {self.shard_kernel: self._steady_context()}

    def _state_arrays(self):
        self._ensure_bound_arrays()
        return {
            "labels": (self._labels, True),
            "ub": (self._ub, True),
            "lb": (self._lb, True),
        }

    def _rebind_state(self, arrays):
        self._labels = arrays["labels"]
        self._ub = arrays["ub"]
        self._lb = arrays["lb"]

    def _unbind_state(self):
        self._labels = np.array(self._labels, copy=True)
        self._ub = np.array(self._ub, copy=True)
        self._lb = np.array(self._lb, copy=True)

    def _reseed_bounds(self):
        self._ensure_bound_arrays()
        self._ub.fill(np.inf)
        self._lb.fill(0.0)

    def _steady_context(self) -> Dict[str, Any]:
        """Centroid-level broadcast context, charged once in the supervisor."""
        raise NotImplementedError

    def _ensure_bound_arrays(self) -> None:
        raise NotImplementedError


class ShardedElkanKMeans(_BoundedShardMixin, VectorizedElkanKMeans):
    """Sharded vectorized Elkan with supervisor-computed separations."""

    shard_kernel = "elkan"
    shard_seed_kernel = "elkan_seed"

    def _steady_context(self):
        half_cc, s = self._separation_context()
        return {"half_cc": half_cc, "s": s}

    def _ensure_bound_arrays(self):
        if self._ub is None:
            n = len(self.X)
            self._ub = np.zeros(n)
            self._lb = np.zeros((n, self.k))


class ShardedHamerlyKMeans(_BoundedShardMixin, VectorizedHamerlyKMeans):
    """Sharded vectorized Hamerly with supervisor-computed separations."""

    shard_kernel = "hamerly"
    shard_seed_kernel = "hamerly_seed"

    def _steady_context(self):
        return {"s": self._separation_context()}

    def _ensure_bound_arrays(self):
        if self._ub is None:
            n = len(self.X)
            self._ub = np.zeros(n)
            self._lb = np.zeros(n)


#: Algorithms with a sharded implementation.  Yinyang and index k-means
#: keep per-iteration *global* group/tree state inside the assignment pass
#: and are not row-subset decomposable without changing their decision
#: procedure, so they are deliberately absent.
SHARDED_ALGORITHMS: Dict[str, type] = {
    "lloyd": ShardedLloydKMeans,
    "elkan": ShardedElkanKMeans,
    "hamerly": ShardedHamerlyKMeans,
}


def make_sharded_algorithm(name: str, **kwargs):
    """Instantiate a sharded algorithm by registry name.

    Raises :class:`ConfigurationError` for algorithms without a sharded
    implementation; accepts the mixin's engine knobs (``shards``,
    ``shard_policy``, ``execution``, ``fault_plan``, ``checkpoint``,
    ``runner``) plus the wrapped algorithm's own keyword arguments.
    """
    try:
        cls = SHARDED_ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(SHARDED_ALGORITHMS))
        raise ConfigurationError(
            f"algorithm {name!r} has no sharded implementation; "
            f"sharded execution supports: {known}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "DegradedIteration",
    "POOL_HANDLERS",
    "SHARD_KERNELS",
    "SHARDED_ALGORITHMS",
    "SHARD_POLICY_MODES",
    "ShardFailurePolicy",
    "ShardedElkanKMeans",
    "ShardedHamerlyKMeans",
    "ShardedLloydKMeans",
    "build_shard_payload",
    "execute_shard_command",
    "make_sharded_algorithm",
    "shard_bounds",
]
