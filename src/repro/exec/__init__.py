"""Execution engines layered above the core algorithms.

``repro.exec.sharded`` runs the assignment phase of the vectorized
algorithms across a persistent supervised worker pool
(``repro.exec.pool``) over a zero-copy shared-memory data plane
(``repro.exec.shm``), with deterministic bit-identical merging and
configurable failure policies; ``repro.exec.checkpoint`` persists
per-iteration shard state so interrupted fits resume.  See
docs/sharding.md.
"""

from repro.exec.checkpoint import ShardCheckpoint, fit_token
from repro.exec.pool import WorkerPool
from repro.exec.sharded import (
    POOL_HANDLERS,
    SHARD_KERNELS,
    SHARD_POLICY_MODES,
    SHARDED_ALGORITHMS,
    DegradedIteration,
    ShardFailurePolicy,
    ShardedElkanKMeans,
    ShardedHamerlyKMeans,
    ShardedLloydKMeans,
    make_sharded_algorithm,
    shard_bounds,
)
from repro.exec.shm import ShmArraySpec, ShmLease, attach_shm_array, segment_name

__all__ = [
    "DegradedIteration",
    "POOL_HANDLERS",
    "SHARD_KERNELS",
    "SHARDED_ALGORITHMS",
    "SHARD_POLICY_MODES",
    "ShardCheckpoint",
    "ShardFailurePolicy",
    "ShardedElkanKMeans",
    "ShardedHamerlyKMeans",
    "ShardedLloydKMeans",
    "ShmArraySpec",
    "ShmLease",
    "WorkerPool",
    "attach_shm_array",
    "fit_token",
    "make_sharded_algorithm",
    "segment_name",
    "shard_bounds",
]
