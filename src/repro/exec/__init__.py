"""Execution engines layered above the core algorithms.

``repro.exec.sharded`` runs the assignment phase of the vectorized
algorithms across supervised worker processes with deterministic,
bit-identical merging and configurable failure policies;
``repro.exec.checkpoint`` persists per-iteration shard state so
interrupted fits resume.  See docs/sharding.md.
"""

from repro.exec.checkpoint import ShardCheckpoint
from repro.exec.sharded import (
    SHARD_KERNELS,
    SHARD_POLICY_MODES,
    SHARDED_ALGORITHMS,
    DegradedIteration,
    ShardFailurePolicy,
    ShardedElkanKMeans,
    ShardedHamerlyKMeans,
    ShardedLloydKMeans,
    make_sharded_algorithm,
    shard_bounds,
)

__all__ = [
    "DegradedIteration",
    "SHARD_KERNELS",
    "SHARDED_ALGORITHMS",
    "SHARD_POLICY_MODES",
    "ShardCheckpoint",
    "ShardFailurePolicy",
    "ShardedElkanKMeans",
    "ShardedHamerlyKMeans",
    "ShardedLloydKMeans",
    "make_sharded_algorithm",
    "shard_bounds",
]
