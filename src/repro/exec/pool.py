"""Persistent supervised worker pool for the sharded execution engine.

The PR 7 engine paid process-spawn latency *per shard per iteration*:
``supervised_map`` forks, runs one kernel call, and reaps.  With the
shared-memory data plane (:mod:`repro.exec.shm`) carrying the bulk bytes,
the remaining cost is exactly that spawn churn — so this module keeps the
workers alive.  A :class:`WorkerPool` spawns its processes **once per
fit**, replays a recorded setup prologue (segment attach) into every
fresh worker, and then shuttles O(k·d) command/result messages over
duplex pipes for as many batches as the fit has iterations.

The supervision contract is the same one :func:`repro.eval.runtime
.supervised_map` established and the chaos suite pins:

* a command that misses its :class:`~repro.eval.runtime.ExecutionPolicy`
  deadline gets its worker killed (``RunTimeoutError``) — a hung
  long-lived worker cannot stall the fit;
* a worker that dies mid-command (signal, ``os._exit``) is detected
  (``WorkerCrashError``) without breaking the batch;
* :class:`~repro.common.exceptions.TransientError` failures retry with
  the policy's deterministic backoff, re-sending the *same* command;
* a killed or crashed worker is respawned lazily — with the setup
  prologue replayed so it re-attaches to the data plane — before the
  slot is used again;
* every batch slot settles to a result or a structured
  :class:`~repro.eval.runtime.FailedRun`, never a placeholder, even if
  the supervisor itself aborts (``SupervisorAborted``).

Workers are deliberately *uniform*: every worker attaches to the whole
data plane and any worker can execute any shard's command (the command
carries the row range), so a respawned process slots straight back in.

All pipe traffic is pickled by the pool itself (``send_bytes`` /
``recv_bytes``) so a :class:`~repro.instrumentation.TransportCounters`
can account the exact IPC bytes — the number the BENCH entries and the
O(k·d)-per-iteration claim are audited against.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.common.exceptions import (
    RunTimeoutError,
    TransientError,
    ValidationError,
    WorkerCrashError,
)
from repro.eval.runtime import (
    POLL_INTERVAL,
    ExecutionPolicy,
    FailedRun,
    RunKey,
    default_mp_context,
    terminate_process,
)
from repro.instrumentation import TransportCounters

#: ops the worker loop answers itself, reserved from handler registries
RESERVED_OPS = ("__ping__", "__shutdown__")

#: result-slot placeholder while a command is in flight (a handler may
#: legitimately return None, so None cannot mark "unfinished")
_PENDING = object()


def _dumps(message: Any) -> bytes:
    return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)


def _pool_worker_main(conn, handlers: Mapping[str, Callable[[dict, dict], Any]]) -> None:
    """Long-lived worker loop: receive a command, dispatch, reply, repeat.

    ``state`` is worker-local scratch that persists across commands — the
    attach handler parks its shared-memory views under ``state["arrays"]``
    and the segment handles under ``state["segments"]`` so later commands
    reuse them without re-attaching.  The loop ends on ``__shutdown__`` or
    a broken pipe; attached segments are closed (never unlinked — the
    supervisor's lease owns the names) on the way out.
    """
    state: Dict[str, Any] = {"arrays": {}, "segments": []}
    try:
        while True:
            try:
                raw = conn.recv_bytes()
            except (EOFError, OSError):
                break
            message = pickle.loads(raw)
            op = message.get("op")
            if op == "__shutdown__":
                break
            if op == "__ping__":
                outcome: tuple = ("ok", {"pid": os.getpid()})
            else:
                try:
                    handler = handlers[op]
                    outcome = ("ok", handler(state, message))
                except BaseException as exc:  # report across the boundary
                    outcome = (
                        "error",
                        type(exc).__name__,
                        str(exc),
                        isinstance(exc, TransientError),
                    )
            try:
                payload = _dumps(outcome)
            except Exception as exc:
                payload = _dumps(
                    ("error", type(exc).__name__, f"unpicklable result: {exc}", False)
                )
            try:
                conn.send_bytes(payload)
            except (BrokenPipeError, OSError):
                break
    finally:
        for segment in state.get("segments", []):
            try:
                segment.close()
            except (OSError, BufferError):
                pass  # supervisor-side unlink still reclaims the name
        conn.close()


@dataclass
class _Member:
    """One pool slot: a (possibly respawned) long-lived worker process."""

    slot: int
    proc: Any = None
    conn: Any = None
    alive: bool = False


@dataclass
class _PoolTask:
    """Supervisor bookkeeping for one in-flight batch command."""

    index: int
    command: Dict[str, Any]
    key: RunKey
    attempt: int = 1
    first_start: float = 0.0
    deadline: Optional[float] = None
    not_before: float = 0.0


class WorkerPool:
    """Supervised pool of persistent worker processes.

    ``handlers`` maps command ``op`` names to module-level callables
    ``handler(state, message)`` executed inside the workers (module-level
    so they survive a spawn-context pickle; the static-analysis R007 rule
    treats literal ``POOL_HANDLERS``-style registries as dispatch roots).
    """

    def __init__(
        self,
        handlers: Mapping[str, Callable[[dict, dict], Any]],
        *,
        workers: int,
        policy: Optional[ExecutionPolicy] = None,
        mp_context=None,
    ) -> None:
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        for op in RESERVED_OPS:
            if op in handlers:
                raise ValidationError(f"handler op {op!r} is reserved by the pool")
        self._handlers = dict(handlers)
        self._workers = int(workers)
        self._policy = policy or ExecutionPolicy()
        self._ctx = mp_context or default_mp_context()
        self._members: List[_Member] = [_Member(slot=i) for i in range(self._workers)]
        self._setup_messages: List[Dict[str, Any]] = []
        self._started = False
        self._closed = False
        self.transport = TransportCounters()
        self.spawned_processes = 0

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Spawn every worker process (idempotent)."""
        if self._closed:
            raise ValidationError("pool already shut down")
        if not self._started:
            self._started = True
            for member in self._members:
                self._spawn(member)
        return self

    def setup(self, messages: Sequence[Dict[str, Any]]) -> None:
        """Run a setup prologue in every worker and record it for replay.

        Each message is dispatched like a normal command and must succeed
        in every worker (failures raise — a fit cannot start on a
        half-attached pool).  The prologue is replayed into any worker
        respawned after a kill or crash, restoring its data-plane state.
        """
        self.start()
        self._setup_messages.extend(dict(message) for message in messages)
        for member in self._members:
            for message in messages:
                self._request(member, dict(message))

    def ping(self) -> List[Optional[int]]:
        """Liveness heartbeat: per-slot worker pid, or None if unresponsive.

        Dead slots are left dead (they respawn lazily on next use); a
        *hung* worker that misses the ping deadline is killed so the slot
        can respawn cleanly.
        """
        pids: List[Optional[int]] = []
        for member in self._members:
            if not member.alive:
                pids.append(None)
                continue
            try:
                reply = self._request(member, {"op": "__ping__"})
            except (WorkerCrashError, RunTimeoutError):
                pids.append(None)
            else:
                pids.append(int(reply["pid"]))
        return pids

    def shutdown(self) -> None:
        """Stop every worker (graceful, then forceful); idempotent."""
        if self._closed:
            return
        self._closed = True
        for member in self._members:
            if member.conn is not None and member.alive:
                try:
                    self._send(member, {"op": "__shutdown__"})
                except (BrokenPipeError, OSError):
                    pass  # already dead; the join/terminate below settles it
            if member.proc is not None:
                member.proc.join(1.0)
            terminate_process(member.proc, member.conn)
            member.proc = None
            member.conn = None
            member.alive = False

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def respawns(self) -> int:
        """Processes spawned beyond the initial complement."""
        return max(0, self.spawned_processes - self._workers)

    def stats(self) -> Dict[str, int]:
        stats: Dict[str, int] = {
            "workers": self._workers,
            "spawned_processes": self.spawned_processes,
            "respawns": self.respawns,
        }
        stats.update(self.transport.as_dict())
        return stats

    # ------------------------------------------------------------------
    # Batch execution.
    # ------------------------------------------------------------------

    def run_batch(
        self,
        commands: Sequence[Dict[str, Any]],
        keys: Sequence[RunKey],
    ) -> List[Union[Any, FailedRun]]:
        """Execute one batch of commands across the pool.

        Same settled-list contract as :func:`supervised_map`: every slot
        of the returned list is the handler's result or a
        :class:`FailedRun`, commands retry per the pool policy with the
        command's ``attempt`` field rewritten on each send, and
        ``policy.max_total_time`` bounds the batch from its first call.
        """
        if self._closed:
            raise ValidationError("pool already shut down")
        self.start()
        policy = self._policy
        commands = list(commands)
        keys = list(keys)
        if len(commands) != len(keys):
            raise ValidationError(f"{len(commands)} commands but {len(keys)} run keys")
        if not commands:
            return []
        results: List[Union[Any, FailedRun]] = [_PENDING] * len(commands)
        tasks = [
            _PoolTask(index=i, command=dict(command), key=key)
            for i, (command, key) in enumerate(zip(commands, keys))
        ]
        ready_queue = deque(tasks)
        backoff_wait: List[_PoolTask] = []
        running: Dict[int, _PoolTask] = {}
        batch_start = time.monotonic()
        batch_deadline = (
            None
            if policy.max_total_time is None
            else batch_start + policy.max_total_time
        )

        def settle(
            task: _PoolTask, error_type: str, message: str, retryable: bool
        ) -> None:
            if retryable and task.attempt <= policy.retries:
                not_before = time.monotonic() + policy.backoff_delay(
                    str(task.key), task.attempt
                )
                if batch_deadline is None or not_before < batch_deadline:
                    task.not_before = not_before
                    task.attempt += 1
                    backoff_wait.append(task)
                    return
            results[task.index] = FailedRun(
                key=task.key,
                error_type=error_type,
                message=message,
                attempts=task.attempt,
                elapsed=time.monotonic() - (task.first_start or batch_start),
            )

        def expire_batch() -> None:
            message = (
                f"batch exceeded the {policy.max_total_time:.3g}s "
                "max_total_time budget"
            )
            for slot in list(running):
                self._retire(self._members[slot])
            running.clear()
            ready_queue.clear()
            backoff_wait.clear()
            for task in tasks:
                if results[task.index] is _PENDING:
                    results[task.index] = FailedRun(
                        key=task.key,
                        error_type="RunTimeoutError",
                        message=message,
                        attempts=task.attempt,
                        elapsed=time.monotonic() - (task.first_start or batch_start),
                    )

        try:
            while ready_queue or backoff_wait or running:
                now = time.monotonic()
                if batch_deadline is not None and now >= batch_deadline:
                    expire_batch()
                    break
                for task in [t for t in backoff_wait if t.not_before <= now]:
                    backoff_wait.remove(task)
                    ready_queue.append(task)
                while ready_queue:
                    slot = self._free_slot(running)
                    if slot is None:
                        break
                    task = ready_queue.popleft()
                    member = self._members[slot]
                    try:
                        self._ensure_member(member)
                    except (WorkerCrashError, RunTimeoutError) as exc:
                        settle(
                            task, type(exc).__name__, str(exc), policy.retry_on_crash
                        )
                        continue
                    command = dict(task.command)
                    command["attempt"] = task.attempt
                    try:
                        self._send(member, command)
                    except (BrokenPipeError, OSError):
                        self._retire(member)
                        settle(
                            task,
                            "WorkerCrashError",
                            "worker pipe broke before the command was sent",
                            policy.retry_on_crash,
                        )
                        continue
                    started = time.monotonic()
                    if not task.first_start:
                        task.first_start = started
                    task.deadline = (
                        None if policy.timeout is None else started + policy.timeout
                    )
                    running[slot] = task
                if not running:
                    if not backoff_wait:
                        continue  # ready tasks re-queued after settle
                    soonest = min(task.not_before for task in backoff_wait)
                    time.sleep(
                        max(0.0, min(soonest - time.monotonic(), POLL_INTERVAL))
                    )
                    continue
                ready = _wait_connections(
                    [self._members[slot].conn for slot in running],
                    timeout=POLL_INTERVAL,
                )
                for slot, task in list(running.items()):
                    member = self._members[slot]
                    if member.conn in ready:
                        del running[slot]
                        try:
                            raw = member.conn.recv_bytes()
                        except (EOFError, OSError):
                            self._retire(member)
                            settle(
                                task,
                                "WorkerCrashError",
                                "worker died before reporting a result",
                                policy.retry_on_crash,
                            )
                            continue
                        self.transport.add_received(len(raw))
                        message = pickle.loads(raw)
                        if message[0] == "ok":
                            results[task.index] = message[1]
                        else:
                            _, error_type, text, transient = message
                            settle(task, error_type, text, transient)
                    elif task.deadline is not None and time.monotonic() >= task.deadline:
                        # Hung worker: kill it at the deadline; the slot
                        # respawns (with setup replay) before next use.
                        del running[slot]
                        self._retire(member)
                        settle(
                            task,
                            "RunTimeoutError",
                            f"exceeded the {policy.timeout:.3g}s wall-clock budget",
                            policy.retry_on_timeout,
                        )
                    elif not member.proc.is_alive() and not member.conn.poll(0):
                        exitcode = member.proc.exitcode
                        del running[slot]
                        self._retire(member)
                        settle(
                            task,
                            "WorkerCrashError",
                            f"worker exited with code {exitcode} before reporting",
                            policy.retry_on_crash,
                        )
        finally:
            # A member still mid-command cannot be reused: its eventual
            # reply would be misattributed to the next batch's command.
            for slot, task in list(running.items()):
                self._retire(self._members[slot])
            for task in tasks:
                if results[task.index] is _PENDING:
                    results[task.index] = FailedRun(
                        key=task.key,
                        error_type="SupervisorAborted",
                        message="supervisor aborted before this command finished",
                        attempts=task.attempt,
                        elapsed=time.monotonic() - (task.first_start or batch_start),
                    )
        return results

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _spawn(self, member: _Member) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_pool_worker_main,
            args=(child_conn, self._handlers),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        member.proc = proc
        member.conn = parent_conn
        member.alive = True
        self.spawned_processes += 1

    def _retire(self, member: _Member) -> None:
        terminate_process(member.proc, member.conn)
        member.proc = None
        member.conn = None
        member.alive = False

    def _ensure_member(self, member: _Member) -> None:
        """Respawn a dead slot and replay the setup prologue into it."""
        if member.alive and member.proc is not None and member.proc.is_alive():
            return
        self._retire(member)
        self._spawn(member)
        for message in self._setup_messages:
            self._request(member, dict(message))

    def _free_slot(self, running: Mapping[int, Any]) -> Optional[int]:
        for member in self._members:
            if member.slot not in running:
                return member.slot
        return None

    def _send(self, member: _Member, message: Dict[str, Any]) -> None:
        payload = _dumps(message)
        member.conn.send_bytes(payload)
        self.transport.add_sent(len(payload))

    def _request(self, member: _Member, message: Dict[str, Any]) -> Any:
        """Synchronous command to one worker (setup replay, heartbeat).

        Raises the classified error — and retires the member — on crash,
        hang, or a handler-reported failure.
        """
        try:
            self._send(member, message)
        except (BrokenPipeError, OSError):
            self._retire(member)
            raise WorkerCrashError(
                f"pool worker {member.slot} pipe broke during {message.get('op')!r}"
            )
        timeout = self._policy.timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait_for = (
                POLL_INTERVAL
                if deadline is None
                else max(0.0, min(POLL_INTERVAL, deadline - time.monotonic()))
            )
            if member.conn.poll(wait_for):
                break
            if not member.proc.is_alive() and not member.conn.poll(0):
                exitcode = member.proc.exitcode
                self._retire(member)
                raise WorkerCrashError(
                    f"pool worker {member.slot} exited with code {exitcode} "
                    f"during {message.get('op')!r}"
                )
            if deadline is not None and time.monotonic() >= deadline:
                self._retire(member)
                raise RunTimeoutError(
                    f"pool worker {member.slot} exceeded the {timeout:.3g}s "
                    f"budget during {message.get('op')!r}"
                )
        try:
            raw = member.conn.recv_bytes()
        except (EOFError, OSError):
            self._retire(member)
            raise WorkerCrashError(
                f"pool worker {member.slot} died during {message.get('op')!r}"
            )
        self.transport.add_received(len(raw))
        reply = pickle.loads(raw)
        if reply[0] == "ok":
            return reply[1]
        _, error_type, text, transient = reply
        if transient:
            raise TransientError(f"{error_type}: {text}")
        raise WorkerCrashError(
            f"pool worker {member.slot} failed {message.get('op')!r}: "
            f"{error_type}: {text}"
        )


__all__ = ["RESERVED_OPS", "WorkerPool", "_pool_worker_main"]
