"""Parallel harness execution (the paper's "Hardware Acceleration" family).

Section 2.2 lists parallelization as an acceleration orthogonal to the
exact-pruning family.  The evaluation harness embarrassingly parallelizes
over (algorithm, task) pairs, so :func:`parallel_compare` runs them in a
process pool — each worker re-runs :func:`repro.eval.harness.run_algorithm`
with identical inputs, so results are bit-identical to the serial harness
(only wall-clock *measurement* noise differs; counters are deterministic).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.core.initialization import initialize_centroids
from repro.core.knobs import KnobConfig
from repro.eval.harness import RunRecord, run_algorithm

SpecLike = Union[str, KnobConfig]


def _worker(payload: Tuple) -> RunRecord:
    spec, X, k, initial_centroids, repeats, max_iter, seed = payload
    return run_algorithm(
        spec, X, k,
        initial_centroids=initial_centroids,
        repeats=repeats, max_iter=max_iter, seed=seed,
    )


def parallel_compare(
    specs: Iterable[SpecLike],
    X: np.ndarray,
    k: int,
    *,
    repeats: int = 2,
    max_iter: int = 10,
    seed: int = 0,
    max_workers: Optional[int] = None,
) -> List[RunRecord]:
    """Run several algorithm specs concurrently on the same task.

    Shared k-means++ initializations are generated once in the parent so
    every worker clusters from identical centroids (the comparability
    guarantee of the serial harness).  Only string and
    :class:`KnobConfig` specs are accepted — factories do not pickle.
    """
    specs = list(specs)
    for spec in specs:
        if not isinstance(spec, (str, KnobConfig)):
            raise TypeError(
                "parallel_compare accepts algorithm names or KnobConfig "
                f"values; got {type(spec).__name__}"
            )
    initial_centroids = [
        initialize_centroids(X, k, "k-means++", seed=seed + r)
        for r in range(repeats)
    ]
    payloads = [
        (spec, X, k, initial_centroids, repeats, max_iter, seed)
        for spec in specs
    ]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(_worker, payloads))
