"""Parallel harness execution (the paper's "Hardware Acceleration" family).

Section 2.2 lists parallelization as an acceleration orthogonal to the
exact-pruning family.  The evaluation harness embarrassingly parallelizes
over (algorithm, task) pairs, so :func:`parallel_compare` runs them in
supervised worker processes — each worker re-runs
:func:`repro.eval.harness.run_algorithm` with identical inputs, so results
are bit-identical to the serial harness (only wall-clock *measurement*
noise differs; counters are deterministic).

Unlike a plain ``ProcessPoolExecutor`` (which dies with
``BrokenProcessPool`` on any worker fault), execution goes through
:func:`repro.eval.runtime.supervised_map`: hung workers are killed at the
``timeout`` deadline, crashed workers don't take the pool down, transient
failures are retried with deterministic backoff, and terminal failures
degrade to :class:`~repro.eval.runtime.FailedRun` entries so the sweep
always completes.  With an :class:`~repro.eval.logdb.EvaluationLog`
attached, every outcome is checkpointed and ``resume=True`` skips cells
the log already holds — re-running only failures.
"""

from __future__ import annotations

import warnings
from typing import Iterable, List, Optional, Tuple, Union

from repro.backend import backend_manager
from repro.common.exceptions import ValidationError
from repro.common.validation import check_data_matrix, check_k
from repro.core import BACKENDS
from repro.core.initialization import initialize_centroids
from repro.core.knobs import KnobConfig
from repro.eval.harness import RunRecord, _spec_label, run_algorithm
from repro.eval.runtime import (
    ExecutionPolicy,
    FailedRun,
    RunKey,
    supervised_map,
)

SpecLike = Union[str, KnobConfig]

RunOutcome = Union[RunRecord, FailedRun]


def _worker(item: Tuple, attempt: int) -> RunRecord:
    (spec, X, k, initial_centroids, repeats, max_iter, seed, key, fault_plan,
     backend, array_backend, shards, shard_policy, shard_runner,
     save_model, dataset) = item
    if fault_plan is not None:
        fault_plan.apply(key, attempt)
    # Pool workers are daemonic and may not fork shard children; the
    # sharded engine detects this and runs its shards inline (sequential,
    # same rank-order merge — still bit-identical).  Registry saves from
    # concurrent workers are safe: payload paths are content-keyed and
    # manifest appends are flock-serialized (see repro.serve.registry).
    return run_algorithm(
        spec, X, k,
        initial_centroids=initial_centroids,
        repeats=repeats, max_iter=max_iter, seed=seed, backend=backend,
        array_backend=array_backend, shards=shards, shard_policy=shard_policy,
        shard_runner=shard_runner, save_model=save_model, dataset=dataset,
    )


def parallel_compare(
    specs: Iterable[SpecLike],
    X,
    k: int,
    *,
    repeats: int = 2,
    max_iter: int = 10,
    seed: int = 0,
    max_workers: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    policy: Optional[ExecutionPolicy] = None,
    on_failure: str = "record",
    dataset: str = "",
    log=None,
    resume: bool = False,
    fault_plan=None,
    backend: str = "reference",
    array_backend: str = "numpy",
    shards: int = 1,
    shard_policy=None,
    shard_runner: str = "auto",
    save_model=None,
) -> List[RunOutcome]:
    """Run several algorithm specs concurrently on the same task.

    Shared k-means++ initializations are generated once in the parent so
    every worker clusters from identical centroids (the comparability
    guarantee of the serial harness).  Only string and
    :class:`KnobConfig` specs are accepted — factories do not pickle.

    Fault tolerance (see ``docs/robustness.md``):

    * ``timeout`` — wall-clock budget per run; a hung worker is killed and
      the cell recorded as timed out.
    * ``retries`` — extra attempts for :class:`TransientError` failures,
      with deterministic exponential backoff (``policy`` overrides both).
    * ``on_failure`` — ``"record"`` (default) degrades a failed cell to a
      :class:`FailedRun` entry in the returned list (with a warning);
      ``"raise"`` re-raises the classified error instead.
    * ``log`` / ``resume`` — with an :class:`EvaluationLog`, every outcome
      is appended as it lands; ``resume=True`` loads already-completed
      cells from the log (marked ``extras["resumed"]``) instead of
      re-running them, so a restarted campaign re-runs only failures.
    * ``fault_plan`` — a :class:`~repro.eval.faults.FaultPlan` applied
      inside each worker (chaos mode / recovery tests).
    * ``backend`` — execution backend for string specs (``"reference"`` or
      ``"vectorized"``; see ``docs/backends.md``).  Counters and
      trajectories are backend-invariant, so cells are resumable across
      backends; only wall-clock metrics differ.
    * ``array_backend`` — array backend for the managed kernel math
      (``"numpy"`` default; accelerator names are validated in the parent
      before any worker starts, see docs/array_backends.md).  Each worker
      process activates it for its own fits.
    * ``shards`` / ``shard_policy`` — with ``shards > 1`` (and
      ``backend="vectorized"``), each worker runs its fit through the
      sharded engine (``repro.exec.sharded``).  Because pool workers are
      daemonic, shards execute inline inside the worker — the merge
      discipline is identical, so results remain bit-identical and
      resumable against single-process cells.
    * ``save_model`` — a :class:`repro.serve.ModelRegistry` (or directory
      path) each worker persists its first-repeat fitted model to.  The
      registry tolerates concurrent workers by design (content-keyed
      payload paths, flock-serialized manifest appends); the entry key
      comes back in each record's ``extras["model_key"]``.
    """
    specs = list(specs)
    for spec in specs:
        if not isinstance(spec, (str, KnobConfig)):
            raise TypeError(
                "parallel_compare accepts algorithm names or KnobConfig "
                f"values; got {type(spec).__name__}"
            )
    if on_failure not in ("record", "raise"):
        raise ValidationError(
            f"on_failure must be 'record' or 'raise', got {on_failure!r}"
        )
    if backend not in BACKENDS:
        raise ValidationError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )
    # Fail fast in the parent: unknown/unavailable array backends raise a
    # classified error here, not inside every pool worker.
    backend_manager.get(array_backend)
    if resume and log is None:
        raise ValidationError("resume=True requires an EvaluationLog via log=")
    X = check_data_matrix(X)
    k = check_k(k, X.shape[0])
    if repeats < 1:
        raise ValidationError(f"repeats must be >= 1, got {repeats}")
    if policy is None:
        policy = ExecutionPolicy(timeout=timeout, retries=retries)
    n, d = X.shape
    keys = [
        RunKey(
            algorithm=_spec_label(spec), dataset=dataset, n=n, d=d, k=k,
            seed=seed, max_iter=max_iter,
        )
        for spec in specs
    ]

    results: List[Optional[RunOutcome]] = [None] * len(specs)
    if resume:
        completed = log.completed_keys()
        for index, key in enumerate(keys):
            if key in completed:
                stored = log.latest_success(key)
                if stored is not None:
                    record = RunRecord.from_dict(stored)
                    record.extras["resumed"] = True
                    results[index] = record
    todo = [index for index in range(len(specs)) if results[index] is None]
    if todo:
        initial_centroids = [
            initialize_centroids(X, k, "k-means++", seed=seed + r, backend=backend)
            for r in range(repeats)
        ]
        items = [
            (specs[i], X, k, initial_centroids, repeats, max_iter, seed, keys[i],
             fault_plan, backend, array_backend, shards, shard_policy,
             shard_runner, save_model, dataset)
            for i in todo
        ]
        outcomes = supervised_map(
            _worker, items, [keys[i] for i in todo],
            policy=policy, max_workers=max_workers,
        )
        first_failure: Optional[FailedRun] = None
        for index, outcome in zip(todo, outcomes):
            results[index] = outcome
            if log is not None:
                if isinstance(outcome, FailedRun):
                    log.add(outcome)
                else:
                    log.add(outcome, dataset=dataset, seed=seed, max_iter=max_iter)
            if isinstance(outcome, FailedRun):
                first_failure = first_failure or outcome
                if on_failure == "record":
                    warnings.warn(
                        f"run {outcome.key} failed after {outcome.attempts} "
                        f"attempt(s): {outcome.error_type}: {outcome.message}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
        if first_failure is not None and on_failure == "raise":
            raise first_failure.to_exception()
    return results
