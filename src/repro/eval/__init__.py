"""Evaluation framework: the harness behind every figure and table.

:mod:`repro.eval.harness` runs algorithms under shared initializations and
collects the paper's measurement set (time, pruning power, data/bound
accesses, footprint); :mod:`repro.eval.leaderboard` aggregates ranks
(Figure 12); :mod:`repro.eval.tables` renders the report tables;
:mod:`repro.eval.sweeps` drives parameter sweeps (Figures 14/17/18);
:mod:`repro.eval.runtime` supplies the fault-tolerant execution layer
(timeouts, retries, graceful degradation, checkpoint/resume keys) and
:mod:`repro.eval.faults` its deterministic chaos injection — see
``docs/robustness.md``.
"""

from repro.eval.faults import FaultPlan
from repro.eval.harness import RunRecord, compare_algorithms, run_algorithm, speedup_table
from repro.eval.leaderboard import Leaderboard
from repro.eval.logdb import EvaluationLog
from repro.eval.parallel import parallel_compare
from repro.eval.runtime import (
    ExecutionPolicy,
    FailedRun,
    RunKey,
    is_failed_record,
    supervised_map,
)
from repro.eval.summary import rate_algorithms, render_circles
from repro.eval.sweeps import sweep_parameter
from repro.eval.tables import format_table

__all__ = [
    "RunRecord",
    "run_algorithm",
    "compare_algorithms",
    "speedup_table",
    "Leaderboard",
    "EvaluationLog",
    "parallel_compare",
    "rate_algorithms",
    "render_circles",
    "sweep_parameter",
    "format_table",
    "ExecutionPolicy",
    "FailedRun",
    "RunKey",
    "FaultPlan",
    "is_failed_record",
    "supervised_map",
]
