"""Run harness: executes algorithms under identical conditions.

The paper's measurement protocol (Section 7.1): run the first ten
iterations, average over ten sets of k-means++ initial centroids, and record
running time, pruning power, data accesses, bound accesses/updates, and
footprint.  :func:`compare_algorithms` reproduces that protocol — every
algorithm receives the *same* initial centroids per repeat, so differences
are attributable to the method alone.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.common.exceptions import ValidationError
from repro.common.validation import check_data_matrix, check_k
from repro.core import KnobConfig, build_algorithm, make_algorithm
from repro.core.base import KMeansAlgorithm
from repro.core.initialization import initialize_centroids
from repro.core.result import KMeansResult

AlgorithmSpec = Union[str, KnobConfig, Callable[[], KMeansAlgorithm]]

#: iteration budget used in the paper's timing experiments
PAPER_ITER_BUDGET = 10


@dataclass
class RunRecord:
    """Averaged metrics of one (algorithm, task) pair across repeats."""

    algorithm: str
    n: int
    d: int
    k: int
    repeats: int
    total_time: float
    assignment_time: float
    refinement_time: float
    setup_time: float
    sse: float
    n_iter: float
    pruning_ratio: float
    distance_computations: float
    point_accesses: float
    node_accesses: float
    bound_accesses: float
    bound_updates: float
    footprint_floats: float
    modeled_cost: float = 0.0
    extras: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        record = {
            "algorithm": self.algorithm,
            "n": self.n,
            "d": self.d,
            "k": self.k,
            "repeats": self.repeats,
            "total_time": self.total_time,
            "assignment_time": self.assignment_time,
            "refinement_time": self.refinement_time,
            "setup_time": self.setup_time,
            "sse": self.sse,
            "n_iter": self.n_iter,
            "pruning_ratio": self.pruning_ratio,
            "distance_computations": self.distance_computations,
            "point_accesses": self.point_accesses,
            "node_accesses": self.node_accesses,
            "bound_accesses": self.bound_accesses,
            "bound_updates": self.bound_updates,
            "footprint_floats": self.footprint_floats,
            "modeled_cost": self.modeled_cost,
        }
        record.update(self.extras)
        return record

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        """Rebuild a record from its :meth:`as_dict` form (log round-trip).

        Unknown keys — logging context such as ``dataset``/``seed``, or the
        original extras — land in ``extras``; the ``status`` discriminator
        used by failed records is dropped.
        """
        field_names = [f.name for f in dataclasses.fields(cls) if f.name != "extras"]
        missing = [name for name in ("algorithm", "n", "d", "k") if name not in data]
        if missing:
            raise ValidationError(f"record is missing run fields {missing}: {data}")
        kwargs = {name: data[name] for name in field_names if name in data}
        kwargs.setdefault("repeats", 1)
        for name in field_names:
            kwargs.setdefault(name, 0.0)
        extras = {
            key: value
            for key, value in data.items()
            if key not in field_names and key != "status"
        }
        return cls(extras=extras, **kwargs)


def _materialize(
    spec: AlgorithmSpec,
    backend: str = "reference",
    shards: int = 1,
    shard_policy=None,
    array_backend: str = "numpy",
    shard_runner: str = "auto",
) -> KMeansAlgorithm:
    if isinstance(spec, str):
        return make_algorithm(
            spec, backend=backend, array_backend=array_backend,
            shards=shards, shard_policy=shard_policy,
            shard_runner=shard_runner,
        )
    if isinstance(spec, KnobConfig):
        return build_algorithm(spec)
    return spec()


def _spec_label(spec: AlgorithmSpec) -> str:
    if isinstance(spec, str):
        return spec
    if isinstance(spec, KnobConfig):
        return spec.label
    return _materialize(spec).name


def run_algorithm(
    spec: AlgorithmSpec,
    X: np.ndarray,
    k: int,
    *,
    initial_centroids: Optional[Sequence[np.ndarray]] = None,
    repeats: int = 3,
    max_iter: int = PAPER_ITER_BUDGET,
    seed: int = 0,
    backend: str = "reference",
    array_backend: str = "numpy",
    shards: int = 1,
    shard_policy=None,
    shard_runner: str = "auto",
    save_model=None,
    dataset: str = "",
) -> RunRecord:
    """Run one algorithm ``repeats`` times and average the metrics.

    When ``initial_centroids`` is not given, k-means++ seeds with
    ``seed + r`` are generated per repeat (and are identical for any other
    algorithm run with the same arguments — the comparability guarantee).

    ``backend`` selects the execution backend for string specs (see
    ``docs/backends.md``); counters and trajectories are backend-invariant,
    so only wall-clock metrics change.  ``shards > 1`` routes string specs
    through the sharded engine (``repro.exec.sharded``; requires
    ``backend="vectorized"``) with the given failure policy — results stay
    bit-identical to the single-process vectorized run, so comparability
    is preserved there too.  :class:`KnobConfig` and factory specs carry
    their own construction and ignore backend, shards and shard_policy.
    ``array_backend`` selects the array backend for string specs
    (docs/array_backends.md): ``"numpy"`` keeps everything bit-identical;
    accelerator backends (``"torch"``/...) are tolerance-tier and leave
    counters untouched — the cost model is computed host-side either way.

    ``save_model`` optionally persists the *first* repeat's fitted model
    to a :class:`repro.serve.ModelRegistry` (an instance or a directory
    path); the entry key lands in ``extras["model_key"]`` so downstream
    consumers (logs, the serving CLI) can find the artifact.  The first
    repeat is the canonical one: its seed is exactly ``seed``, so the
    saved model is reproducible from the run key alone.

    Raises :class:`ValidationError` up front for ``repeats < 1``, ``k < 1``,
    ``k > n``, or non-finite ``X`` — the harness boundary is where bad
    campaign configs must surface, not deep inside a distance kernel.
    """
    X = check_data_matrix(X)
    k = check_k(k, X.shape[0])
    if initial_centroids is None:
        if repeats < 1:
            raise ValidationError(f"repeats must be >= 1, got {repeats}")
        # Seeding runs on the selected backend too; the parity contract of
        # repro.core.initialization makes the picks bit-identical either
        # way, so cross-backend comparability is preserved.
        initial_centroids = [
            initialize_centroids(X, k, "k-means++", seed=seed + r, backend=backend)
            for r in range(repeats)
        ]
    elif len(initial_centroids) < 1:
        raise ValidationError("initial_centroids must contain at least one seeding")
    results: List[KMeansResult] = []
    for centroids in initial_centroids:
        algorithm = _materialize(
            spec, backend, shards, shard_policy, array_backend, shard_runner
        )
        results.append(
            algorithm.fit(X, k, initial_centroids=centroids, max_iter=max_iter)
        )
    record = _aggregate(_spec_label(spec), results)
    if save_model is not None:
        # Imported lazily: repro.serve is a consumer of eval's records, so
        # the top-level import would be circular for no benefit.
        from repro.serve.registry import ModelRegistry

        registry = (
            save_model if isinstance(save_model, ModelRegistry)
            else ModelRegistry(save_model)
        )
        key = registry.save_model(
            results[0], dataset=dataset, backend=backend,
            array_backend=array_backend, shards=shards, seed=seed,
        )
        record.extras["model_key"] = key
        record.extras["model_registry"] = str(registry.root)
    return record


def _aggregate(label: str, results: List[KMeansResult]) -> RunRecord:
    def mean(attr: Callable[[KMeansResult], float]) -> float:
        return float(np.mean([attr(r) for r in results]))

    first = results[0]
    extras = dict(first.extras)
    return RunRecord(
        algorithm=label,
        n=first.n,
        d=first.d,
        k=first.k,
        repeats=len(results),
        total_time=mean(lambda r: r.total_time),
        assignment_time=mean(lambda r: r.assignment_time),
        refinement_time=mean(lambda r: r.refinement_time),
        setup_time=mean(lambda r: r.setup_time),
        sse=mean(lambda r: r.sse),
        n_iter=mean(lambda r: r.n_iter),
        pruning_ratio=mean(lambda r: r.pruning_ratio),
        distance_computations=mean(lambda r: r.counters.distance_computations),
        point_accesses=mean(lambda r: r.counters.point_accesses),
        node_accesses=mean(lambda r: r.counters.node_accesses),
        bound_accesses=mean(lambda r: r.counters.bound_accesses),
        bound_updates=mean(lambda r: r.counters.bound_updates),
        footprint_floats=mean(lambda r: r.footprint_floats),
        modeled_cost=mean(lambda r: r.modeled_cost),
        extras=extras,
    )


def compare_algorithms(
    specs: Iterable[AlgorithmSpec],
    X: np.ndarray,
    k: int,
    *,
    repeats: int = 3,
    max_iter: int = PAPER_ITER_BUDGET,
    seed: int = 0,
    backend: str = "reference",
    array_backend: str = "numpy",
    shards: int = 1,
    shard_policy=None,
    shard_runner: str = "auto",
) -> List[RunRecord]:
    """Run several algorithms on the same task with shared initializations."""
    X = check_data_matrix(X)
    k = check_k(k, X.shape[0])
    if repeats < 1:
        raise ValidationError(f"repeats must be >= 1, got {repeats}")
    initial_centroids = [
        initialize_centroids(X, k, "k-means++", seed=seed + r, backend=backend)
        for r in range(repeats)
    ]
    return [
        run_algorithm(
            spec, X, k,
            initial_centroids=initial_centroids,
            repeats=repeats, max_iter=max_iter, seed=seed, backend=backend,
            array_backend=array_backend, shards=shards,
            shard_policy=shard_policy, shard_runner=shard_runner,
        )
        for spec in specs
    ]


def speedup_table(
    records: List[RunRecord], baseline: str = "lloyd"
) -> Dict[str, Dict[str, float]]:
    """Speedups over a baseline record, wall-clock and work-based.

    ``time`` is the wall-clock ratio (the paper's headline number);
    ``work`` is the distance-computation ratio, which is hardware- and
    language-independent and therefore the faithful cross-substrate
    comparison (see EXPERIMENTS.md).

    Failed cells (``FailedRun`` entries from the fault-tolerant runtime)
    are skipped — they carry no metrics; the baseline itself must have
    succeeded.
    """
    by_name = {
        record.algorithm: record
        for record in records
        if getattr(record, "status", None) != "failed"
    }
    if baseline not in by_name:
        raise KeyError(f"baseline {baseline!r} not among records: {sorted(by_name)}")
    base = by_name[baseline]
    table: Dict[str, Dict[str, float]] = {}
    for name, record in by_name.items():
        table[name] = {
            "time": base.total_time / record.total_time if record.total_time else float("inf"),
            "assignment": (
                base.assignment_time / record.assignment_time
                if record.assignment_time
                else float("inf")
            ),
            "refinement": (
                base.refinement_time / record.refinement_time
                if record.refinement_time
                else float("inf")
            ),
            "work": (
                base.distance_computations / record.distance_computations
                if record.distance_computations
                else float("inf")
            ),
            "cost": (
                base.modeled_cost / record.modeled_cost
                if record.modeled_cost
                else float("inf")
            ),
            "pruning": record.pruning_ratio,
        }
    return table
