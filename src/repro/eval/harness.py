"""Run harness: executes algorithms under identical conditions.

The paper's measurement protocol (Section 7.1): run the first ten
iterations, average over ten sets of k-means++ initial centroids, and record
running time, pruning power, data accesses, bound accesses/updates, and
footprint.  :func:`compare_algorithms` reproduces that protocol — every
algorithm receives the *same* initial centroids per repeat, so differences
are attributable to the method alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.core import KnobConfig, build_algorithm, make_algorithm
from repro.core.base import KMeansAlgorithm
from repro.core.initialization import initialize_centroids
from repro.core.result import KMeansResult

AlgorithmSpec = Union[str, KnobConfig, Callable[[], KMeansAlgorithm]]

#: iteration budget used in the paper's timing experiments
PAPER_ITER_BUDGET = 10


@dataclass
class RunRecord:
    """Averaged metrics of one (algorithm, task) pair across repeats."""

    algorithm: str
    n: int
    d: int
    k: int
    repeats: int
    total_time: float
    assignment_time: float
    refinement_time: float
    setup_time: float
    sse: float
    n_iter: float
    pruning_ratio: float
    distance_computations: float
    point_accesses: float
    node_accesses: float
    bound_accesses: float
    bound_updates: float
    footprint_floats: float
    modeled_cost: float = 0.0
    extras: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        record = {
            "algorithm": self.algorithm,
            "n": self.n,
            "d": self.d,
            "k": self.k,
            "repeats": self.repeats,
            "total_time": self.total_time,
            "assignment_time": self.assignment_time,
            "refinement_time": self.refinement_time,
            "setup_time": self.setup_time,
            "sse": self.sse,
            "n_iter": self.n_iter,
            "pruning_ratio": self.pruning_ratio,
            "distance_computations": self.distance_computations,
            "point_accesses": self.point_accesses,
            "node_accesses": self.node_accesses,
            "bound_accesses": self.bound_accesses,
            "bound_updates": self.bound_updates,
            "footprint_floats": self.footprint_floats,
            "modeled_cost": self.modeled_cost,
        }
        record.update(self.extras)
        return record


def _materialize(spec: AlgorithmSpec) -> KMeansAlgorithm:
    if isinstance(spec, str):
        return make_algorithm(spec)
    if isinstance(spec, KnobConfig):
        return build_algorithm(spec)
    return spec()


def _spec_label(spec: AlgorithmSpec) -> str:
    if isinstance(spec, str):
        return spec
    if isinstance(spec, KnobConfig):
        return spec.label
    return _materialize(spec).name


def run_algorithm(
    spec: AlgorithmSpec,
    X: np.ndarray,
    k: int,
    *,
    initial_centroids: Optional[Sequence[np.ndarray]] = None,
    repeats: int = 3,
    max_iter: int = PAPER_ITER_BUDGET,
    seed: int = 0,
) -> RunRecord:
    """Run one algorithm ``repeats`` times and average the metrics.

    When ``initial_centroids`` is not given, k-means++ seeds with
    ``seed + r`` are generated per repeat (and are identical for any other
    algorithm run with the same arguments — the comparability guarantee).
    """
    X = np.asarray(X, dtype=np.float64)
    if initial_centroids is None:
        initial_centroids = [
            initialize_centroids(X, k, "k-means++", seed=seed + r) for r in range(repeats)
        ]
    results: List[KMeansResult] = []
    for centroids in initial_centroids:
        algorithm = _materialize(spec)
        results.append(
            algorithm.fit(X, k, initial_centroids=centroids, max_iter=max_iter)
        )
    return _aggregate(_spec_label(spec), results)


def _aggregate(label: str, results: List[KMeansResult]) -> RunRecord:
    def mean(attr: Callable[[KMeansResult], float]) -> float:
        return float(np.mean([attr(r) for r in results]))

    first = results[0]
    extras = dict(first.extras)
    return RunRecord(
        algorithm=label,
        n=first.n,
        d=first.d,
        k=first.k,
        repeats=len(results),
        total_time=mean(lambda r: r.total_time),
        assignment_time=mean(lambda r: r.assignment_time),
        refinement_time=mean(lambda r: r.refinement_time),
        setup_time=mean(lambda r: r.setup_time),
        sse=mean(lambda r: r.sse),
        n_iter=mean(lambda r: r.n_iter),
        pruning_ratio=mean(lambda r: r.pruning_ratio),
        distance_computations=mean(lambda r: r.counters.distance_computations),
        point_accesses=mean(lambda r: r.counters.point_accesses),
        node_accesses=mean(lambda r: r.counters.node_accesses),
        bound_accesses=mean(lambda r: r.counters.bound_accesses),
        bound_updates=mean(lambda r: r.counters.bound_updates),
        footprint_floats=mean(lambda r: r.footprint_floats),
        modeled_cost=mean(lambda r: r.modeled_cost),
        extras=extras,
    )


def compare_algorithms(
    specs: Iterable[AlgorithmSpec],
    X: np.ndarray,
    k: int,
    *,
    repeats: int = 3,
    max_iter: int = PAPER_ITER_BUDGET,
    seed: int = 0,
) -> List[RunRecord]:
    """Run several algorithms on the same task with shared initializations."""
    X = np.asarray(X, dtype=np.float64)
    initial_centroids = [
        initialize_centroids(X, k, "k-means++", seed=seed + r) for r in range(repeats)
    ]
    return [
        run_algorithm(
            spec, X, k,
            initial_centroids=initial_centroids,
            repeats=repeats, max_iter=max_iter, seed=seed,
        )
        for spec in specs
    ]


def speedup_table(
    records: List[RunRecord], baseline: str = "lloyd"
) -> Dict[str, Dict[str, float]]:
    """Speedups over a baseline record, wall-clock and work-based.

    ``time`` is the wall-clock ratio (the paper's headline number);
    ``work`` is the distance-computation ratio, which is hardware- and
    language-independent and therefore the faithful cross-substrate
    comparison (see EXPERIMENTS.md).
    """
    by_name = {record.algorithm: record for record in records}
    if baseline not in by_name:
        raise KeyError(f"baseline {baseline!r} not among records: {sorted(by_name)}")
    base = by_name[baseline]
    table: Dict[str, Dict[str, float]] = {}
    for name, record in by_name.items():
        table[name] = {
            "time": base.total_time / record.total_time if record.total_time else float("inf"),
            "assignment": (
                base.assignment_time / record.assignment_time
                if record.assignment_time
                else float("inf")
            ),
            "refinement": (
                base.refinement_time / record.refinement_time
                if record.refinement_time
                else float("inf")
            ),
            "work": (
                base.distance_computations / record.distance_computations
                if record.distance_computations
                else float("inf")
            ),
            "cost": (
                base.modeled_cost / record.modeled_cost
                if record.modeled_cost
                else float("inf")
            ),
            "pruning": record.pruning_ratio,
        }
    return table
