"""Terminal plotting: ASCII bar charts and line series for reports.

The original artifact plots its results from log files (paper §A.4); in
this dependency-free reproduction the benchmark reports are text, so these
helpers render the two shapes the paper's figures use — bars (speedups,
leaderboards) and series (per-iteration times, sweeps) — directly into the
report files.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

_BLOCKS = " ▏▎▍▌▋▊▉█"


def bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 40,
    title: Optional[str] = None,
    fmt: str = "{:.3g}",
) -> str:
    """Horizontal ASCII bar chart; one row per labelled value."""
    if not values:
        raise ValueError("bar_chart needs at least one value")
    labels = list(values)
    numbers = [float(values[label]) for label in labels]
    peak = max(numbers)
    label_width = max(len(label) for label in labels)
    lines: List[str] = [title] if title else []
    for label, number in zip(labels, numbers):
        if peak <= 0:
            filled, remainder = 0, 0
        else:
            cells = number / peak * width
            filled = int(cells)
            remainder = int((cells - filled) * 8)
        bar = "█" * filled + (_BLOCKS[remainder] if remainder else "")
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width + 1)} {fmt.format(number)}")
    return "\n".join(lines)


def line_series(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 12,
    title: Optional[str] = None,
) -> str:
    """Scatter/line plot of one or more ``(x, y)`` series on a text grid.

    Each series gets its own marker (``*+ox#@``); axes are annotated with
    the data ranges.  Intended for qualitative shape reading (crossovers,
    trends), matching how the paper's line figures are consumed.
    """
    if not series:
        raise ValueError("line_series needs at least one series")
    markers = "*+ox#@%&"
    all_points = [p for points in series.values() for p in points]
    if not all_points:
        raise ValueError("line_series needs at least one point")
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in points:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker
    lines: List[str] = [title] if title else []
    lines.append(f"y_max={y_hi:.3g}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"y_min={y_lo:.3g}   x: {x_lo:.3g} .. {x_hi:.3g}")
    legend = "   ".join(
        f"{markers[index % len(markers)]} {name}"
        for index, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend: ▁▂▃▄▅▆▇█ scaled to the value range."""
    blocks = "▁▂▃▄▅▆▇█"
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(
        blocks[min(7, int((value - lo) / span * 7.999))] for value in values
    )
