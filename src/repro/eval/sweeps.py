"""Parameter sweeps behind Figures 7, 14, 17 and 18.

A sweep varies one task parameter (data scale ``n``, dimensionality ``d``,
cluster count ``k``, leaf capacity ``f``, or generator variance) while
holding everything else fixed, and runs a set of algorithms at each setting.

Long sweeps are exactly the campaigns a single hung or crashed cell used to
destroy, so :func:`sweep_parameter` optionally routes through the
fault-tolerant runtime: pass ``timeout``/``retries`` (and optionally a
``log`` with ``resume=True``) and each setting runs under
:func:`repro.eval.parallel.parallel_compare` — failed cells degrade to
:class:`~repro.eval.runtime.FailedRun` entries, completed cells are
checkpointed under their run keys, and a restarted sweep re-runs only what
is missing.  Without those arguments the classic in-process serial path is
used, byte-for-byte unchanged.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.eval.harness import AlgorithmSpec, RunRecord, compare_algorithms
from repro.eval.runtime import ExecutionPolicy, is_failed_record


def sweep_parameter(
    values: Sequence[Any],
    make_task: Callable[[Any], tuple],
    specs: Iterable[AlgorithmSpec],
    *,
    repeats: int = 2,
    max_iter: int = 10,
    seed: int = 0,
    timeout: Optional[float] = None,
    retries: int = 0,
    policy: Optional[ExecutionPolicy] = None,
    max_workers: Optional[int] = None,
    log=None,
    resume: bool = False,
    fault_plan=None,
    dataset: str = "sweep",
) -> Dict[Any, List[RunRecord]]:
    """Run ``specs`` for every parameter value.

    ``make_task(value)`` returns ``(X, k)`` for that setting.  Results are
    keyed by the swept value, each a list of :class:`RunRecord` (or
    :class:`~repro.eval.runtime.FailedRun` for cells that failed under the
    fault-tolerant path).  Each setting is logged under the dataset label
    ``f"{dataset}[{value}]"`` so run keys distinguish sweep points.
    """
    specs = list(specs)
    fault_tolerant = (
        timeout is not None
        or retries > 0
        or policy is not None
        or log is not None
        or resume
        or fault_plan is not None
    )
    out: Dict[Any, List[RunRecord]] = {}
    for value in values:
        X, k = make_task(value)
        if fault_tolerant:
            from repro.eval.parallel import parallel_compare

            out[value] = parallel_compare(
                specs, np.asarray(X), k,
                repeats=repeats, max_iter=max_iter, seed=seed,
                max_workers=max_workers, timeout=timeout, retries=retries,
                policy=policy, dataset=f"{dataset}[{value}]",
                log=log, resume=resume, fault_plan=fault_plan,
            )
        else:
            out[value] = compare_algorithms(
                specs, np.asarray(X), k, repeats=repeats, max_iter=max_iter,
                seed=seed,
            )
    return out


def series(
    sweep: Dict[Any, List[RunRecord]], algorithm: str, metric: str = "total_time"
) -> List[tuple]:
    """Extract one algorithm's metric as ``(value, metric)`` pairs.

    Failed cells are skipped, so a partially-degraded sweep still plots —
    with a gap where the run failed rather than a crash.
    """
    points = []
    for value, records in sweep.items():
        for record in records:
            if is_failed_record(record):
                continue
            if record.algorithm == algorithm:
                points.append((value, getattr(record, metric)))
                break
    return points
