"""Parameter sweeps behind Figures 7, 14, 17 and 18.

A sweep varies one task parameter (data scale ``n``, dimensionality ``d``,
cluster count ``k``, leaf capacity ``f``, or generator variance) while
holding everything else fixed, and runs a set of algorithms at each setting.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Sequence

import numpy as np

from repro.eval.harness import AlgorithmSpec, RunRecord, compare_algorithms


def sweep_parameter(
    values: Sequence[Any],
    make_task: Callable[[Any], tuple],
    specs: Iterable[AlgorithmSpec],
    *,
    repeats: int = 2,
    max_iter: int = 10,
    seed: int = 0,
) -> Dict[Any, List[RunRecord]]:
    """Run ``specs`` for every parameter value.

    ``make_task(value)`` returns ``(X, k)`` for that setting.  Results are
    keyed by the swept value, each a list of :class:`RunRecord`.
    """
    specs = list(specs)
    out: Dict[Any, List[RunRecord]] = {}
    for value in values:
        X, k = make_task(value)
        out[value] = compare_algorithms(
            specs, np.asarray(X), k, repeats=repeats, max_iter=max_iter, seed=seed
        )
    return out


def series(
    sweep: Dict[Any, List[RunRecord]], algorithm: str, metric: str = "total_time"
) -> List[tuple]:
    """Extract one algorithm's metric as ``(value, metric)`` pairs."""
    points = []
    for value, records in sweep.items():
        for record in records:
            if record.algorithm == algorithm:
                points.append((value, getattr(record, metric)))
                break
    return points
