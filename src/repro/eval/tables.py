"""Plain-text table rendering for the benchmark reports.

The benchmark harness prints the same rows the paper's tables report;
:func:`format_table` keeps that output aligned and diff-friendly so
EXPERIMENTS.md can embed it verbatim.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0.0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    cells: List[List[str]] = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_speedup_rows(
    table: dict, order: Optional[Sequence[str]] = None
) -> List[List[Any]]:
    """Rows for a speedup table as produced by ``speedup_table``.

    Names in ``order`` that are missing from ``table`` (failed cells
    filtered out upstream) are skipped, so a degraded comparison still
    renders."""
    names = list(order) if order is not None else sorted(table)
    rows = []
    for name in names:
        if name not in table:
            continue
        entry = table[name]
        rows.append(
            [
                name,
                round(entry["time"], 2),
                round(entry["assignment"], 2),
                round(entry["refinement"], 2),
                round(entry["work"], 2),
                f"{entry['pruning']:.0%}",
            ]
        )
    return rows
