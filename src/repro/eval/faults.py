"""Deterministic fault injection for the evaluation runtime (chaos mode).

Recovery code that is never exercised is broken code.  A
:class:`FaultPlan` injects failures *deterministically* — every trigger
decision is a pure function of the plan, the :class:`RunKey`, and the
attempt number — so chaos campaigns are exactly reproducible and the
tier-1 suite can assert on precise recovery behavior.

Fault kinds
-----------
``transient``
    Raise :class:`~repro.common.exceptions.TransientError` on the first
    ``times`` attempts; the runtime's retry/backoff path must recover.
``raise``
    Raise :class:`InjectedFaultError` (deterministic, non-retryable by
    classification) on every attempt — the cell must degrade to a
    :class:`~repro.eval.runtime.FailedRun`.
``hang``
    Sleep forever; the supervisor must kill the worker at its deadline.
``kill``
    ``os._exit`` without reporting — simulates an OOM-killed worker; the
    pool must survive.
``delay``
    Sleep ``seconds`` then run normally (latency, not failure).
``corrupt``
    Marker consumed by log-level chaos (truncating the JSONL tail via
    :func:`corrupt_jsonl_tail`); a no-op inside workers.

Plans parse from compact CLI specs (``repro bench --inject-faults``), e.g.
``"transient:hamerly:1,hang:lloyd,kill:elkan"`` or a seeded random mode
``"rate:0.2,seed=7"`` that transiently fails a deterministic 20% of
(key, attempt) draws.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.common.exceptions import ReproError, TransientError, ValidationError
from repro.eval.runtime import RunKey

FAULT_KINDS = ("transient", "raise", "hang", "kill", "delay", "corrupt")

#: exit code used by ``kill`` faults so tests can recognise the simulation
KILL_EXIT_CODE = 97


class InjectedFaultError(ReproError):
    """A deliberately injected, deterministic (non-transient) failure."""


@dataclass(frozen=True)
class Fault:
    """One injection rule: what to do, which runs it hits, how often.

    ``shard`` and ``iteration`` narrow the rule to shard workers of the
    sharded execution engine (``repro.exec.sharded``): a constrained rule
    only fires through :meth:`FaultPlan.apply_shard` when the worker's
    shard rank / refinement iteration match, and never through the plain
    harness-level :meth:`FaultPlan.apply` path.
    """

    kind: str
    match: str = "*"
    #: attempts that trigger (1-based); None means every attempt
    times: Optional[int] = None
    #: sleep length for ``delay`` faults
    seconds: float = 0.05
    #: shard rank this rule targets; None means any shard
    shard: Optional[int] = None
    #: fit iteration this rule targets; None means any iteration
    iteration: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValidationError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.times is not None and self.times < 1:
            raise ValidationError(f"fault times must be >= 1, got {self.times}")
        if self.shard is not None and self.shard < 0:
            raise ValidationError(f"fault shard must be >= 0, got {self.shard}")
        if self.iteration is not None and self.iteration < 0:
            raise ValidationError(
                f"fault iteration must be >= 0, got {self.iteration}"
            )

    def matches(self, key: RunKey) -> bool:
        return self.match == "*" or self.match == key.algorithm or self.match in str(key)

    def triggers(self, attempt: int) -> bool:
        return self.times is None or attempt <= self.times

    @property
    def shard_scoped(self) -> bool:
        """True when the rule only applies inside shard workers."""
        return self.shard is not None or self.iteration is not None

    def matches_shard(self, shard: int, iteration: int) -> bool:
        return (self.shard is None or self.shard == shard) and (
            self.iteration is None or self.iteration == iteration
        )


@dataclass(frozen=True)
class FaultPlan:
    """A picklable, deterministic set of injection rules.

    ``rate`` adds seeded pseudo-random transient failures on top of the
    explicit rules: a (key, attempt) pair fails iff its CRC32 draw under
    ``seed`` falls below ``rate`` — the same pairs fail on every replay.
    """

    faults: Tuple[Fault, ...] = ()
    rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValidationError(f"fault rate must lie in [0, 1], got {self.rate}")

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a CLI spec: comma-separated ``kind:match[:arg][:k=v...]`` items.

        The third positional field is ``times`` for transient/raise faults
        and ``seconds`` for delay faults.  ``shard=N`` / ``iter=N`` parts
        scope a rule to one shard rank / fit iteration of the sharded
        engine (see :class:`Fault`).  ``rate:<p>`` and ``seed:<s>`` items
        configure the pseudo-random mode.  Example::

            transient:hamerly:2,hang:lloyd,kill:elkan:shard=1:iter=2,rate:0.1
        """
        faults: List[Fault] = []
        rate = 0.0
        seed = 0
        for raw in spec.split(","):
            item = raw.strip()
            if not item:
                continue
            parts = [p.strip() for p in item.split(":")]
            head = parts[0].lower()
            try:
                if head == "rate":
                    rate = float(parts[1])
                elif head == "seed":
                    seed = int(parts[1])
                else:
                    faults.append(cls._parse_fault(head, parts[1:]))
            except (IndexError, TypeError, ValueError) as exc:
                if isinstance(exc, ValidationError):
                    raise
                raise ValidationError(f"malformed fault item {item!r}: {exc}") from exc
        return cls(faults=tuple(faults), rate=rate, seed=seed)

    @staticmethod
    def _parse_fault(kind: str, args: List[str]) -> Fault:
        scope = {}
        positional: List[str] = []
        for part in args:
            if "=" in part:
                field, _, value = part.partition("=")
                field = field.strip().lower()
                if field == "iter":
                    field = "iteration"
                if field not in ("shard", "iteration"):
                    raise ValidationError(
                        f"unknown fault scope {field!r}; known: shard=, iter="
                    )
                scope[field] = int(value)
            else:
                positional.append(part)
        match = positional[0] if positional and positional[0] else "*"
        arg = positional[1] if len(positional) > 1 else None
        if kind == "delay":
            return Fault(kind=kind, match=match,
                         seconds=float(arg) if arg is not None else 0.05, **scope)
        if kind == "transient":
            return Fault(kind=kind, match=match,
                         times=int(arg) if arg is not None else 1, **scope)
        if kind == "raise":
            return Fault(kind=kind, match=match,
                         times=int(arg) if arg is not None else None, **scope)
        return Fault(kind=kind, match=match, **scope)

    # ------------------------------------------------------------------
    # Injection (runs inside worker processes — must stay deterministic).
    # ------------------------------------------------------------------

    def for_key(self, key: RunKey) -> List[Fault]:
        return [fault for fault in self.faults if fault.matches(key)]

    def rate_triggers(self, key: RunKey, attempt: int, scope: str = "") -> bool:
        if self.rate <= 0.0:
            return False
        draw = zlib.crc32(f"{self.seed}:{key}:{scope}{attempt}".encode()) % 100_000
        return draw < self.rate * 100_000

    @staticmethod
    def _execute(fault: Fault, where: str, attempt: int) -> None:
        """Carry out one triggered fault (raise, sleep, hang, or exit)."""
        if fault.kind == "delay":
            time.sleep(fault.seconds)
        elif fault.kind == "transient":
            raise TransientError(
                f"injected transient fault for {where} (attempt {attempt})"
            )
        elif fault.kind == "raise":
            raise InjectedFaultError(f"injected deterministic fault for {where}")
        elif fault.kind == "hang":
            while True:  # the supervisor must kill us
                time.sleep(60.0)
        elif fault.kind == "kill":
            os._exit(KILL_EXIT_CODE)

    def apply(self, key: RunKey, attempt: int) -> None:
        """Trigger the matching faults for ``(key, attempt)``, if any.

        Called by the harness worker before the actual run; raises, sleeps,
        or exits according to the plan.  ``corrupt`` faults are log-level
        and ignored here, and shard-scoped rules (``shard=``/``iter=``)
        only fire through :meth:`apply_shard`.
        """
        for fault in self.for_key(key):
            if fault.shard_scoped or not fault.triggers(attempt):
                continue
            self._execute(fault, str(key), attempt)
        if self.rate_triggers(key, attempt):
            raise TransientError(
                f"injected random transient fault for {key} (attempt {attempt})"
            )

    def apply_shard(
        self, key: RunKey, *, shard: int, iteration: int, attempt: int
    ) -> None:
        """Trigger matching faults inside one shard worker.

        Called by ``repro.exec.sharded``'s worker entry before the
        assignment kernel runs.  Every rule that matches the run key *and*
        the (shard, iteration) scope fires — unscoped rules hit every
        shard, so e.g. ``transient:lloyd`` exercises the retry path on all
        of them, while ``kill:lloyd:shard=1:iter=2`` is surgical.
        ``times`` counts per-(shard, iteration) attempts, which is exactly
        the supervised pool's retry counter for that shard task.
        """
        where = f"{key} shard {shard} iter {iteration}"
        for fault in self.for_key(key):
            if not fault.matches_shard(shard, iteration):
                continue
            if not fault.triggers(attempt):
                continue
            self._execute(fault, where, attempt)
        if self.rate_triggers(key, attempt, scope=f"shard{shard}@it{iteration}:"):
            raise TransientError(
                f"injected random transient fault for {where} (attempt {attempt})"
            )

    def wants_log_corruption(self) -> bool:
        return any(fault.kind == "corrupt" for fault in self.faults)


def corrupt_jsonl_tail(path: Union[str, Path], drop_bytes: int = 7) -> int:
    """Simulate a crash mid-append: chop ``drop_bytes`` off the file tail.

    Returns the new size.  Used by chaos mode and the crash-recovery tests
    to produce exactly the truncated-final-line artifact that
    :func:`repro.datasets.loaders.read_jsonl` must quarantine.
    """
    path = Path(path)
    size = path.stat().st_size
    new_size = max(0, size - drop_bytes)
    with path.open("r+b") as handle:
        handle.truncate(new_size)
    return new_size
