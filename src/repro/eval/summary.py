"""Table 4 reproduction — the evaluation-summary ratings, computed.

The paper's Table 4 rates every algorithm on beginner criteria
(leaderboard placement, space saving, parameter-freeness) and researcher
criteria (fewer data/bound accesses, fewer distances) with filled circles.
This module *computes* those ratings from measured run records instead of
assigning them editorially: each quantitative criterion is scored 1-5 by
ranking the methods' measured values; parameter-freeness is structural.

``rate_algorithms`` consumes harness records grouped by task and returns
a rating table; the Table 4 benchmark renders it with unicode circles.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Mapping, Sequence

from repro.eval.harness import RunRecord
from repro.eval.leaderboard import Leaderboard
from repro.eval.runtime import is_failed_record

#: methods that need no dataset-dependent parameter beyond k (Table 4's
#: "parameter-free" column: Yinyang/Drake/Vector/indexes have knobs)
PARAMETER_FREE = {
    "lloyd", "elkan", "hamerly", "heap", "annular", "exponion",
    "drift", "pami20", "regroup",
}

CRITERIA = (
    "leaderboard",
    "space_saving",
    "parameter_free",
    "fewer_data_access",
    "fewer_bound_access",
    "fewer_distance",
)


def _rank_scores(values: Mapping[str, float], *, lower_better: bool = True) -> Dict[str, int]:
    """Map each method's value to a 1-5 score by rank quintile."""
    ordered = sorted(values, key=values.get, reverse=not lower_better)
    n = len(ordered)
    scores = {}
    for position, name in enumerate(ordered):
        # Best fifth scores 5, next fifth 4, ...
        scores[name] = 5 - min(4, position * 5 // max(1, n))
    return scores


def rate_algorithms(
    tasks: Sequence[Sequence[RunRecord]],
) -> Dict[str, Dict[str, int]]:
    """Compute Table 4 ratings from per-task harness records.

    ``tasks`` is a list of record lists, one per clustering task, each
    covering the same algorithm set.  Failed cells are tolerated: a method
    that failed on some task is rated on the tasks it completed (its sums
    simply miss the failed cells), and all-failed tasks are skipped.
    """
    if not tasks:
        raise ValueError("need at least one task to rate")
    board = Leaderboard(metric="modeled_cost")
    sums: Dict[str, Dict[str, float]] = defaultdict(lambda: defaultdict(float))
    ordered: Dict[str, None] = {}
    for records in tasks:
        healthy = [r for r in records if not is_failed_record(r)]
        if not healthy:
            continue
        board.add_task(healthy)
        for record in healthy:
            ordered.setdefault(record.algorithm, None)
            sums[record.algorithm]["footprint"] += record.footprint_floats
            sums[record.algorithm]["point"] += record.point_accesses
            sums[record.algorithm]["bound"] += record.bound_accesses + record.bound_updates
            sums[record.algorithm]["distance"] += record.distance_computations
    names: List[str] = list(ordered)
    if not names:
        raise ValueError("no successful runs to rate")

    top3 = {name: board.top3.get(name, 0) for name in names}
    leaderboard_scores = _rank_scores(top3, lower_better=False)
    space_scores = _rank_scores({n: sums[n]["footprint"] for n in names})
    data_scores = _rank_scores({n: sums[n]["point"] for n in names})
    bound_scores = _rank_scores({n: sums[n]["bound"] for n in names})
    distance_scores = _rank_scores({n: sums[n]["distance"] for n in names})

    ratings: Dict[str, Dict[str, int]] = {}
    for name in names:
        ratings[name] = {
            "leaderboard": leaderboard_scores[name],
            "space_saving": space_scores[name],
            "parameter_free": 5 if name in PARAMETER_FREE else 2,
            "fewer_data_access": data_scores[name],
            "fewer_bound_access": bound_scores[name],
            "fewer_distance": distance_scores[name],
        }
    return ratings


def render_circles(score: int) -> str:
    """Paper-style circles: darker (more filled) = better."""
    filled = max(0, min(5, score))
    return "●" * filled + "○" * (5 - filled)
