"""Fault-tolerant execution runtime for the evaluation harness.

The paper's protocol (Section 7.1) averages every (algorithm, dataset, k)
cell over ten k-means++ seeds, and UTune trains on the accumulated offline
logs (Section 6) — so a multi-hour sweep must *degrade*, not die, when one
cell hangs or crashes.  This module supplies the machinery:

* :class:`RunKey` — the identity of one harness cell
  ``(algorithm, dataset, n, d, k, seed, max_iter)``.  Because the run key
  pins the k-means++ seeds, re-running a cell (retry or resume) reproduces
  it bit-for-bit; the key doubles as the checkpoint/resume dedup index in
  :class:`repro.eval.logdb.EvaluationLog`.
* :class:`ExecutionPolicy` — wall-clock timeout, retry budget, and
  exponential backoff with *deterministic* jitter (hashed from the run key
  and attempt number; no RNG state is touched, so the determinism contract
  holds even on the retry path).
* :class:`FailedRun` — the structured record a failed cell degrades into.
  It carries the run key, error class, message, attempt count, and elapsed
  time, and serializes next to successful records so downstream consumers
  (leaderboard, tables, UTune training) can recognise and skip it.
* :func:`supervised_map` — a process-pool replacement that survives what
  ``concurrent.futures`` cannot: a hung worker is killed at its deadline
  (``RunTimeoutError``), a dead worker (signal/``os._exit``) is detected
  (``WorkerCrashError``), a :class:`~repro.common.exceptions.TransientError`
  is retried with backoff, and any terminal failure becomes a
  :class:`FailedRun` while the remaining tasks keep running.

Failure taxonomy, retry semantics, and the resume keying are documented in
``docs/robustness.md``.
"""

from __future__ import annotations

import os
import time
import zlib
from collections import deque
from dataclasses import dataclass
from multiprocessing import get_all_start_methods, get_context
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.common.exceptions import (
    ReproError,
    RunTimeoutError,
    TransientError,
    ValidationError,
    WorkerCrashError,
)

#: the fields that identify one harness cell; together they pin the
#: k-means++ initializations, so equal keys imply bit-identical reruns
RUN_KEY_FIELDS = ("algorithm", "dataset", "n", "d", "k", "seed", "max_iter")

#: status literal stored on failed records in the evaluation log
FAILED_STATUS = "failed"

#: how often a supervisor polls worker pipes and deadlines (seconds);
#: shared by :func:`supervised_map` and the persistent worker pool
#: (:mod:`repro.exec.pool`), which reuses this module as its substrate
POLL_INTERVAL = 0.02
_POLL_INTERVAL = POLL_INTERVAL

#: placeholder for a result slot whose task has not finished; distinct from
#: None so workers may legitimately return None (see supervised_map's
#: no-None-placeholder invariant)
_PENDING = object()


@dataclass(frozen=True)
class RunKey:
    """Identity of one harness run — the checkpoint/resume dedup key."""

    algorithm: str
    dataset: str
    n: int
    d: int
    k: int
    seed: int
    max_iter: int

    def as_dict(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in RUN_KEY_FIELDS}

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> Optional["RunKey"]:
        """Reconstruct a key from a logged record; None when fields are
        missing or malformed (legacy records stay queryable, just not
        resumable)."""
        try:
            return cls(
                algorithm=str(record["algorithm"]),
                dataset=str(record.get("dataset", "")),
                n=int(record["n"]),
                d=int(record["d"]),
                k=int(record["k"]),
                seed=int(record.get("seed", 0)),
                max_iter=int(record.get("max_iter", 0)),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def __str__(self) -> str:
        where = self.dataset or "-"
        return (
            f"{self.algorithm}@{where}"
            f"(n={self.n},d={self.d},k={self.k},seed={self.seed},iters={self.max_iter})"
        )


@dataclass(frozen=True)
class ExecutionPolicy:
    """Timeout/retry/backoff contract for one batch of harness runs.

    ``retries`` is the number of *additional* attempts after the first, so
    a policy with ``retries=2`` runs a transiently-failing cell at most
    three times.  Backoff for attempt ``a`` is
    ``min(cap, base * 2**(a-1)) * (1 + jitter * u)`` where ``u`` in [0, 1)
    is hashed deterministically from the run key and attempt — repeated
    campaigns sleep identically, and no global RNG state is touched.

    ``max_total_time`` is a *batch-level* deadline: measured from the
    moment :func:`supervised_map` starts, no new attempt (first run or
    retry) is launched at or after the deadline, running workers are
    killed when it passes, and every unfinished item degrades to a
    ``RunTimeoutError`` :class:`FailedRun`.  This caps a retry storm
    across many items (shards, cells) at the campaign budget regardless
    of per-item ``timeout``/``retries`` settings.
    """

    timeout: Optional[float] = None
    retries: int = 0
    backoff_base: float = 0.05
    backoff_cap: float = 5.0
    jitter: float = 0.5
    retry_on_timeout: bool = False
    retry_on_crash: bool = False
    max_total_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValidationError(f"timeout must be > 0 (or None), got {self.timeout}")
        if self.max_total_time is not None and self.max_total_time <= 0:
            raise ValidationError(
                f"max_total_time must be > 0 (or None), got {self.max_total_time}"
            )
        if self.retries < 0:
            raise ValidationError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0 or self.jitter < 0:
            raise ValidationError("backoff_base, backoff_cap and jitter must be >= 0")

    def backoff_delay(self, key: str, attempt: int) -> float:
        """Deterministic backoff before retry number ``attempt``."""
        base = min(self.backoff_cap, self.backoff_base * (2 ** max(0, attempt - 1)))
        draw = zlib.crc32(f"{key}#{attempt}".encode()) % 10_000 / 10_000.0
        return base * (1.0 + self.jitter * draw)


@dataclass
class FailedRun:
    """Structured degradation record for one failed harness cell.

    Serializes alongside successful :class:`~repro.eval.harness.RunRecord`
    entries (``status="failed"`` is the discriminator) so a campaign log
    stays a single JSONL stream and ``--resume`` can re-run exactly the
    failed keys.
    """

    key: RunKey
    error_type: str
    message: str
    attempts: int
    elapsed: float
    status: str = FAILED_STATUS

    @property
    def algorithm(self) -> str:
        return self.key.algorithm

    def as_dict(self) -> Dict[str, Any]:
        record = self.key.as_dict()
        record.update(
            status=self.status,
            error_type=self.error_type,
            message=self.message,
            attempts=self.attempts,
            elapsed=self.elapsed,
        )
        return record

    def to_exception(self) -> ReproError:
        """The failure as a raisable exception (for ``on_failure="raise"``)."""
        text = f"{self.key}: {self.error_type} after {self.attempts} attempt(s): {self.message}"
        if self.error_type == "RunTimeoutError":
            return RunTimeoutError(text)
        if self.error_type == "WorkerCrashError":
            return WorkerCrashError(text)
        return ReproError(text)


def is_failed_record(record: Any) -> bool:
    """True for a :class:`FailedRun` (or dict) marking a failed cell."""
    if isinstance(record, Mapping):
        return record.get("status") == FAILED_STATUS
    return getattr(record, "status", None) == FAILED_STATUS


# ----------------------------------------------------------------------
# Process supervision.
# ----------------------------------------------------------------------


def default_mp_context():
    """The project-wide worker start method.

    fork keeps the parent's loaded dataset pages shared and is the cheap,
    deterministic default on POSIX; spawn is the portable fallback.
    """
    methods = get_all_start_methods()
    return get_context("fork" if "fork" in methods else "spawn")


_default_context = default_mp_context


def _child_main(conn, fn: Callable[[Any, int], Any], item: Any, attempt: int) -> None:
    """Worker entry: run one item and report exactly one message."""
    try:
        outcome: Tuple = ("ok", fn(item, attempt))
    except BaseException as exc:  # the process boundary reports, never hides
        outcome = ("error", type(exc).__name__, str(exc), isinstance(exc, TransientError))
    try:
        conn.send(outcome)
    finally:
        conn.close()


@dataclass
class _Task:
    """Supervisor bookkeeping for one in-flight item."""

    index: int
    item: Any
    key: RunKey
    attempt: int = 1
    first_start: float = 0.0
    deadline: Optional[float] = None
    not_before: float = 0.0
    proc: Any = None
    conn: Any = None


def terminate_process(proc, conn=None) -> None:
    """Tear down one worker process and its pipe (terminate, then kill).

    The escalation ladder every supervisor in the project uses: SIGTERM
    with a grace period, then SIGKILL.  Shared by :func:`supervised_map`
    and the persistent worker pool (:mod:`repro.exec.pool`).
    """
    if proc is not None and proc.is_alive():
        proc.terminate()
        proc.join(1.0)
        if proc.is_alive():
            proc.kill()
            proc.join(1.0)
    if conn is not None:
        conn.close()


def _reap(task: _Task) -> None:
    """Tear down a task's process and pipe (terminate, then kill)."""
    terminate_process(task.proc, task.conn)
    task.proc = None
    task.conn = None


def supervised_map(
    fn: Callable[[Any, int], Any],
    items: Sequence[Any],
    keys: Sequence[RunKey],
    *,
    policy: Optional[ExecutionPolicy] = None,
    max_workers: Optional[int] = None,
    mp_context=None,
) -> List[Union[Any, FailedRun]]:
    """Run ``fn(item, attempt)`` for every item in supervised worker
    processes; failures degrade to :class:`FailedRun` entries in place.

    Unlike ``ProcessPoolExecutor.map``, a hung worker is killed at its
    deadline, a crashed worker does not break the pool, and
    :class:`TransientError` failures are retried per ``policy`` — each
    retry re-runs the *same* item, so successful results are identical to
    a failure-free run.  ``policy.max_total_time`` additionally bounds the
    whole batch: when it expires, running workers are killed and every
    unfinished item fails with ``RunTimeoutError``.

    Invariant: every slot of the returned list is either ``fn``'s result
    for that item or a :class:`FailedRun` — never an unfinished
    placeholder.  If the supervisor loop itself dies (signal, bug,
    ``KeyboardInterrupt``), the ``finally`` path reaps the workers and
    converts every still-pending slot to
    ``FailedRun(error_type="SupervisorAborted")`` before the exception
    propagates, so callers that catch it still see a fully-settled list
    (a worker returning ``None`` is a *result*, not a placeholder).
    """
    policy = policy or ExecutionPolicy()
    items = list(items)
    keys = list(keys)
    if len(items) != len(keys):
        raise ValidationError(f"{len(items)} items but {len(keys)} run keys")
    if not items:
        return []
    ctx = mp_context or _default_context()
    workers = max(1, max_workers or min(len(items), os.cpu_count() or 1))
    results: List[Union[Any, FailedRun]] = [_PENDING] * len(items)
    tasks = [
        _Task(index=i, item=item, key=key)
        for i, (item, key) in enumerate(zip(items, keys))
    ]
    ready_queue = deque(tasks)
    backoff_wait: List[_Task] = []
    running: List[_Task] = []
    batch_start = time.monotonic()
    batch_deadline = (
        None if policy.max_total_time is None else batch_start + policy.max_total_time
    )

    def settle(task: _Task, error_type: str, message: str, retryable: bool) -> None:
        """Retry the task if the policy allows, else record a FailedRun."""
        if retryable and task.attempt <= policy.retries:
            not_before = time.monotonic() + policy.backoff_delay(
                str(task.key), task.attempt
            )
            # A retry that could not start before the batch deadline is a
            # failure now, not a zombie in the backoff queue.
            if batch_deadline is None or not_before < batch_deadline:
                task.not_before = not_before
                task.attempt += 1
                backoff_wait.append(task)
                return
        results[task.index] = FailedRun(
            key=task.key,
            error_type=error_type,
            message=message,
            attempts=task.attempt,
            elapsed=time.monotonic() - (task.first_start or batch_start),
        )

    def expire_batch() -> None:
        """Batch deadline passed: kill workers, fail all unfinished items."""
        message = (
            f"batch exceeded the {policy.max_total_time:.3g}s "
            "max_total_time budget"
        )
        for task in list(running):
            _reap(task)
        running.clear()
        ready_queue.clear()
        backoff_wait.clear()
        for task in tasks:
            if results[task.index] is _PENDING:
                results[task.index] = FailedRun(
                    key=task.key,
                    error_type="RunTimeoutError",
                    message=message,
                    attempts=task.attempt,
                    elapsed=time.monotonic() - (task.first_start or batch_start),
                )

    try:
        while ready_queue or backoff_wait or running:
            now = time.monotonic()
            if batch_deadline is not None and now >= batch_deadline:
                expire_batch()
                break
            for task in [t for t in backoff_wait if t.not_before <= now]:
                backoff_wait.remove(task)
                ready_queue.append(task)
            while ready_queue and len(running) < workers:
                task = ready_queue.popleft()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_child_main,
                    args=(child_conn, fn, task.item, task.attempt),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                started = time.monotonic()
                if not task.first_start:
                    task.first_start = started
                task.deadline = (
                    None if policy.timeout is None else started + policy.timeout
                )
                task.proc, task.conn = proc, parent_conn
                running.append(task)
            if not running:
                soonest = min(task.not_before for task in backoff_wait)
                time.sleep(max(0.0, min(soonest - time.monotonic(), _POLL_INTERVAL)))
                continue
            ready = _wait_connections(
                [task.conn for task in running], timeout=_POLL_INTERVAL
            )
            finished: List[_Task] = []
            for task in running:
                if task.conn in ready:
                    try:
                        message = task.conn.recv()
                    except (EOFError, OSError):
                        message = None
                    _reap(task)
                    finished.append(task)
                    if message is None:
                        settle(
                            task,
                            "WorkerCrashError",
                            "worker died before reporting a result",
                            policy.retry_on_crash,
                        )
                    elif message[0] == "ok":
                        results[task.index] = message[1]
                    else:
                        _, error_type, text, transient = message
                        settle(task, error_type, text, transient)
                elif task.deadline is not None and time.monotonic() >= task.deadline:
                    _reap(task)
                    finished.append(task)
                    settle(
                        task,
                        "RunTimeoutError",
                        f"exceeded the {policy.timeout:.3g}s wall-clock budget",
                        policy.retry_on_timeout,
                    )
                elif not task.proc.is_alive() and not task.conn.poll(0):
                    # Died without a message (signal / os._exit); a racy
                    # final send would have satisfied poll(0) above.
                    exitcode = task.proc.exitcode
                    _reap(task)
                    finished.append(task)
                    settle(
                        task,
                        "WorkerCrashError",
                        f"worker exited with code {exitcode} before reporting",
                        policy.retry_on_crash,
                    )
            if finished:
                running = [task for task in running if task not in finished]
    finally:
        for task in running:
            _reap(task)
        # The no-None-placeholder invariant (docstring): if the loop above
        # died mid-batch, settle every still-pending slot so callers never
        # see an unfinished placeholder.
        for task in tasks:
            if results[task.index] is _PENDING:
                results[task.index] = FailedRun(
                    key=task.key,
                    error_type="SupervisorAborted",
                    message="supervisor aborted before this item finished",
                    attempts=task.attempt,
                    elapsed=time.monotonic() - (task.first_start or batch_start),
                )
    return results


def supervised_call(
    fn: Callable[[Any, int], Any],
    item: Any,
    key: RunKey,
    *,
    policy: Optional[ExecutionPolicy] = None,
    mp_context=None,
) -> Any:
    """One supervised run; raises the classified error instead of degrading."""
    outcome = supervised_map(
        fn, [item], [key], policy=policy, max_workers=1, mp_context=mp_context
    )[0]
    if isinstance(outcome, FailedRun):
        raise outcome.to_exception()
    return outcome


def run_with_retries(
    fn: Callable[[], Any],
    *,
    key: str = "",
    policy: Optional[ExecutionPolicy] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Any:
    """In-process retry wrapper (no timeout isolation) for light callers.

    Retries :class:`TransientError` with the policy's deterministic
    backoff; any other exception — and the final transient failure —
    propagates unchanged.
    """
    policy = policy or ExecutionPolicy()
    attempt = 1
    while True:
        try:
            return fn()
        except TransientError:
            if attempt > policy.retries:
                raise
            sleep(policy.backoff_delay(key, attempt))
            attempt += 1
