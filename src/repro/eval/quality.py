"""Clustering quality metrics.

The paper's methods are exact, so they share Lloyd's SSE by construction;
quality metrics matter for the *approximate* extensions (mini-batch,
sampling) and for sanity-checking surrogate datasets.  Implemented from
scratch on numpy:

* :func:`sse` — the k-means objective (Equation 1);
* :func:`silhouette_score` — mean silhouette, with optional subsampling
  for large ``n`` (the full computation is O(n^2));
* :func:`davies_bouldin` — average worst-case cluster similarity (lower is
  better);
* :func:`calinski_harabasz` — between/within dispersion ratio (higher is
  better);
* :func:`adjusted_rand_index` and :func:`normalized_mutual_info` — label
  agreement between two clusterings.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.exceptions import ValidationError
from repro.common.rng import SeedLike, ensure_rng
from repro.common.validation import check_data_matrix, check_labels


def sse(X: np.ndarray, labels: np.ndarray, centroids: np.ndarray) -> float:
    """Sum of squared errors to assigned centroids (Equation 1)."""
    X = check_data_matrix(X)
    labels = check_labels(labels, len(X), len(centroids))
    diff = X - centroids[labels]
    return float(np.einsum("ij,ij->", diff, diff))


def silhouette_score(
    X: np.ndarray,
    labels: np.ndarray,
    *,
    sample_size: Optional[int] = 1000,
    seed: SeedLike = 0,
) -> float:
    """Mean silhouette coefficient, optionally over a uniform subsample."""
    X = check_data_matrix(X)
    labels = check_labels(labels, len(X))
    if len(set(labels.tolist())) < 2:
        raise ValidationError("silhouette requires at least 2 clusters")
    rng = ensure_rng(seed)
    idx = np.arange(len(X))
    if sample_size is not None and sample_size < len(X):
        idx = rng.choice(len(X), size=sample_size, replace=False)
    sample = X[idx]
    sample_labels = labels[idx]
    dists = np.linalg.norm(sample[:, None] - X[None, :], axis=2)
    scores = np.empty(len(idx))
    for pos in range(len(idx)):
        own = labels == sample_labels[pos]
        own_count = int(own.sum())
        if own_count <= 1:
            scores[pos] = 0.0
            continue
        # a: mean distance to the other members of the own cluster.  The
        # sampled point itself is in ``own`` with self-distance zero, so
        # dividing the sum by (count - 1) excludes it exactly.
        a = dists[pos, own].sum() / (own_count - 1)
        b = np.inf
        for other in np.unique(labels):
            if other == sample_labels[pos]:
                continue
            mask = labels == other
            if mask.any():
                b = min(b, float(dists[pos, mask].mean()))
        scores[pos] = 0.0 if max(a, b) == 0 else (b - a) / max(a, b)
    return float(scores.mean())


def davies_bouldin(X: np.ndarray, labels: np.ndarray) -> float:
    """Davies-Bouldin index (lower is better)."""
    X = check_data_matrix(X)
    labels = check_labels(labels, len(X))
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ValidationError("Davies-Bouldin requires at least 2 clusters")
    centroids = np.vstack([X[labels == c].mean(axis=0) for c in unique])
    scatter = np.array(
        [np.linalg.norm(X[labels == c] - centroids[i], axis=1).mean()
         for i, c in enumerate(unique)]
    )
    sep = np.linalg.norm(centroids[:, None] - centroids[None, :], axis=2)
    ratios = np.zeros(len(unique))
    for i in range(len(unique)):
        values = [
            (scatter[i] + scatter[j]) / sep[i, j]
            for j in range(len(unique))
            if j != i and sep[i, j] > 0
        ]
        ratios[i] = max(values) if values else 0.0
    return float(ratios.mean())


def calinski_harabasz(X: np.ndarray, labels: np.ndarray) -> float:
    """Calinski-Harabasz (variance ratio) score (higher is better)."""
    X = check_data_matrix(X)
    labels = check_labels(labels, len(X))
    unique = np.unique(labels)
    k = len(unique)
    n = len(X)
    if k < 2 or k >= n:
        raise ValidationError("Calinski-Harabasz requires 2 <= k < n")
    overall = X.mean(axis=0)
    between = 0.0
    within = 0.0
    for c in unique:
        members = X[labels == c]
        center = members.mean(axis=0)
        between += len(members) * float((center - overall) @ (center - overall))
        within += float(np.einsum("ij,ij->", members - center, members - center))
    if within == 0.0:
        return float("inf")
    return float((between / (k - 1)) / (within / (n - k)))


def _contingency(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    ua, ia = np.unique(a, return_inverse=True)
    ub, ib = np.unique(b, return_inverse=True)
    table = np.zeros((len(ua), len(ub)), dtype=np.int64)
    np.add.at(table, (ia, ib), 1)
    return table


def adjusted_rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Adjusted Rand index between two clusterings of the same points."""
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.shape != b.shape:
        raise ValidationError("label vectors must have equal length")
    table = _contingency(a, b)
    n = a.size

    def comb2(x):
        return x * (x - 1) / 2.0

    sum_cells = comb2(table).sum()
    sum_rows = comb2(table.sum(axis=1)).sum()
    sum_cols = comb2(table.sum(axis=0)).sum()
    total = comb2(np.array([n]))[0]
    expected = sum_rows * sum_cols / total if total else 0.0
    max_index = 0.5 * (sum_rows + sum_cols)
    denom = max_index - expected
    if denom == 0:
        return 1.0
    return float((sum_cells - expected) / denom)


def normalized_mutual_info(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """NMI (arithmetic normalization) between two clusterings."""
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.shape != b.shape:
        raise ValidationError("label vectors must have equal length")
    table = _contingency(a, b).astype(float)
    n = a.size
    joint = table / n
    pa = joint.sum(axis=1)
    pb = joint.sum(axis=0)
    nonzero = joint > 0
    mi = float(
        (joint[nonzero] * np.log(joint[nonzero] / np.outer(pa, pb)[nonzero])).sum()
    )

    def entropy(p):
        p = p[p > 0]
        return float(-(p * np.log(p)).sum())

    ha, hb = entropy(pa), entropy(pb)
    if ha == 0.0 and hb == 0.0:
        return 1.0
    denom = 0.5 * (ha + hb)
    return mi / denom if denom else 0.0
