"""Leaderboard aggregation (Figure 12): top-1 and top-3 counts per method.

Each clustering task contributes one ranking of the competing methods by
running time (or any chosen metric); the leaderboard counts how often each
method places first and how often it lands in the top three — the two pie
charts of Figure 12 that justify the five-method selection pool.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Sequence

from repro.eval.harness import RunRecord
from repro.eval.runtime import is_failed_record


class Leaderboard:
    """Accumulates per-task rankings and reports aggregate placements.

    Failed cells from the fault-tolerant runtime are excluded from ranking:
    a :class:`~repro.eval.runtime.FailedRun` carries no metrics, and a task
    where *every* method failed contributes nothing rather than crashing
    the aggregation."""

    def __init__(self, metric: str = "total_time", ascending: bool = True) -> None:
        self.metric = metric
        self.ascending = ascending
        self.top1: Dict[str, int] = defaultdict(int)
        self.top3: Dict[str, int] = defaultdict(int)
        self.tasks = 0
        self._rankings: List[List[str]] = []

    def add_task(self, records: Sequence[RunRecord]) -> List[str]:
        """Rank one task's records and update the tallies.

        Returns the ranking (best first) — empty when every record in the
        task failed (the task is then not counted).

        Records whose metric value is ``None`` (e.g. rebuilt from a log
        whose writer never measured this metric) are excluded *explicitly*,
        same as failed cells: an unmeasured record must not rank, and
        silently comparing ``None`` against floats would raise mid-sort.
        """
        if not records:
            raise ValueError("cannot rank an empty record list")
        records = [
            r for r in records
            if not is_failed_record(r) and getattr(r, self.metric, None) is not None
        ]
        if not records:
            return []
        key: Callable[[RunRecord], float] = lambda r: getattr(r, self.metric)
        ranked = sorted(records, key=key, reverse=not self.ascending)
        names = [record.algorithm for record in ranked]
        self.top1[names[0]] += 1
        for name in names[:3]:
            self.top3[name] += 1
        self.tasks += 1
        self._rankings.append(names)
        return names

    def ranking_of(self, task_index: int) -> List[str]:
        return list(self._rankings[task_index])

    def top1_share(self) -> Dict[str, float]:
        """Fraction of tasks each method won (the Figure 12 'top 1' pie)."""
        if not self.tasks:
            return {}
        return {name: count / self.tasks for name, count in sorted(self.top1.items())}

    def top3_share(self) -> Dict[str, float]:
        if not self.tasks:
            return {}
        return {name: count / self.tasks for name, count in sorted(self.top3.items())}

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {"top1": self.top1_share(), "top3": self.top3_share()}
