"""Evaluation-log store: the offline record UTune learns from.

The paper trains its selector "based on our evaluation data ... using the
offline evaluation logs" (Section 6).  :class:`EvaluationLog` is that
artifact: an append-only JSONL-backed store of harness records with query
and aggregation helpers, so long benchmark campaigns accumulate across
runs and training data generation can reuse them instead of re-timing.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from repro.datasets.loaders import append_jsonl, read_jsonl
from repro.eval.harness import RunRecord

PathLike = Union[str, Path]


class EvaluationLog:
    """Append-only store of run records with simple querying."""

    def __init__(self, path: Optional[PathLike] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._records: List[Dict[str, Any]] = []
        if self.path is not None:
            self._records = read_jsonl(self.path)

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # Writing.
    # ------------------------------------------------------------------

    def add(self, record: Union[RunRecord, Dict[str, Any]], **context: Any) -> None:
        """Append one record (harness RunRecord or plain dict) with extra
        context keys (dataset name, seed, ...)."""
        data = record.as_dict() if isinstance(record, RunRecord) else dict(record)
        data.update(context)
        self._records.append(data)
        if self.path is not None:
            append_jsonl(self.path, [data])

    def add_many(
        self, records: Iterable[Union[RunRecord, Dict[str, Any]]], **context: Any
    ) -> int:
        count = 0
        for record in records:
            self.add(record, **context)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Querying.
    # ------------------------------------------------------------------

    def query(self, **filters: Any) -> List[Dict[str, Any]]:
        """Records whose fields equal every filter value.

        Callable filter values act as predicates:
        ``log.query(k=lambda k: k >= 100)``.
        """
        out = []
        for record in self._records:
            ok = True
            for key, expected in filters.items():
                actual = record.get(key)
                if callable(expected):
                    if actual is None or not expected(actual):
                        ok = False
                        break
                elif actual != expected:
                    ok = False
                    break
            if ok:
                out.append(dict(record))
        return out

    def algorithms(self) -> List[str]:
        return sorted({r.get("algorithm", "?") for r in self._records})

    def mean(self, field: str, **filters: Any) -> float:
        """Mean of a numeric field over matching records."""
        values = [r[field] for r in self.query(**filters) if field in r]
        if not values:
            raise KeyError(f"no records with field {field!r} match {filters}")
        return float(sum(values) / len(values))

    def best(
        self, field: str = "total_time", *, minimize: bool = True, **filters: Any
    ) -> Dict[str, Any]:
        """The matching record with the extreme value of ``field``."""
        matching = [r for r in self.query(**filters) if field in r]
        if not matching:
            raise KeyError(f"no records with field {field!r} match {filters}")
        chooser: Callable = min if minimize else max
        return chooser(matching, key=lambda r: r[field])
