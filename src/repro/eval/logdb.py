"""Evaluation-log store: the offline record UTune learns from.

The paper trains its selector "based on our evaluation data ... using the
offline evaluation logs" (Section 6).  :class:`EvaluationLog` is that
artifact: an append-only JSONL-backed store of harness records with query
and aggregation helpers, so long benchmark campaigns accumulate across
runs and training data generation can reuse them instead of re-timing.

The log is also the harness's *checkpoint*: every record carrying the run
key fields ``(algorithm, dataset, n, d, k, seed, max_iter)`` is indexed,
failed cells (``status="failed"``, see :class:`repro.eval.runtime.FailedRun`)
are tracked separately, and a resumed campaign consults
:meth:`completed_keys` to skip work already banked.  Appends are atomic at
line granularity (flush+fsync per batch); a crash mid-append leaves at
worst one truncated final line, which loading quarantines instead of
raising — see ``docs/robustness.md``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Union

from repro.datasets.loaders import append_jsonl, read_jsonl
from repro.eval.harness import RunRecord
from repro.eval.runtime import FAILED_STATUS, FailedRun, RunKey, is_failed_record

PathLike = Union[str, Path]

Recordable = Union[RunRecord, FailedRun, Dict[str, Any]]


class EvaluationLog:
    """Append-only store of run records with querying and a resume index."""

    def __init__(self, path: Optional[PathLike] = None, *,
                 truncated: str = "quarantine") -> None:
        self.path = Path(path) if path is not None else None
        self._records: List[Dict[str, Any]] = []
        #: run key -> "ok" | "failed"; a success wins over any failure
        self._statuses: Dict[RunKey, str] = {}
        if self.path is not None:
            # repair=True drops the crash artifact from the file itself, so
            # subsequent appends extend a clean log.
            self._records = read_jsonl(self.path, truncated=truncated, repair=True)
        for record in self._records:
            self._index(record)

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # Writing.
    # ------------------------------------------------------------------

    def add(self, record: Recordable, **context: Any) -> None:
        """Append one record (RunRecord, FailedRun, or plain dict) with
        extra context keys (dataset name, seed, ...)."""
        data = record.as_dict() if isinstance(record, (RunRecord, FailedRun)) else dict(record)
        data.update(context)
        self._records.append(data)
        self._index(data)
        if self.path is not None:
            append_jsonl(self.path, [data])

    def add_many(self, records: Iterable[Recordable], **context: Any) -> int:
        count = 0
        for record in records:
            self.add(record, **context)
            count += 1
        return count

    def _index(self, record: Dict[str, Any]) -> None:
        key = RunKey.from_record(record)
        if key is None:
            return
        status = FAILED_STATUS if is_failed_record(record) else "ok"
        if status == "ok" or self._statuses.get(key) != "ok":
            self._statuses[key] = status

    # ------------------------------------------------------------------
    # Checkpoint / resume index.
    # ------------------------------------------------------------------

    def completed_keys(self) -> Set[RunKey]:
        """Run keys with at least one successful record — resume skips these."""
        return {key for key, status in self._statuses.items() if status == "ok"}

    def failed_keys(self) -> Set[RunKey]:
        """Run keys whose every attempt so far failed — resume re-runs these."""
        return {key for key, status in self._statuses.items() if status == FAILED_STATUS}

    def has_completed(self, key: RunKey) -> bool:
        return self._statuses.get(key) == "ok"

    def latest_success(self, key: RunKey) -> Optional[Dict[str, Any]]:
        """The most recent successful record for ``key``, if any."""
        for record in reversed(self._records):
            if not is_failed_record(record) and RunKey.from_record(record) == key:
                return dict(record)
        return None

    def successes(self) -> List[Dict[str, Any]]:
        return [dict(r) for r in self._records if not is_failed_record(r)]

    def failures(self) -> List[Dict[str, Any]]:
        return [dict(r) for r in self._records if is_failed_record(r)]

    # ------------------------------------------------------------------
    # Querying.
    # ------------------------------------------------------------------

    def query(self, **filters: Any) -> List[Dict[str, Any]]:
        """Records whose fields equal every filter value.

        Callable filter values act as predicates:
        ``log.query(k=lambda k: k >= 100)``.

        Null vs. missing is explicit: a record *missing* a filtered field
        never matches, while ``field=None`` matches records whose field is
        present with an explicit null.  Predicates likewise see every
        present value — including ``None`` — and never run on missing
        fields.  (Historically both cases were conflated through
        ``record.get``, so ``status=None`` silently matched every record
        without a ``status`` field.)
        """
        out = []
        for record in self._records:
            ok = True
            for key, expected in filters.items():
                if key not in record:
                    ok = False
                    break
                actual = record[key]
                if callable(expected):
                    if not expected(actual):
                        ok = False
                        break
                elif actual != expected:
                    ok = False
                    break
            if ok:
                out.append(dict(record))
        return out

    def algorithms(self) -> List[str]:
        return sorted({r.get("algorithm", "?") for r in self._records})

    def mean(self, field: str, **filters: Any) -> float:
        """Mean of a numeric field over matching records (failures carry no
        metric fields, so they drop out naturally)."""
        values = [r[field] for r in self.query(**filters) if field in r]
        if not values:
            raise KeyError(f"no records with field {field!r} match {filters}")
        return float(sum(values) / len(values))

    def best(
        self, field: str = "total_time", *, minimize: bool = True, **filters: Any
    ) -> Dict[str, Any]:
        """The matching record with the extreme value of ``field``."""
        matching = [r for r in self.query(**filters) if field in r]
        if not matching:
            raise KeyError(f"no records with field {field!r} match {filters}")
        chooser: Callable = min if minimize else max
        return chooser(matching, key=lambda r: r[field])
