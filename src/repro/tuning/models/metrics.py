"""Basic classification metrics for model evaluation."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np


def accuracy_score(y_true: Sequence, y_pred: Sequence) -> float:
    """Fraction of exact matches."""
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred must have the same length")
    if not len(y_true):
        return 0.0
    return sum(a == b for a, b in zip(y_true, y_pred)) / len(y_true)


def confusion_matrix(
    y_true: Sequence, y_pred: Sequence
) -> Tuple[np.ndarray, List]:
    """Confusion matrix and the label order it uses."""
    labels = sorted(set(y_true) | set(y_pred), key=str)
    index: Dict = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for truth, pred in zip(y_true, y_pred):
        matrix[index[truth], index[pred]] += 1
    return matrix, labels


def train_test_split(
    X: np.ndarray,
    y: Sequence,
    *,
    test_fraction: float = 0.3,
    seed: int = 0,
) -> Tuple[np.ndarray, list, np.ndarray, list]:
    """Shuffled split, 70/30 by default (the paper's protocol)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    n = len(X)
    order = rng.permutation(n)
    cut = max(1, int(round(n * (1.0 - test_fraction))))
    cut = min(cut, n - 1)
    train_idx, test_idx = order[:cut], order[cut:]
    y = list(y)
    return (
        X[train_idx],
        [y[i] for i in train_idx],
        X[test_idx],
        [y[i] for i in test_idx],
    )
