"""Linear one-vs-rest SVM trained by averaged subgradient descent on the
L2-regularized hinge loss (Pegasos-style).

Features are standardized internally; each class gets one binary margin
machine and ``decision_scores`` returns the raw margins, which rank classes
for MRR.
"""

from __future__ import annotations

import numpy as np

from repro.tuning.models.base import Classifier


class LinearSVMClassifier(Classifier):
    """One-vs-rest linear SVM (hinge loss, L2 regularization)."""

    def __init__(
        self,
        C: float = 1.0,
        epochs: int = 200,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.C = float(C)
        self.epochs = int(epochs)
        self.seed = seed

    def _fit(self, X: np.ndarray, codes: np.ndarray) -> None:
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self._std = std
        Z = (X - self._mean) / self._std
        n, d = Z.shape
        n_classes = self.encoder.n_classes
        rng = np.random.default_rng(self.seed)
        lam = 1.0 / (self.C * n)
        self._W = np.zeros((n_classes, d))
        self._b = np.zeros(n_classes)
        for cls in range(n_classes):
            y = np.where(codes == cls, 1.0, -1.0)
            w = np.zeros(d)
            b = 0.0
            w_avg = np.zeros(d)
            b_avg = 0.0
            step = 0
            for epoch in range(self.epochs):
                for i in rng.permutation(n):
                    step += 1
                    eta = 1.0 / (lam * step)
                    margin = y[i] * (w @ Z[i] + b)
                    w *= 1.0 - eta * lam
                    if margin < 1.0:
                        w += eta * y[i] * Z[i]
                        b += eta * y[i] * 0.1
                    w_avg += w
                    b_avg += b
            self._W[cls] = w_avg / step
            self._b[cls] = b_avg / step

    def _scores(self, X: np.ndarray) -> np.ndarray:
        Z = (X - self._mean) / self._std
        return Z @ self._W.T + self._b
