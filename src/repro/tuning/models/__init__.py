"""From-scratch classifiers used by UTune (paper Table 5).

The original study trains scikit-learn models; this offline reproduction
implements the same model classes directly on numpy:

* :class:`DecisionTreeClassifier` — CART with Gini impurity,
* :class:`RandomForestClassifier` — bagged trees with feature subsampling,
* :class:`KNeighborsClassifier` — distance-vote kNN,
* :class:`LinearSVMClassifier` — one-vs-rest linear SVM (subgradient hinge),
* :class:`RidgeClassifier` — closed-form regularized least squares on
  one-hot targets.

Every model exposes ``decision_scores`` so predictions can be *ranked*,
which the MRR metric (Equation 13) requires.
"""

from repro.tuning.models.base import Classifier, LabelEncoder
from repro.tuning.models.decision_tree import DecisionTreeClassifier
from repro.tuning.models.knn import KNeighborsClassifier
from repro.tuning.models.metrics import accuracy_score, confusion_matrix
from repro.tuning.models.random_forest import RandomForestClassifier
from repro.tuning.models.ridge import RidgeClassifier
from repro.tuning.models.svm import LinearSVMClassifier

MODEL_CLASSES = {
    "dt": DecisionTreeClassifier,
    "rf": RandomForestClassifier,
    "knn": KNeighborsClassifier,
    "svm": LinearSVMClassifier,
    "rc": RidgeClassifier,
}


def make_model(name: str, **kwargs) -> Classifier:
    """Instantiate a classifier by its Table 5 abbreviation."""
    try:
        cls = MODEL_CLASSES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(MODEL_CLASSES))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None
    return cls(**kwargs)


__all__ = [
    "Classifier",
    "LabelEncoder",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "KNeighborsClassifier",
    "LinearSVMClassifier",
    "RidgeClassifier",
    "MODEL_CLASSES",
    "make_model",
    "accuracy_score",
    "confusion_matrix",
]
