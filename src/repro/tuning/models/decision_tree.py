"""CART decision tree with Gini impurity.

The paper's best-performing selector is a depth-10 decision tree
(Section 7.3.1); ``max_depth`` defaults to 10 accordingly.  Splits are
axis-aligned thresholds chosen by exhaustive scan over midpoints of sorted
unique feature values, with class-count prefix sums so each feature costs
O(n log n).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.tuning.models.base import Classifier


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    proba: Optional[np.ndarray] = None  # leaf class distribution

    @property
    def is_leaf(self) -> bool:
        return self.proba is not None


def _gini_from_counts(counts: np.ndarray, total: float) -> float:
    if total <= 0:
        return 0.0
    p = counts / total
    return 1.0 - float(p @ p)


class DecisionTreeClassifier(Classifier):
    """Gini-split CART classifier."""

    def __init__(
        self,
        max_depth: int = 10,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.seed = seed
        self._root: Optional[_Node] = None

    def _fit(self, X: np.ndarray, codes: np.ndarray) -> None:
        self._n_classes = self.encoder.n_classes
        self._rng = np.random.default_rng(self.seed)
        self._root = self._grow(X, codes, depth=0)

    def _grow(self, X: np.ndarray, codes: np.ndarray, depth: int) -> _Node:
        counts = np.bincount(codes, minlength=self._n_classes).astype(float)
        if (
            depth >= self.max_depth
            or len(codes) < self.min_samples_split
            or np.count_nonzero(counts) <= 1
        ):
            return _Node(proba=counts / counts.sum())
        split = self._best_split(X, codes, counts)
        if split is None:
            return _Node(proba=counts / counts.sum())
        feature, threshold = split
        mask = X[:, feature] <= threshold
        left = self._grow(X[mask], codes[mask], depth + 1)
        right = self._grow(X[~mask], codes[~mask], depth + 1)
        return _Node(feature=feature, threshold=threshold, left=left, right=right)

    def _best_split(
        self, X: np.ndarray, codes: np.ndarray, counts: np.ndarray
    ) -> Optional[tuple]:
        n, d = X.shape
        parent_gini = _gini_from_counts(counts, float(n))
        best_gain = 1e-12
        best = None
        if self.max_features is not None and self.max_features < d:
            features = self._rng.choice(d, size=self.max_features, replace=False)
        else:
            features = np.arange(d)
        for feature in features:
            order = np.argsort(X[:, feature], kind="stable")
            values = X[order, feature]
            sorted_codes = codes[order]
            onehot = np.zeros((n, self._n_classes))
            onehot[np.arange(n), sorted_codes] = 1.0
            prefix = np.cumsum(onehot, axis=0)
            # Candidate cut after position i (1-based count i+1 on the left);
            # only where the value actually changes.
            cuts = np.flatnonzero(values[:-1] < values[1:])
            for cut in cuts:
                n_left = cut + 1
                n_right = n - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                left_counts = prefix[cut]
                right_counts = counts - left_counts
                gini = (
                    n_left * _gini_from_counts(left_counts, n_left)
                    + n_right * _gini_from_counts(right_counts, n_right)
                ) / n
                gain = parent_gini - gini
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float((values[cut] + values[cut + 1]) / 2.0))
        return best

    def _scores(self, X: np.ndarray) -> np.ndarray:
        out = np.empty((len(X), self._n_classes))
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.proba
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root) if self._root is not None else 0
