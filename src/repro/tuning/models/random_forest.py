"""Random forest: bootstrap-bagged Gini trees with feature subsampling."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.tuning.models.base import Classifier
from repro.tuning.models.decision_tree import DecisionTreeClassifier


class RandomForestClassifier(Classifier):
    """Averaged ensemble of randomized decision trees."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 10,
        min_samples_leaf: int = 1,
        max_features: Optional[str] = "sqrt",
        seed: Optional[int] = 0,
    ) -> None:
        super().__init__()
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.seed = seed
        self._trees: List[DecisionTreeClassifier] = []

    def _resolve_max_features(self, d: int) -> Optional[int]:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        if self.max_features == "log2":
            return max(1, int(np.log2(d)))
        return max(1, min(int(self.max_features), d))

    def _fit(self, X: np.ndarray, codes: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        n, d = X.shape
        self._n_classes = self.encoder.n_classes
        max_features = self._resolve_max_features(d)
        self._trees = []
        for _ in range(self.n_estimators):
            sample = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            # Fit on encoded codes directly: reuse the outer encoder so all
            # trees share one class space even if a bootstrap misses a class.
            tree.encoder = self.encoder
            tree._n_classes = self._n_classes
            tree._rng = np.random.default_rng(tree.seed)
            tree._root = tree._grow(X[sample], codes[sample], depth=0)
            tree._fitted = True
            self._trees.append(tree)

    def _scores(self, X: np.ndarray) -> np.ndarray:
        total = np.zeros((len(X), self._n_classes))
        for tree in self._trees:
            total += tree._scores(X)
        return total / len(self._trees)
