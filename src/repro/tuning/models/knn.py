"""k-nearest-neighbour classifier with standardized features.

Meta-features mix scales wildly (``n`` in thousands, radii below one), so
kNN standardizes each feature to zero mean / unit variance before measuring
Euclidean distances — without this the model degenerates to "nearest n".
Scores are inverse-distance-weighted class votes, giving a full ranking for
MRR.
"""

from __future__ import annotations

import numpy as np

from repro.tuning.models.base import Classifier


class KNeighborsClassifier(Classifier):
    """Distance-weighted kNN over standardized features."""

    def __init__(self, n_neighbors: int = 5) -> None:
        super().__init__()
        self.n_neighbors = int(n_neighbors)

    def _fit(self, X: np.ndarray, codes: np.ndarray) -> None:
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self._std = std
        self._train = (X - self._mean) / self._std
        self._codes = codes
        self._n_classes = self.encoder.n_classes

    def _scores(self, X: np.ndarray) -> np.ndarray:
        Z = (X - self._mean) / self._std
        k = min(self.n_neighbors, len(self._train))
        out = np.zeros((len(Z), self._n_classes))
        for i, row in enumerate(Z):
            diff = self._train - row
            dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            nearest = np.argsort(dists, kind="stable")[:k]
            weights = 1.0 / (dists[nearest] + 1e-12)
            for pos, idx in enumerate(nearest):
                out[i, self._codes[idx]] += weights[pos]
            out[i] /= out[i].sum()
        return out
