"""Ridge classifier: closed-form L2-regularized least squares on one-hot
targets (scikit-learn's ``RidgeClassifier`` equivalent)."""

from __future__ import annotations

import numpy as np

from repro.tuning.models.base import Classifier


class RidgeClassifier(Classifier):
    """One-hot ridge regression; scores are the regression outputs."""

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        self.alpha = float(alpha)

    def _fit(self, X: np.ndarray, codes: np.ndarray) -> None:
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self._std = std
        Z = (X - self._mean) / self._std
        n, d = Z.shape
        n_classes = self.encoder.n_classes
        # Targets in {-1, +1}, matching RidgeClassifier's label coding.
        Y = -np.ones((n, n_classes))
        Y[np.arange(n), codes] = 1.0
        A = np.hstack([Z, np.ones((n, 1))])
        gram = A.T @ A + self.alpha * np.eye(d + 1)
        gram[-1, -1] -= self.alpha  # do not regularize the intercept
        self._coef = np.linalg.solve(gram, A.T @ Y)

    def _scores(self, X: np.ndarray) -> np.ndarray:
        Z = (X - self._mean) / self._std
        A = np.hstack([Z, np.ones((len(Z), 1))])
        return A @ self._coef
