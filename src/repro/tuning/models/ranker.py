"""Pairwise ranking model — the paper's future-work direction realized.

Section A.5 ("New ML Models to be Adopted") observes that the classifiers
of Table 5 optimize exact-match loss while the evaluation metric is MRR,
and proposes "designing a specific machine learning model with a loss
function like MRR".  :class:`PairwiseRanker` does that: a linear scoring
model per configuration trained with the pairwise logistic (RankNet-style)
loss over the *full ground-truth rankings*, so every position in the
ranking — not only the winner — shapes the decision boundary.

Unlike the classifiers it consumes rankings at fit time, which UTune feeds
it when constructed with ``model="ranker"``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.common.exceptions import NotFittedError, ValidationError


class PairwiseRanker:
    """Linear per-class scorer trained with pairwise logistic loss."""

    def __init__(
        self,
        epochs: int = 300,
        learning_rate: float = 0.05,
        l2: float = 1e-3,
        seed: int = 0,
    ) -> None:
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.l2 = float(l2)
        self.seed = seed
        self.classes_: List = []
        self._W: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Training.
    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, rankings: Sequence[Sequence]) -> "PairwiseRanker":
        """Fit from feature rows and their ground-truth rankings.

        ``rankings[i]`` lists configurations best-first for row ``i``;
        partial rankings (selective running) are supported — only observed
        pairs contribute loss.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(rankings):
            raise ValidationError("X and rankings must align, X must be 2-D")
        self.classes_ = sorted({label for ranking in rankings for label in ranking}, key=str)
        index = {label: i for i, label in enumerate(self.classes_)}
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self._std = std
        Z = np.hstack([(X - self._mean) / self._std, np.ones((len(X), 1))])
        n, d = Z.shape
        c = len(self.classes_)
        rng = np.random.default_rng(self.seed)
        W = rng.normal(0.0, 0.01, size=(c, d))
        pairs = []  # (row, better_class, worse_class)
        for row, ranking in enumerate(rankings):
            codes = [index[label] for label in ranking]
            for pos, better in enumerate(codes):
                for worse in codes[pos + 1 :]:
                    pairs.append((row, better, worse))
        pairs = np.asarray(pairs, dtype=np.intp)
        if len(pairs) == 0:
            self._W = W
            return self
        for epoch in range(self.epochs):
            eta = self.learning_rate / (1.0 + 0.01 * epoch)
            order = rng.permutation(len(pairs))
            for row, better, worse in pairs[order]:
                z = Z[row]
                margin = float((W[better] - W[worse]) @ z)
                # d/dmargin log(1 + exp(-margin)) = -sigmoid(-margin)
                grad = -1.0 / (1.0 + np.exp(margin))
                W[better] -= eta * (grad * z + self.l2 * W[better])
                W[worse] -= eta * (-grad * z + self.l2 * W[worse])
        self._W = W
        return self

    # ------------------------------------------------------------------
    # Prediction (classifier-compatible surface).
    # ------------------------------------------------------------------

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        if self._W is None:
            raise NotFittedError("PairwiseRanker used before fit")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        Z = np.hstack([(X - self._mean) / self._std, np.ones((len(X), 1))])
        return Z @ self._W.T

    def predict(self, X: np.ndarray) -> List:
        scores = self.decision_scores(X)
        return [self.classes_[int(i)] for i in np.argmax(scores, axis=1)]

    def rank(self, X: np.ndarray) -> List[List]:
        scores = self.decision_scores(X)
        order = np.argsort(-scores, axis=1, kind="stable")
        return [[self.classes_[int(i)] for i in row] for row in order]
