"""Classifier protocol and label encoding."""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

from repro.common.exceptions import NotFittedError, ValidationError


class LabelEncoder:
    """Maps arbitrary hashable labels to contiguous integer codes."""

    def __init__(self) -> None:
        self.classes_: Optional[List] = None

    def fit(self, labels: Sequence) -> "LabelEncoder":
        self.classes_ = sorted(set(labels), key=str)
        self._index = {label: idx for idx, label in enumerate(self.classes_)}
        return self

    def transform(self, labels: Sequence) -> np.ndarray:
        if self.classes_ is None:
            raise NotFittedError("LabelEncoder used before fit")
        try:
            return np.asarray([self._index[label] for label in labels], dtype=np.intp)
        except KeyError as exc:
            raise ValidationError(f"unseen label {exc.args[0]!r}") from exc

    def fit_transform(self, labels: Sequence) -> np.ndarray:
        return self.fit(labels).transform(labels)

    def inverse_transform(self, codes: np.ndarray) -> List:
        if self.classes_ is None:
            raise NotFittedError("LabelEncoder used before fit")
        return [self.classes_[int(code)] for code in codes]

    @property
    def n_classes(self) -> int:
        if self.classes_ is None:
            raise NotFittedError("LabelEncoder used before fit")
        return len(self.classes_)


class Classifier(abc.ABC):
    """Common protocol: fit / predict / decision_scores / rank."""

    def __init__(self) -> None:
        self.encoder = LabelEncoder()
        self._fitted = False

    def fit(self, X: np.ndarray, y: Sequence) -> "Classifier":
        X = self._check_X(X)
        codes = self.encoder.fit_transform(y)
        if len(X) != len(codes):
            raise ValidationError(
                f"X has {len(X)} rows but y has {len(codes)} labels"
            )
        self._fit(X, codes)
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> List:
        scores = self.decision_scores(X)
        return self.encoder.inverse_transform(np.argmax(scores, axis=1))

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        """Per-class scores, shape ``(n, n_classes)``; higher is better."""
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} used before fit")
        return self._scores(self._check_X(X))

    def rank(self, X: np.ndarray) -> List[List]:
        """Classes ranked best-first for each row — the MRR input."""
        scores = self.decision_scores(X)
        order = np.argsort(-scores, axis=1, kind="stable")
        return [self.encoder.inverse_transform(row) for row in order]

    @abc.abstractmethod
    def _fit(self, X: np.ndarray, codes: np.ndarray) -> None:
        """Train on encoded labels."""

    @abc.abstractmethod
    def _scores(self, X: np.ndarray) -> np.ndarray:
        """Per-class decision scores for validated input."""

    @staticmethod
    def _check_X(X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-D, got ndim={X.ndim}")
        if not np.isfinite(X).all():
            raise ValidationError("X contains NaN or infinite values")
        return X
