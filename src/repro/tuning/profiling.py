"""Data-profiling meta-features (paper Section A.5, "More Meta-Features").

The paper's feature set (Table 1) reads everything from the Ball-tree to
stay cheap; its future-work section points at data profiling and richer
meta-feature extraction as the next precision lever.  This module provides
that extension with *sampled* statistics so extraction stays near-linear:

* **Hopkins statistic** — the classic clusterability test: compares
  nearest-neighbour distances of uniform probes vs real sample points;
  ~0.5 for uniform data, →1.0 for strongly clustered data;
* **nearest-neighbour distance profile** — mean/std/CV of sampled 1-NN
  distances (tight hot spots → small mean, large CV);
* **feature dispersion** — mean/max variance ratio across dimensions
  (detects dominating axes that favour kd-trees).

``extract_profile_features`` returns a dict compatible with
:class:`~repro.tuning.features.TaskFeatures`; the ``"profile"`` feature set
appends these to the Table 1 groups.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.common.rng import SeedLike, ensure_rng
from repro.common.validation import check_data_matrix
from repro.indexes.base import MetricTree
from repro.indexes.ball_tree import BallTree

PROFILE_FEATURES = (
    "hopkins",
    "nn_dist_mean",
    "nn_dist_cv",
    "variance_ratio",
)


def hopkins_statistic(
    X: np.ndarray,
    *,
    sample_size: int = 50,
    seed: SeedLike = 0,
    tree: Optional[MetricTree] = None,
) -> float:
    """Hopkins clusterability statistic in [0, 1] (0.5 ≈ uniform).

    Uses the Ball-tree's k-NN search for both probe kinds, so the cost is
    O(sample * log n) rather than O(sample * n).
    """
    X = check_data_matrix(X)
    n, d = X.shape
    m = min(sample_size, max(1, n // 2))
    rng = ensure_rng(seed)
    if tree is None:
        tree = BallTree(X, capacity=30)
    lo = X.min(axis=0)
    hi = X.max(axis=0)
    probes = rng.uniform(lo, hi, size=(m, d))
    sample_idx = rng.choice(n, size=m, replace=False)

    u_total = 0.0  # uniform-probe NN distances
    for probe in probes:
        nearest = tree.knn_search(probe, 1)
        u_total += float(np.linalg.norm(X[nearest[0]] - probe))
    w_total = 0.0  # real-point NN distances (2-NN: first hit is itself)
    for i in sample_idx:
        nearest = tree.knn_search(X[int(i)], 2)
        other = nearest[1] if int(nearest[0]) == int(i) else nearest[0]
        w_total += float(np.linalg.norm(X[other] - X[int(i)]))
    denominator = u_total + w_total
    if denominator == 0.0:
        return 0.5  # fully degenerate data: call it "uniform"
    return u_total / denominator


def nn_distance_profile(
    X: np.ndarray,
    *,
    sample_size: int = 100,
    seed: SeedLike = 0,
    tree: Optional[MetricTree] = None,
) -> Dict[str, float]:
    """Mean and coefficient of variation of sampled 1-NN distances."""
    X = check_data_matrix(X)
    n = len(X)
    m = min(sample_size, n)
    rng = ensure_rng(seed)
    if tree is None:
        tree = BallTree(X, capacity=30)
    idx = rng.choice(n, size=m, replace=False)
    dists = np.empty(m)
    for pos, i in enumerate(idx):
        nearest = tree.knn_search(X[int(i)], 2)
        other = nearest[1] if int(nearest[0]) == int(i) else nearest[0]
        dists[pos] = float(np.linalg.norm(X[other] - X[int(i)]))
    mean = float(dists.mean())
    std = float(dists.std())
    # Normalize the mean by the data diameter estimate so the feature is
    # scale-free; CV is scale-free already.
    extent = float(np.linalg.norm(X.max(axis=0) - X.min(axis=0)))
    return {
        "nn_dist_mean": mean / extent if extent > 0 else 0.0,
        "nn_dist_cv": std / mean if mean > 0 else 0.0,
    }


def variance_ratio(X: np.ndarray) -> float:
    """Max/mean per-dimension variance (1.0 = perfectly isotropic)."""
    X = check_data_matrix(X)
    variances = X.var(axis=0)
    mean = float(variances.mean())
    if mean == 0.0:
        return 1.0
    return float(variances.max()) / mean


def extract_profile_features(
    X: np.ndarray,
    *,
    sample_size: int = 50,
    seed: SeedLike = 0,
    tree: Optional[MetricTree] = None,
) -> Dict[str, float]:
    """All profiling features as a flat dict (see module docstring)."""
    X = check_data_matrix(X)
    if tree is None:
        tree = BallTree(X, capacity=30)
    features: Dict[str, float] = {
        "hopkins": hopkins_statistic(X, sample_size=sample_size, seed=seed, tree=tree),
        "variance_ratio": variance_ratio(X),
    }
    features.update(
        nn_distance_profile(X, sample_size=2 * sample_size, seed=seed, tree=tree)
    )
    return features
