"""Ground-truth generation for UTune (Section 6.1, Algorithm 2).

For every clustering task (dataset, k) the generator measures candidate
knob configurations and writes two ground truths:

* ``g1`` — the ranking of *bound* configurations (sequential methods),
  fastest first;
* ``g2`` — the ranking of *index* configurations
  (``none`` / ``pure`` / ``single`` / ``multiple``), where ``none`` is
  scored with the best sequential method's time.

Two regimes reproduce the paper's Figure 15 comparison:

``selective=True`` (Algorithm 2)
    Only the five leaderboard methods are timed, and the UniK traversals
    (``single``/``multiple``) are timed only when the pure index method
    already beats the best sequential method.  Untested configurations are
    simply absent from the ranking.
``selective=False``
    Every sequential method and every index mode is timed.

Each record carries the Table 1 meta-features so the records feed directly
into model training.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.knobs import BOUND_KNOBS, SELECTION_POOL, KnobConfig
from repro.eval.harness import compare_algorithms
from repro.indexes.ball_tree import BallTree
from repro.tuning.features import TaskFeatures, extract_features

#: every sequential bound knob except plain Lloyd and the uncompetitive
#: Search method (excluded by the paper's own selective-running rationale)
FULL_BOUND_POOL = tuple(b for b in BOUND_KNOBS if b not in ("none", "search"))

INDEX_OPTIONS = ("none", "pure", "single", "multiple")


@dataclass
class GroundTruthRecord:
    """One labeled training example: task features plus both rankings."""

    dataset: str
    n: int
    k: int
    d: int
    features: Dict[str, float]
    bound_ranking: List[str]
    index_ranking: List[str]
    timings: Dict[str, float] = field(default_factory=dict)
    generation_time: float = 0.0

    @property
    def best_bound(self) -> str:
        return self.bound_ranking[0]

    @property
    def best_index(self) -> str:
        return self.index_ranking[0]

    def task_features(self) -> TaskFeatures:
        return TaskFeatures(self.features)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "dataset": self.dataset,
            "n": self.n,
            "k": self.k,
            "d": self.d,
            "features": self.features,
            "bound_ranking": self.bound_ranking,
            "index_ranking": self.index_ranking,
            "timings": self.timings,
            "generation_time": self.generation_time,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "GroundTruthRecord":
        return cls(
            dataset=record["dataset"],
            n=int(record["n"]),
            k=int(record["k"]),
            d=int(record["d"]),
            features=dict(record["features"]),
            bound_ranking=list(record["bound_ranking"]),
            index_ranking=list(record["index_ranking"]),
            timings=dict(record.get("timings", {})),
            generation_time=float(record.get("generation_time", 0.0)),
        )


def label_task(
    name: str,
    X: np.ndarray,
    k: int,
    *,
    selective: bool = True,
    repeats: int = 1,
    max_iter: int = 6,
    seed: int = 0,
    capacity: int = 30,
    metric: str = "total_time",
    profile: bool = False,
) -> GroundTruthRecord:
    """Measure one task and produce its ground-truth record (Algorithm 2).

    ``metric`` selects the ranking criterion: ``"total_time"`` (the paper's
    wall-clock protocol) or ``"modeled_cost"`` (the hardware-independent
    cost model, useful when the Python substrate's constant factors would
    bias the ranking — see EXPERIMENTS.md).
    """
    begin = time.perf_counter()
    X = np.asarray(X, dtype=np.float64)
    tree = BallTree(X, capacity=capacity)
    features = extract_features(X, k, tree=tree, profile=profile)

    bound_pool: Sequence[str] = SELECTION_POOL if selective else FULL_BOUND_POOL
    bound_records = compare_algorithms(
        [KnobConfig(bound=b, index="none") for b in bound_pool],
        X, k, repeats=repeats, max_iter=max_iter, seed=seed,
    )
    timings = {record.algorithm: getattr(record, metric) for record in bound_records}
    bound_ranking = sorted(bound_pool, key=lambda b: timings[b])
    best_sequential_time = timings[bound_ranking[0]]

    # Index part (g2): the "none" option is scored by the best sequential.
    index_timings: Dict[str, float] = {"none": best_sequential_time}
    pure_record = compare_algorithms(
        [KnobConfig(index="pure")], X, k,
        repeats=repeats, max_iter=max_iter, seed=seed,
    )[0]
    index_timings["pure"] = getattr(pure_record, metric)
    test_traversals = (not selective) or (index_timings["pure"] < best_sequential_time)
    if test_traversals:
        for traversal in ("single", "multiple"):
            record = compare_algorithms(
                [KnobConfig(index=traversal)], X, k,
                repeats=repeats, max_iter=max_iter, seed=seed,
            )[0]
            index_timings[f"{traversal}"] = getattr(record, metric)
    index_ranking = sorted(index_timings, key=index_timings.get)
    timings.update({f"index:{name_}": t for name_, t in index_timings.items()})

    return GroundTruthRecord(
        dataset=name,
        n=len(X),
        k=int(k),
        d=X.shape[1],
        features=features.values,
        bound_ranking=list(bound_ranking),
        index_ranking=list(index_ranking),
        timings=timings,
        generation_time=time.perf_counter() - begin,
    )


def generate_ground_truth(
    tasks: Iterable[Tuple[str, np.ndarray, int]],
    *,
    selective: bool = True,
    repeats: int = 1,
    max_iter: int = 6,
    seed: int = 0,
    metric: str = "total_time",
    profile: bool = False,
) -> List[GroundTruthRecord]:
    """Label a collection of ``(name, X, k)`` tasks."""
    return [
        label_task(
            name, X, k,
            selective=selective, repeats=repeats, max_iter=max_iter, seed=seed,
            metric=metric, profile=profile,
        )
        for name, X, k in tasks
    ]


def records_to_training_arrays(
    records: Sequence[GroundTruthRecord], feature_set: str = "leaf"
) -> Tuple[np.ndarray, List[str], List[str]]:
    """Feature matrix plus best-bound and best-index label lists."""
    X = np.vstack(
        [record.task_features().vector(feature_set) for record in records]
    )
    return X, [r.best_bound for r in records], [r.best_index for r in records]
