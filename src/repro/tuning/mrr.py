"""Mean reciprocal rank (Equation 13).

For each test record the ground truth is a *ranking* of configurations
(fastest first); the model emits one prediction; the score contribution is
``1 / rank`` of that prediction inside the ground-truth ranking.  A
prediction absent from the ranking contributes 0 (rank = infinity).
"""

from __future__ import annotations

from typing import Hashable, Sequence


def reciprocal_rank(ranking: Sequence[Hashable], prediction: Hashable) -> float:
    """``1 / rank`` of ``prediction`` in ``ranking`` (1-based); 0 if absent."""
    for position, item in enumerate(ranking, start=1):
        if item == prediction:
            return 1.0 / position
    return 0.0


def mean_reciprocal_rank(
    rankings: Sequence[Sequence[Hashable]], predictions: Sequence[Hashable]
) -> float:
    """MRR over a test set of (ground-truth ranking, prediction) pairs."""
    if len(rankings) != len(predictions):
        raise ValueError(
            f"{len(rankings)} rankings but {len(predictions)} predictions"
        )
    if not rankings:
        return 0.0
    total = sum(
        reciprocal_rank(ranking, prediction)
        for ranking, prediction in zip(rankings, predictions)
    )
    return total / len(rankings)
