"""Configuration-knob discovery (paper Section A.5).

The paper notes that the tested algorithms cover "only a tiny proportion"
of the knob space Theta and that new combinations "will form new algorithms
that can be potentially fast for a certain group of clustering tasks".
This module searches that space:

* :func:`enumerate_configurations` — the full cross product of bound knobs,
  index traversals, capacities and the block filter;
* :func:`random_search` — evaluate a random subset on a task and return
  configurations ranked by the chosen metric;
* :func:`exhaustive_search` — small-space variant for careful studies.

Found configurations are plain :class:`~repro.core.knobs.KnobConfig`
values, so they feed straight into UTune's ground-truth pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.common.rng import SeedLike, ensure_rng
from repro.core.knobs import SELECTION_POOL, KnobConfig
from repro.eval.harness import run_algorithm


@dataclass(frozen=True)
class SearchResult:
    """One evaluated configuration."""

    config: KnobConfig
    metric_value: float
    total_time: float
    pruning_ratio: float

    def as_dict(self) -> dict:
        return {
            "label": self.config.label,
            "bound": self.config.bound,
            "index": self.config.index,
            "capacity": self.config.capacity,
            "block_filter": self.config.block_filter,
            "metric_value": self.metric_value,
            "total_time": self.total_time,
            "pruning_ratio": self.pruning_ratio,
        }


def enumerate_configurations(
    *,
    bounds: Sequence[str] = SELECTION_POOL,
    indexes: Sequence[str] = ("none", "pure", "single", "multiple"),
    capacities: Sequence[int] = (30,),
    block_filters: Sequence[bool] = (False, True),
) -> List[KnobConfig]:
    """Cross product of knob values, with incoherent combos removed.

    The block filter only matters inside UniK traversals, and the bound
    knob is ignored by pure-index runs, so those duplicates are dropped.
    """
    configs: List[KnobConfig] = []
    seen = set()
    for index in indexes:
        for capacity in capacities:
            for block in block_filters:
                if index in ("none", "pure") and block:
                    continue  # the filter has no effect there
                for bound in bounds:
                    if index == "pure":
                        key = (index, capacity)  # bound irrelevant
                    else:
                        key = (bound, index, capacity, block)
                    if key in seen:
                        continue
                    seen.add(key)
                    configs.append(
                        KnobConfig(
                            bound=bound, index=index,
                            capacity=capacity, block_filter=block,
                        )
                    )
    return configs


def _evaluate(
    config: KnobConfig,
    X: np.ndarray,
    k: int,
    metric: str,
    max_iter: int,
    repeats: int,
    seed: int,
) -> SearchResult:
    record = run_algorithm(
        config, X, k, repeats=repeats, max_iter=max_iter, seed=seed
    )
    return SearchResult(
        config=config,
        metric_value=float(getattr(record, metric)),
        total_time=record.total_time,
        pruning_ratio=record.pruning_ratio,
    )


def exhaustive_search(
    X: np.ndarray,
    k: int,
    configs: Optional[Iterable[KnobConfig]] = None,
    *,
    metric: str = "modeled_cost",
    max_iter: int = 6,
    repeats: int = 1,
    seed: int = 0,
) -> List[SearchResult]:
    """Evaluate every configuration; return results best-first."""
    configs = list(configs) if configs is not None else enumerate_configurations()
    results = [
        _evaluate(config, X, k, metric, max_iter, repeats, seed)
        for config in configs
    ]
    return sorted(results, key=lambda r: r.metric_value)


def random_search(
    X: np.ndarray,
    k: int,
    *,
    budget: int = 10,
    metric: str = "modeled_cost",
    max_iter: int = 6,
    repeats: int = 1,
    seed: SeedLike = 0,
    capacities: Sequence[int] = (10, 30, 60, 120),
) -> List[SearchResult]:
    """Sample ``budget`` configurations from the extended space.

    The extended space varies capacity and the block filter in addition to
    the bound/index knobs — combinations the paper's evaluation never ran.
    """
    rng = ensure_rng(seed)
    space = enumerate_configurations(capacities=tuple(capacities))
    budget = min(budget, len(space))
    chosen = rng.choice(len(space), size=budget, replace=False)
    results = [
        _evaluate(space[int(idx)], X, k, metric, max_iter, repeats, 0)
        for idx in chosen
    ]
    return sorted(results, key=lambda r: r.metric_value)
