"""UTune: automatic algorithm selection for fast k-means (Section 6).

Pipeline: :func:`generate_ground_truth` labels clustering tasks by timing
candidate knob configurations (full or selective running, Algorithm 2);
:class:`UTune` trains two classifiers on Table 1 meta-features and predicts
a :class:`~repro.core.knobs.KnobConfig` for a new task; accuracy is scored
by mean reciprocal rank (Equation 13) against the rule-based BDT baseline.
"""

from repro.tuning.bdt import bdt_predict, bdt_predict_labels
from repro.tuning.features import (
    FEATURE_SETS,
    TaskFeatures,
    extract_features,
    feature_names,
)
from repro.tuning.knob_search import (
    SearchResult,
    enumerate_configurations,
    exhaustive_search,
    random_search,
)
from repro.tuning.mrr import mean_reciprocal_rank, reciprocal_rank
from repro.tuning.profiling import (
    extract_profile_features,
    hopkins_statistic,
    nn_distance_profile,
    variance_ratio,
)
from repro.tuning.training import (
    FULL_BOUND_POOL,
    INDEX_OPTIONS,
    GroundTruthRecord,
    generate_ground_truth,
    label_task,
    records_to_training_arrays,
)
from repro.tuning.utune import UTune, evaluate_bdt

__all__ = [
    "FEATURE_SETS",
    "FULL_BOUND_POOL",
    "INDEX_OPTIONS",
    "GroundTruthRecord",
    "TaskFeatures",
    "UTune",
    "bdt_predict",
    "bdt_predict_labels",
    "evaluate_bdt",
    "extract_features",
    "feature_names",
    "generate_ground_truth",
    "label_task",
    "mean_reciprocal_rank",
    "reciprocal_rank",
    "records_to_training_arrays",
    "SearchResult",
    "enumerate_configurations",
    "exhaustive_search",
    "random_search",
    "extract_profile_features",
    "hopkins_statistic",
    "nn_distance_profile",
    "variance_ratio",
]
