"""UTune — learned algorithm selection (Section 6, Figure 6).

Two classifiers are trained on the ground-truth records: one predicts the
best *bound* configuration, the other the best *index* configuration
(Section 6.2's two-part prediction).  The final knob configuration combines
them: a ``none`` index prediction yields the predicted sequential method;
``pure`` yields index filtering; ``single``/``multiple`` yield the UniK
traversals.

For a new clustering task, features are extracted from a freshly built (or
supplied) Ball-tree and pushed through both models.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.common.exceptions import ConfigurationError, NotFittedError
from repro.core.knobs import KnobConfig
from repro.indexes.base import MetricTree
from repro.tuning.features import TaskFeatures, extract_features
from repro.tuning.models import make_model
from repro.tuning.mrr import mean_reciprocal_rank
from repro.tuning.training import GroundTruthRecord, records_to_training_arrays


class UTune:
    """Meta-learning selector over the UniK knob space."""

    def __init__(
        self,
        model: str = "dt",
        feature_set: str = "leaf",
        **model_kwargs,
    ) -> None:
        self.model_name = model
        self.feature_set = feature_set
        self.model_kwargs = model_kwargs
        self.bound_model = None
        self.index_model = None
        self.train_time: float = 0.0

    # ------------------------------------------------------------------
    # Training.
    # ------------------------------------------------------------------

    def fit(self, records: Sequence[GroundTruthRecord]) -> "UTune":
        """Train both knob models from ground-truth records."""
        if not records:
            raise ConfigurationError("cannot train UTune on zero records")
        X, bound_labels, index_labels = records_to_training_arrays(
            records, self.feature_set
        )
        begin = time.perf_counter()
        if self.model_name == "ranker":
            # Rank-aware training (Section A.5): learn from full rankings
            # with a pairwise loss instead of top-1 classification.
            from repro.tuning.models.ranker import PairwiseRanker

            self.bound_model = PairwiseRanker(**self.model_kwargs).fit(
                X, [record.bound_ranking for record in records]
            )
            self.index_model = PairwiseRanker(**self.model_kwargs).fit(
                X, [record.index_ranking for record in records]
            )
        else:
            self.bound_model = make_model(self.model_name, **self.model_kwargs)
            self.bound_model.fit(X, bound_labels)
            self.index_model = make_model(self.model_name, **self.model_kwargs)
            self.index_model.fit(X, index_labels)
        self.train_time = time.perf_counter() - begin
        return self

    # ------------------------------------------------------------------
    # Prediction.
    # ------------------------------------------------------------------

    def predict_labels(self, features: TaskFeatures) -> Dict[str, str]:
        """Predict the (bound, index) knob labels for one task."""
        if self.bound_model is None or self.index_model is None:
            raise NotFittedError("UTune used before fit")
        vector = features.vector(self.feature_set).reshape(1, -1)
        return {
            "bound": self.bound_model.predict(vector)[0],
            "index": self.index_model.predict(vector)[0],
        }

    def predict_config(
        self,
        X: np.ndarray,
        k: int,
        *,
        tree: Optional[MetricTree] = None,
        capacity: int = 30,
    ) -> KnobConfig:
        """Predict the knob configuration for clustering ``X`` into ``k``."""
        features = extract_features(
            X, k, tree=tree, capacity=capacity,
            profile=(self.feature_set == "profile"),
        )
        labels = self.predict_labels(features)
        if labels["index"] == "none":
            return KnobConfig(bound=labels["bound"], index="none")
        if labels["index"] == "pure":
            return KnobConfig(index="pure", capacity=capacity)
        return KnobConfig(
            bound=labels["bound"], index=labels["index"], capacity=capacity
        )

    # ------------------------------------------------------------------
    # Evaluation (Table 5's MRR protocol).
    # ------------------------------------------------------------------

    def evaluate(self, records: Sequence[GroundTruthRecord]) -> Dict[str, float]:
        """Bound@MRR and Index@MRR on held-out records, plus prediction time."""
        if self.bound_model is None or self.index_model is None:
            raise NotFittedError("UTune used before fit")
        X = np.vstack(
            [record.task_features().vector(self.feature_set) for record in records]
        )
        begin = time.perf_counter()
        bound_predictions = self.bound_model.predict(X)
        index_predictions = self.index_model.predict(X)
        predict_time = time.perf_counter() - begin
        return {
            "bound_mrr": mean_reciprocal_rank(
                [record.bound_ranking for record in records], bound_predictions
            ),
            "index_mrr": mean_reciprocal_rank(
                [record.index_ranking for record in records], index_predictions
            ),
            "predict_time": predict_time / max(1, len(records)),
            "train_time": self.train_time,
        }


def evaluate_bdt(records: Sequence[GroundTruthRecord]) -> Dict[str, float]:
    """MRR of the rule-based BDT baseline on the same records."""
    from repro.tuning.bdt import bdt_predict_labels

    bound_predictions: List[str] = []
    index_predictions: List[str] = []
    for record in records:
        bound, index = bdt_predict_labels(record.n, record.k, record.d)
        bound_predictions.append(bound)
        index_predictions.append(index)
    return {
        "bound_mrr": mean_reciprocal_rank(
            [record.bound_ranking for record in records], bound_predictions
        ),
        "index_mrr": mean_reciprocal_rank(
            [record.index_ranking for record in records], index_predictions
        ),
    }
