"""Meta-feature extraction (paper Table 1).

Three cumulative feature groups describe a clustering task:

* **basic** — ``n``, ``k``, ``d``;
* **tree** — Ball-tree shape: height (normalized by ``log2(n/f)``),
  internal/leaf node counts (normalized by ``n/f``), and the tree imbalance
  (mean/std of leaf heights, same normalizer);
* **leaf** — leaf geometry: mean/std of leaf radii and parent distances
  (normalized by the root radius) and of leaf occupancy (normalized by the
  capacity ``f``).

The index construction "conducts a more in-depth scanning of the data and
reveals whether the data assemble well" (Section 6.1) — these features are
the signal UTune reads from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import math

import numpy as np

from repro.common.exceptions import ConfigurationError
from repro.indexes.ball_tree import BallTree
from repro.indexes.base import MetricTree

FEATURE_SETS = ("basic", "tree", "leaf", "profile")

BASIC_FEATURES = ("n", "k", "d")
TREE_FEATURES = ("tree_height", "n_internal", "n_leaves", "height_mean", "height_std")
LEAF_FEATURES = (
    "leaf_radius_mean",
    "leaf_radius_std",
    "leaf_psi_mean",
    "leaf_psi_std",
    "leaf_size_mean",
    "leaf_size_std",
)
#: sampled data-profiling features (Section A.5 extension); see
#: :mod:`repro.tuning.profiling`
PROFILE_FEATURES = (
    "hopkins",
    "nn_dist_mean",
    "nn_dist_cv",
    "variance_ratio",
)


def feature_names(feature_set: str = "leaf") -> Tuple[str, ...]:
    """Names of the features in a cumulative feature set."""
    if feature_set not in FEATURE_SETS:
        raise ConfigurationError(
            f"feature_set must be one of {FEATURE_SETS}, got {feature_set!r}"
        )
    names: Tuple[str, ...] = BASIC_FEATURES
    if feature_set in ("tree", "leaf", "profile"):
        names = names + TREE_FEATURES
    if feature_set in ("leaf", "profile"):
        names = names + LEAF_FEATURES
    if feature_set == "profile":
        names = names + PROFILE_FEATURES
    return names


@dataclass(frozen=True)
class TaskFeatures:
    """Full feature dictionary of one clustering task."""

    values: Dict[str, float]

    def vector(self, feature_set: str = "leaf") -> np.ndarray:
        names = feature_names(feature_set)
        missing = [name for name in names if name not in self.values]
        if missing:
            raise ConfigurationError(
                f"features {missing} not extracted; pass profile=True to "
                "extract_features for the 'profile' set"
            )
        return np.asarray([self.values[name] for name in names])


def extract_features(
    X: np.ndarray,
    k: int,
    *,
    tree: Optional[MetricTree] = None,
    capacity: int = 30,
    profile: bool = False,
    profile_seed: int = 0,
) -> TaskFeatures:
    """Extract all Table 1 features for clustering ``X`` into ``k`` clusters.

    A Ball-tree is built when ``tree`` is not supplied; pass a prebuilt tree
    to reuse it (UTune and UniK share one build).  ``profile=True``
    additionally extracts the sampled data-profiling features of
    :mod:`repro.tuning.profiling` (the Section A.5 extension), costing a
    few hundred k-NN queries.
    """
    X = np.asarray(X, dtype=np.float64)
    n, d = X.shape
    if tree is None:
        tree = BallTree(X, capacity=capacity)
    stats = tree.stats()
    f = float(tree.capacity)
    # Normalizers from Table 1; guard degenerate trees (tiny n).
    log_norm = max(1.0, math.log2(max(2.0, n / f)))
    count_norm = max(1.0, n / f)
    radius_norm = stats.root_radius if stats.root_radius > 0 else 1.0
    values: Dict[str, float] = {
        "n": float(n),
        "k": float(k),
        "d": float(d),
        "tree_height": stats.height / log_norm,
        "n_internal": stats.n_internal / count_norm,
        "n_leaves": stats.n_leaves / count_norm,
        "height_mean": stats.leaf_height_mean / log_norm,
        "height_std": stats.leaf_height_std / log_norm,
        "leaf_radius_mean": stats.leaf_radius_mean / radius_norm,
        "leaf_radius_std": stats.leaf_radius_std / radius_norm,
        "leaf_psi_mean": stats.leaf_psi_mean / radius_norm,
        "leaf_psi_std": stats.leaf_psi_std / radius_norm,
        "leaf_size_mean": stats.leaf_size_mean / f,
        "leaf_size_std": stats.leaf_size_std / f,
    }
    if profile:
        from repro.tuning.profiling import extract_profile_features

        values.update(
            extract_profile_features(X, tree=tree, seed=profile_seed)
        )
    return TaskFeatures(values)
