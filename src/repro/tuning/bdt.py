"""BDT — the rule-based basic decision tree baseline (paper Figure 5).

Encodes the folklore selection rules the paper sets out to beat:

* low-dimensional data (``d < 20``) → use the index-based method;
* otherwise big ``k`` (``k >= 50``) → Yinyang;
* otherwise → Hamerly (the paper notes Yinyang with ``t = 1`` *is* Hamerly
  for small ``k``).

UTune's learned models are evaluated against this baseline in Table 5,
where BDT lands around 0.4 MRR.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.knobs import KnobConfig


def bdt_predict(n: int, k: int, d: int) -> KnobConfig:
    """Predict a knob configuration from the folklore rules."""
    if d < 20:
        return KnobConfig(index="pure")
    if k >= 50:
        return KnobConfig(bound="yinyang", index="none")
    return KnobConfig(bound="hamerly", index="none")


def bdt_predict_labels(n: int, k: int, d: int) -> Tuple[str, str]:
    """The (bound, index) knob labels of the BDT prediction."""
    config = bdt_predict(n, k, d)
    return config.bound, config.index
