"""Trajectory recording and divergence location.

Exactness means two algorithms agree not only on the final clustering but
on the *whole trajectory* (labels and centroids after every iteration).
These helpers record trajectories and pinpoint the first iteration at which
two runs diverge — the debugging tool behind the exactness test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.base import KMeansAlgorithm


@dataclass
class Trajectory:
    """Per-iteration snapshots of one run."""

    algorithm: str
    labels: List[np.ndarray] = field(default_factory=list)
    centroids: List[np.ndarray] = field(default_factory=list)

    @property
    def n_iter(self) -> int:
        return len(self.labels)


@dataclass(frozen=True)
class TrajectoryDivergence:
    """Description of the first point where two trajectories differ."""

    iteration: int
    kind: str  # "labels" | "centroids" | "length"
    detail: str


def record_trajectory(
    algorithm: KMeansAlgorithm,
    X: np.ndarray,
    k: int,
    *,
    initial_centroids: Optional[np.ndarray] = None,
    max_iter: int = 30,
    seed: int = 0,
) -> Trajectory:
    """Run ``algorithm`` capturing labels/centroids after every iteration.

    Hooks ``_refine`` (called exactly once per iteration, after the
    assignment) so no algorithm cooperation is needed.
    """
    trajectory = Trajectory(algorithm=algorithm.name)
    original = algorithm._refine

    def hooked(iteration, previous_labels):
        new_centroids = original(iteration, previous_labels)
        trajectory.labels.append(algorithm._labels.copy())
        trajectory.centroids.append(new_centroids.copy())
        return new_centroids

    algorithm._refine = hooked  # type: ignore[method-assign]
    try:
        algorithm.fit(
            X, k, initial_centroids=initial_centroids,
            max_iter=max_iter, seed=seed,
        )
    finally:
        algorithm._refine = original  # type: ignore[method-assign]
    return trajectory


def compare_trajectories(
    a: Trajectory,
    b: Trajectory,
    *,
    centroid_atol: float = 1e-8,
) -> Optional[TrajectoryDivergence]:
    """First divergence between two trajectories, or ``None`` if identical.

    Length differences beyond the shared prefix only count as divergence
    when the shared prefix itself already differs is ruled out — a shorter
    run that matches the longer run's prefix and simply converged earlier
    is reported as a ``length`` divergence.
    """
    shared = min(a.n_iter, b.n_iter)
    for t in range(shared):
        if not np.array_equal(a.labels[t], b.labels[t]):
            mismatches = int(np.count_nonzero(a.labels[t] != b.labels[t]))
            return TrajectoryDivergence(
                t, "labels", f"{mismatches} points assigned differently"
            )
        if not np.allclose(a.centroids[t], b.centroids[t], atol=centroid_atol):
            gap = float(np.abs(a.centroids[t] - b.centroids[t]).max())
            return TrajectoryDivergence(
                t, "centroids", f"max centroid gap {gap:.3g}"
            )
    if a.n_iter != b.n_iter:
        return TrajectoryDivergence(
            shared, "length", f"{a.algorithm}: {a.n_iter} iters vs "
            f"{b.algorithm}: {b.n_iter} iters"
        )
    return None
