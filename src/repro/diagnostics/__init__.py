"""Diagnostics: bound audits and trajectory comparison.

Tools the evaluation framework uses to *prove* its central guarantee — that
every accelerated method is an exact Lloyd acceleration:

* :mod:`repro.diagnostics.bound_audit` re-derives every stored bound from
  scratch after each iteration and reports violations (a soundness oracle
  for the triangle-inequality machinery);
* :mod:`repro.diagnostics.trajectory` records per-iteration centroids and
  labels and locates the first divergence between two algorithms' runs.
"""

from repro.diagnostics.bound_audit import BoundAudit, audit_algorithm
from repro.diagnostics.trajectory import (
    Trajectory,
    TrajectoryDivergence,
    compare_trajectories,
    record_trajectory,
)

__all__ = [
    "BoundAudit",
    "audit_algorithm",
    "Trajectory",
    "TrajectoryDivergence",
    "compare_trajectories",
    "record_trajectory",
]
