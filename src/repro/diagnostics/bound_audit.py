"""Bound auditing: a soundness oracle for the pruning bounds.

After every drift update (the moment stored bounds claim validity against
the *new* centroids), the audit recomputes all point-centroid distances by
brute force and checks each algorithm family's invariants:

* upper bounds: ``ub(i) >= d(x_i, c_a(i))``;
* Elkan:    ``lb(i, j) <= d(x_i, c_j)`` for every centroid;
* Drift:    the same through the lazy shift, ``stored - cum_drift(j)``;
* Hamerly (and Annular/Exponion/Vector): ``lb(i) <= min_{j != a} d(x_i, c_j)``;
* Annular additionally: ``ub2(i) >= d(x_i, c_second(i))``;
* Yinyang/Regroup: ``glb(i, g) <= min_{j in g, j != a(i)} d(x_i, c_j)``
  (vacuous when the group's only member is the assigned centroid);
* Drake: ``lbs(i, z) <= d(x_i, c_j)`` for every centroid outside
  ``{a} ∪ order[i, :z]``.

A violation is recorded, not raised, so tests can assert on the collected
list and debugging sessions can inspect every offence at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.base import KMeansAlgorithm


@dataclass(frozen=True)
class BoundViolation:
    """One audited invariant failure."""

    iteration: int
    kind: str
    point: int
    detail: str


@dataclass
class BoundAudit:
    """Collected audit state for one run."""

    tolerance: float = 1e-7
    iterations_audited: int = 0
    violations: List[BoundViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    # ------------------------------------------------------------------

    def check(self, algorithm: KMeansAlgorithm, iteration: int) -> None:
        """Audit ``algorithm``'s stored bounds against brute force."""
        X = algorithm.X
        centroids = algorithm._centroids
        labels = algorithm._labels
        dists = np.linalg.norm(X[:, None, :] - centroids[None, :, :], axis=2)
        scale = float(dists.max()) if dists.size else 1.0
        tol = self.tolerance * (1.0 + scale)
        self.iterations_audited += 1

        ub = getattr(algorithm, "_ub", None)
        if ub is not None:
            own = dists[np.arange(len(X)), labels]
            for i in np.flatnonzero(ub + tol < own):
                self._record(iteration, "ub", int(i),
                             f"ub={ub[i]:.6g} < d_a={own[i]:.6g}")

        if hasattr(algorithm, "_lb_shifted"):
            effective = algorithm._lb_shifted - algorithm._cum_drift[None, :]
            bad = effective > dists + tol
            for i, j in zip(*np.nonzero(bad)):
                self._record(iteration, "drift-lb", int(i),
                             f"lb[{i},{j}]={effective[i, j]:.6g} > "
                             f"d={dists[i, j]:.6g}")
            return

        lb = getattr(algorithm, "_lb", None)
        if lb is not None and lb.ndim == 2:  # Elkan
            bad = lb > dists + tol
            for i, j in zip(*np.nonzero(bad)):
                self._record(iteration, "elkan-lb", int(i),
                             f"lb[{i},{j}]={lb[i, j]:.6g} > d={dists[i, j]:.6g}")
        elif lb is not None:  # Hamerly family
            masked = dists.copy()
            masked[np.arange(len(X)), labels] = np.inf
            second = masked.min(axis=1)
            for i in np.flatnonzero(lb > second + tol):
                self._record(iteration, "global-lb", int(i),
                             f"lb={lb[i]:.6g} > second={second[i]:.6g}")

        second_idx = getattr(algorithm, "_second", None)
        ub2 = getattr(algorithm, "_ub2", None)
        if second_idx is not None and ub2 is not None:
            toward = dists[np.arange(len(X)), second_idx]
            for i in np.flatnonzero(ub2 + tol < toward):
                self._record(iteration, "annular-ub2", int(i),
                             f"ub2={ub2[i]:.6g} < d={toward[i]:.6g}")

        glb = getattr(algorithm, "_glb", None)
        if glb is not None and getattr(algorithm, "groups", None) is not None:
            for g, members in enumerate(algorithm.groups.members):
                for i in range(len(X)):
                    others = members[members != labels[i]]
                    if len(others) == 0:
                        continue  # vacuous bound
                    true_min = float(dists[i, others].min())
                    if glb[i, g] > true_min + tol:
                        self._record(
                            iteration, "group-lb", i,
                            f"glb[{i},{g}]={glb[i, g]:.6g} > min={true_min:.6g}",
                        )

        lbs = getattr(algorithm, "_lbs", None)
        order = getattr(algorithm, "_order", None)
        if lbs is not None and order is not None:  # Drake
            k = centroids.shape[0]
            for i in range(len(X)):
                excluded = {int(labels[i])}
                for z in range(lbs.shape[1]):
                    outside = [j for j in range(k) if j not in excluded]
                    if outside:
                        true_min = float(dists[i, outside].min())
                        if lbs[i, z] > true_min + tol:
                            self._record(
                                iteration, "drake-lb", i,
                                f"lbs[{i},{z}]={lbs[i, z]:.6g} > "
                                f"min(rank>={z})={true_min:.6g}",
                            )
                    excluded.add(int(order[i, z]))

    def _record(self, iteration: int, kind: str, point: int, detail: str) -> None:
        self.violations.append(BoundViolation(iteration, kind, point, detail))


def audit_algorithm(
    algorithm: KMeansAlgorithm,
    X: np.ndarray,
    k: int,
    *,
    max_iter: int = 15,
    seed: int = 0,
    initial_centroids: Optional[np.ndarray] = None,
    tolerance: float = 1e-7,
) -> BoundAudit:
    """Run ``algorithm.fit`` with per-iteration bound audits attached.

    The audit hooks ``_update_bounds`` — the exact moment stored bounds
    claim validity against the freshly refined centroids.
    """
    audit = BoundAudit(tolerance=tolerance)
    original = algorithm._update_bounds
    state = {"iteration": 0}

    def hooked(drifts):
        original(drifts)
        state["iteration"] += 1
        audit.check(algorithm, state["iteration"])

    algorithm._update_bounds = hooked  # type: ignore[method-assign]
    try:
        algorithm.fit(
            X, k, max_iter=max_iter, seed=seed,
            initial_centroids=initial_centroids,
        )
    finally:
        algorithm._update_bounds = original  # type: ignore[method-assign]
    return audit
