"""The :class:`Finding` record emitted by every analysis rule."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Tuple


def statement_content_hash(snippet: str) -> str:
    """Whitespace-insensitive content hash of a flagged statement.

    The baseline (and SARIF's ``partialFingerprints``) key findings by
    ``(rule, path, hash-of-statement)`` rather than line numbers, so
    unrelated edits above an offender — or a re-indent of the offender
    itself — neither resurrect nor orphan its entry.
    """
    normalized = "".join(snippet.split())
    return hashlib.sha256(normalized.encode()).hexdigest()[:16]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is stored repo-relative (posix separators) so findings are
    stable across machines; ``snippet`` is the stripped source line whose
    content hash is the location-insensitive identity used by the baseline
    (line numbers drift under unrelated edits, the offending code itself
    rarely does).
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    snippet: str = ""

    @property
    def content_hash(self) -> str:
        return statement_content_hash(self.snippet)

    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used to match this finding against baseline entries:
        ``(rule_id, path, content-hash of the flagged statement)``."""
        return (self.rule_id, self.path, self.content_hash)

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "snippet": self.snippet,
        }

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
