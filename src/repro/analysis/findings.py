"""The :class:`Finding` record emitted by every analysis rule."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is stored repo-relative (posix separators) so findings are
    stable across machines; ``snippet`` is the stripped source line, which
    doubles as the location-insensitive identity used by the baseline (line
    numbers drift under unrelated edits, the offending code itself rarely
    does).
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    snippet: str = ""

    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used to match this finding against baseline entries."""
        return (self.path, self.rule_id, self.snippet)

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "snippet": self.snippet,
        }

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
