"""Repo-specific static analysis: the instrumentation/determinism linter.

The paper's evaluation is only as trustworthy as its counters (Section 7.1 /
Table 3), and the counters are only as trustworthy as the discipline that
every hot path computes distances through the instrumented kernels in
:mod:`repro.common.distance` and draws randomness through
:mod:`repro.common.rng`.  This package enforces those contracts with a small
AST-visitor framework plus a rule set encoding the repo's conventions:

========  ============================  ==================================
rule id   name                          contract enforced
========  ============================  ==================================
R001      uninstrumented-distance       distances go through counted kernels
R002      global-rng                    randomness is explicitly seeded
R003      counter-discipline            counter-taking code charges accesses
R004      float-equality                pruning never compares floats with ==
R005      mutable-default-arg           no shared mutable default arguments
R006      no-swallowed-exception        failures are recorded, never eaten
R007      parallel-safety               pool-dispatched callables are pickle-
                                        safe and free of global mutation
R008      backend-purity                backend-routed modules reach distance
                                        math only via counted kernels
R009      rng-provenance                RNG use derives from seeded Generator
                                        parameters, never acquired mid-call
R010      transitive-counter-discipline counter-taking code never calls
                                        helpers with uncharged array reads
R011      accumulation-order-stability  merge paths feeding cluster sums
                                        avoid unordered float reductions
========  ============================  ==================================

R001–R006 are per-module rules; R007–R011 are *project rules* that run
over the whole-tree import graph, conservative call graph, and inferred
effect table (:mod:`repro.analysis.graph`, :mod:`repro.analysis.effects`,
:mod:`repro.analysis.interprocedural`).

Findings can be silenced inline with ``# repro: ignore[R001]`` (with an
explanatory comment) or grandfathered in ``analysis_baseline.json``.  See
``docs/static_analysis.md`` for the full workflow.
"""

from repro.analysis.baseline import (
    Baseline,
    load_baseline,
    migrate_baseline,
    write_baseline,
)
from repro.analysis.findings import Finding, statement_content_hash
from repro.analysis.reporters import (
    format_findings_json,
    format_findings_sarif,
    format_findings_text,
)
from repro.analysis.rules import Rule, all_rule_ids, get_rules

# Importing the interprocedural module registers R007–R011 as a side
# effect; ALL_RULE_IDS must therefore be computed afterwards.
import repro.analysis.interprocedural  # noqa: F401  (registration import)

from repro.analysis.runner import (
    AnalysisReport,
    UnusedSuppression,
    analyze_paths,
    analyze_source,
    load_project_from_paths,
)

#: every registered rule id, per-module and project rules alike
ALL_RULE_IDS = all_rule_ids()

__all__ = [
    "ALL_RULE_IDS",
    "AnalysisReport",
    "Baseline",
    "Finding",
    "Rule",
    "UnusedSuppression",
    "analyze_paths",
    "analyze_source",
    "format_findings_json",
    "format_findings_sarif",
    "format_findings_text",
    "get_rules",
    "load_baseline",
    "load_project_from_paths",
    "migrate_baseline",
    "statement_content_hash",
    "write_baseline",
]
