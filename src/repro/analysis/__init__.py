"""Repo-specific static analysis: the instrumentation/determinism linter.

The paper's evaluation is only as trustworthy as its counters (Section 7.1 /
Table 3), and the counters are only as trustworthy as the discipline that
every hot path computes distances through the instrumented kernels in
:mod:`repro.common.distance` and draws randomness through
:mod:`repro.common.rng`.  This package enforces those contracts with a small
AST-visitor framework plus a rule set encoding the repo's conventions:

========  =========================  ==================================
rule id   name                       contract enforced
========  =========================  ==================================
R001      uninstrumented-distance    distances go through counted kernels
R002      global-rng                 randomness is explicitly seeded
R003      counter-discipline         counter-taking code charges accesses
R004      float-equality             pruning never compares floats with ==
R005      mutable-default-arg        no shared mutable default arguments
R006      no-swallowed-exception     failures are recorded, never eaten
========  =========================  ==================================

Findings can be silenced inline with ``# repro: ignore[R001]`` (with an
explanatory comment) or grandfathered in ``analysis_baseline.json``.  See
``docs/static_analysis.md`` for the full workflow.
"""

from repro.analysis.baseline import Baseline, load_baseline, write_baseline
from repro.analysis.findings import Finding
from repro.analysis.reporters import format_findings_json, format_findings_text
from repro.analysis.rules import ALL_RULE_IDS, Rule, get_rules
from repro.analysis.runner import AnalysisReport, analyze_paths, analyze_source

__all__ = [
    "ALL_RULE_IDS",
    "AnalysisReport",
    "Baseline",
    "Finding",
    "Rule",
    "analyze_paths",
    "analyze_source",
    "format_findings_json",
    "format_findings_text",
    "get_rules",
    "load_baseline",
    "write_baseline",
]
