"""Baseline file support: grandfathered findings.

The baseline is a committed JSON file (``analysis_baseline.json`` at the
repo root) listing findings that predate a rule and are tolerated until
someone cleans them up.

Format version 2 keys every entry by ``(rule, path, hash)`` where ``hash``
is the whitespace-insensitive content hash of the flagged statement
(:func:`repro.analysis.findings.statement_content_hash`) — line numbers
never appear, so unrelated edits above an offender do not resurrect it and
re-indenting the offender does not orphan its entry.  The human-readable
``snippet`` is stored alongside purely for review; matching ignores it.
Each entry carries a ``count`` so a file with three identical offending
statements cannot silently grow a fourth.

Version 1 files (which keyed by the raw snippet text) are migrated
transparently on load — the snippet is hashed into the v2 key — and
:func:`migrate_baseline` rewrites the file in place.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.findings import Finding, statement_content_hash

BASELINE_VERSION = 2
DEFAULT_BASELINE_NAME = "analysis_baseline.json"

_Key = Tuple[str, str, str]  # (rule_id, path, content_hash)


@dataclass
class Baseline:
    """Multiset of grandfathered finding identities."""

    entries: Counter = field(default_factory=Counter)
    #: content_hash -> representative snippet, for human-readable writes
    snippets: Dict[str, str] = field(default_factory=dict)

    def filter(self, findings: Iterable[Finding]) -> Tuple[List[Finding], int]:
        """Split ``findings`` into (fresh, number_baselined).

        Consumes baseline budget in file order, so at most ``count``
        occurrences of an identical offender are absorbed.
        """
        budget = Counter(self.entries)
        fresh: List[Finding] = []
        absorbed = 0
        for finding in findings:
            key = finding.baseline_key()
            if budget[key] > 0:
                budget[key] -= 1
                absorbed += 1
            else:
                fresh.append(finding)
        return fresh, absorbed

    def __len__(self) -> int:
        return sum(self.entries.values())


def _entry_key(item: Dict[str, object]) -> _Key:
    """Key for one stored entry, migrating v1 snippet-keyed items."""
    content_hash = item.get("hash")
    if not content_hash:
        content_hash = statement_content_hash(str(item.get("snippet", "")))
    return (str(item["rule"]), str(item["path"]), str(content_hash))


def load_baseline(path: Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline.

    Accepts both format versions; v1 entries are keyed by hashing their
    stored snippet (see :func:`migrate_baseline` to rewrite the file).
    """
    path = Path(path)
    if not path.exists():
        return Baseline()
    payload = json.loads(path.read_text())
    baseline = Baseline()
    for item in payload.get("findings", []):
        key = _entry_key(item)
        baseline.entries[key] += int(item.get("count", 1))
        snippet = str(item.get("snippet", ""))
        if snippet:
            baseline.snippets.setdefault(key[2], snippet)
    return baseline


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Write ``findings`` as the new baseline (v2 format, sorted)."""
    entries: Counter = Counter()
    snippets: Dict[str, str] = {}
    for finding in findings:
        key = finding.baseline_key()
        entries[key] += 1
        snippets.setdefault(key[2], finding.snippet)
    items: List[Dict[str, object]] = []
    for (rule_id, file_path, content_hash), count in sorted(entries.items()):
        item: Dict[str, object] = {
            "rule": rule_id,
            "path": file_path,
            "hash": content_hash,
            "snippet": snippets.get(content_hash, ""),
        }
        if count > 1:
            item["count"] = count
        items.append(item)
    payload = {"version": BASELINE_VERSION, "findings": items}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def migrate_baseline(path: Path) -> bool:
    """Rewrite a v1 baseline file in the v2 hash-keyed format, in place.

    Returns True when the file was rewritten, False when it was already
    current (or absent).  Counts and snippets are preserved; only the
    matching key changes.
    """
    path = Path(path)
    if not path.exists():
        return False
    payload = json.loads(path.read_text())
    if payload.get("version") == BASELINE_VERSION:
        return False
    items: List[Dict[str, object]] = []
    for item in payload.get("findings", []):
        rule_id, file_path, content_hash = _entry_key(item)
        migrated: Dict[str, object] = {
            "rule": rule_id,
            "path": file_path,
            "hash": content_hash,
            "snippet": str(item.get("snippet", "")),
        }
        count = int(item.get("count", 1))
        if count > 1:
            migrated["count"] = count
        items.append(migrated)
    items.sort(key=lambda entry: (entry["rule"], entry["path"], entry["hash"]))
    path.write_text(
        json.dumps({"version": BASELINE_VERSION, "findings": items}, indent=2) + "\n"
    )
    return True
