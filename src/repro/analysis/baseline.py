"""Baseline file support: grandfathered findings.

The baseline is a committed JSON file (``analysis_baseline.json`` at the
repo root) listing findings that predate a rule and are tolerated until
someone cleans them up.  Matching is by ``(path, rule, snippet)`` — not line
number — so unrelated edits above an offender do not resurrect it; each
entry carries a ``count`` so a file with three identical offending lines
cannot silently grow a fourth.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "analysis_baseline.json"

_Key = Tuple[str, str, str]


@dataclass
class Baseline:
    """Multiset of grandfathered finding identities."""

    entries: Counter = field(default_factory=Counter)

    def filter(self, findings: Iterable[Finding]) -> Tuple[List[Finding], int]:
        """Split ``findings`` into (fresh, number_baselined).

        Consumes baseline budget in file order, so at most ``count``
        occurrences of an identical offender are absorbed.
        """
        budget = Counter(self.entries)
        fresh: List[Finding] = []
        absorbed = 0
        for finding in findings:
            key = finding.baseline_key()
            if budget[key] > 0:
                budget[key] -= 1
                absorbed += 1
            else:
                fresh.append(finding)
        return fresh, absorbed

    def __len__(self) -> int:
        return sum(self.entries.values())


def load_baseline(path: Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return Baseline()
    payload = json.loads(path.read_text())
    entries: Counter = Counter()
    for item in payload.get("findings", []):
        key: _Key = (item["path"], item["rule"], item.get("snippet", ""))
        entries[key] += int(item.get("count", 1))
    return Baseline(entries)


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, deduplicated)."""
    entries: Counter = Counter(f.baseline_key() for f in findings)
    items: List[Dict[str, object]] = []
    for (file_path, rule_id, snippet), count in sorted(entries.items()):
        item: Dict[str, object] = {"path": file_path, "rule": rule_id, "snippet": snippet}
        if count > 1:
            item["count"] = count
        items.append(item)
    payload = {"version": BASELINE_VERSION, "findings": items}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
