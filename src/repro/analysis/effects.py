"""Effect inference: a small lattice of function side effects.

Every project function is labeled with a subset of :data:`EFFECTS`:

``mutates-global``
    Writes module-level state — ``global`` declarations that are stored
    to, or in-place mutation (subscript/attribute store, mutator method
    call) of a module-level binding.  Fatal for pool-dispatched work: a
    forked worker's mutation is silently lost, a threaded one races.
``performs-io``
    Filesystem / stream traffic (``open``, ``print``, path writes,
    ``json.dump`` …).  Informational for now; surfaced in ``--graph``.
``uses-rng``
    Draws randomness — through :mod:`repro.common.rng`, numpy / stdlib
    RNG modules, or method calls on generator-shaped receivers.
``uncounted-distance``
    Contains distance arithmetic outside the counted kernels — exactly
    R001's detectors, but evaluated *everywhere* (R001 itself only scans
    the instrumented core) so backend-purity (R008) can see an uncounted
    kernel behind a helper call.  Lines carrying an R001/R008 suppression
    contribute no effect: a justified suppression is a declaration that
    the arithmetic is not a distance in the Table 3 sense.
``unpicklable-closure``
    The function is nested (defined inside another function), so it
    pickles by neither reference nor value — dispatching it to a worker
    process fails or, worse, drags its closure along.  This label is a
    *property*, not an effect: it does not propagate through calls
    (calling a closure from picklable code is fine; shipping one isn't).

Direct effects come from one AST pass per function
(:func:`compute_direct_effects`); transitive effects are the least
fixpoint of ``effects(f) = direct(f) ∪ ⋃ effects(callees(f))`` over a
chosen edge tier (:func:`propagate_effects`).  The call graph's SCC
condensation guarantees the fixpoint terminates; determinism of both is
pinned by ``tests/test_analysis_graph.py``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Set, Tuple

from repro.analysis.graph import CallGraph, FunctionInfo, Project
from repro.analysis.rules import ParsedModule, UninstrumentedDistanceRule, resolve_name
from repro.analysis.suppressions import is_suppressed, parse_suppressions

MUTATES_GLOBAL = "mutates-global"
PERFORMS_IO = "performs-io"
USES_RNG = "uses-rng"
UNCOUNTED_DISTANCE = "uncounted-distance"
UNPICKLABLE_CLOSURE = "unpicklable-closure"

#: the full lattice, in display order
EFFECTS = (
    MUTATES_GLOBAL,
    PERFORMS_IO,
    USES_RNG,
    UNCOUNTED_DISTANCE,
    UNPICKLABLE_CLOSURE,
)

#: effects that flow caller-ward through calls (see module docstring)
PROPAGATED_EFFECTS = frozenset(
    {MUTATES_GLOBAL, PERFORMS_IO, USES_RNG, UNCOUNTED_DISTANCE}
)

#: container methods that mutate their receiver in place
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "add", "discard", "update", "setdefault", "sort", "reverse",
    }
)

#: resolved dotted prefixes / names whose call is IO
_IO_CALL_PREFIXES = ("shutil.", "subprocess.", "sys.stdout", "sys.stderr")
_IO_CALL_NAMES = frozenset(
    {
        "json.dump", "json.load", "pickle.dump", "pickle.load",
        "os.remove", "os.unlink", "os.rename", "os.replace", "os.makedirs",
        "os.mkdir", "os.rmdir", "os.fsync", "os.chdir",
    }
)
_IO_METHOD_NAMES = frozenset(
    {"write_text", "write_bytes", "read_text", "read_bytes", "savefig", "to_csv"}
)

#: numpy Generator drawing methods (the common surface)
RNG_METHODS = frozenset(
    {
        "integers", "random", "choice", "shuffle", "permutation", "normal",
        "uniform", "standard_normal", "exponential", "poisson", "geometric",
        "binomial", "multivariate_normal", "spawn",
    }
)

#: local/attribute names treated as generator-shaped receivers
_RNG_NAME_FRAGMENTS = ("rng", "random_state", "generator")

#: the counted-kernel module: raw arithmetic there IS the instrumentation
DISTANCE_KERNEL_MODULE = "repro.common.distance"


def is_rng_shaped_name(name: str) -> bool:
    lowered = name.lower()
    return any(fragment in lowered for fragment in _RNG_NAME_FRAGMENTS)


@dataclass(frozen=True)
class DistanceSite:
    """One uncounted-distance expression inside a function."""

    line: int
    col: int
    message: str
    snippet: str


@dataclass
class DirectEffects:
    """Per-function direct (intraprocedural) effect labels."""

    effects: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: per-function uncounted-distance evidence, for R008 reporting
    distance_sites: Dict[str, Tuple[DistanceSite, ...]] = field(default_factory=dict)

    def get(self, qualname: str) -> FrozenSet[str]:
        return self.effects.get(qualname, frozenset())


def _root_name(node: ast.AST) -> Optional[str]:
    """Peel attributes/subscripts down to the base ``Name``, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def module_level_names(tree: ast.AST) -> FrozenSet[str]:
    """Names bound at module top level (assignments, imports, defs)."""
    names: Set[str] = set()
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for item in node.names:
                if item.name == "*":
                    continue
                names.add((item.asname or item.name).split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
    return frozenset(names)


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body, *excluding* nested function definitions
    (those are separate graph nodes with their own effects)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _local_store_names(func: ast.AST) -> Set[str]:
    """Names the function binds locally (params, plain assignments, loops,
    with-targets, comprehension targets) — these shadow module globals."""
    names: Set[str] = set()
    args = func.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in _own_nodes(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    names.add(leaf.id)
    return names


def _function_direct_effects(
    module: ParsedModule,
    info: FunctionInfo,
    module_globals: FrozenSet[str],
    suppressions: Mapping[int, FrozenSet[str]],
) -> Tuple[Set[str], List[DistanceSite]]:
    func = info.node
    effects: Set[str] = set()
    sites: List[DistanceSite] = []
    if info.is_nested:
        effects.add(UNPICKLABLE_CLOSURE)

    global_names: Set[str] = set()
    for node in _own_nodes(func):
        if isinstance(node, ast.Global):
            global_names.update(node.names)
    locals_ = _local_store_names(func) - global_names

    def is_module_global(name: Optional[str]) -> bool:
        return name is not None and name in module_globals and name not in locals_

    for node in _own_nodes(func):
        # --- mutates-global -------------------------------------------
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in global_names:
                    effects.add(MUTATES_GLOBAL)
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    if is_module_global(_root_name(target)):
                        effects.add(MUTATES_GLOBAL)
        elif isinstance(node, ast.Call):
            func_expr = node.func
            resolved = resolve_name(module.aliases, func_expr)
            # mutator method on a module-level container
            if (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr in _MUTATOR_METHODS
                and is_module_global(_root_name(func_expr.value))
            ):
                effects.add(MUTATES_GLOBAL)
            # --- performs-io ------------------------------------------
            if isinstance(func_expr, ast.Name) and func_expr.id in ("open", "print"):
                effects.add(PERFORMS_IO)
            elif resolved is not None and (
                resolved in _IO_CALL_NAMES
                or resolved.startswith(_IO_CALL_PREFIXES)
            ):
                effects.add(PERFORMS_IO)
            elif (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr in _IO_METHOD_NAMES
            ):
                effects.add(PERFORMS_IO)
            # --- uses-rng ---------------------------------------------
            if resolved is not None and (
                resolved.startswith("numpy.random.")
                or resolved == "random"
                or resolved.startswith("random.")
                or resolved.endswith(("common.rng.ensure_rng", "common.rng.spawn_rng"))
            ):
                effects.add(USES_RNG)
            elif (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr in RNG_METHODS
            ):
                receiver = func_expr.value
                shaped = False
                while isinstance(receiver, (ast.Attribute, ast.Subscript)):
                    if isinstance(receiver, ast.Attribute) and is_rng_shaped_name(
                        receiver.attr
                    ):
                        shaped = True
                    receiver = receiver.value
                if isinstance(receiver, ast.Name) and is_rng_shaped_name(receiver.id):
                    shaped = True
                if shaped:
                    effects.add(USES_RNG)

    # --- uncounted-distance -------------------------------------------
    if info.module != DISTANCE_KERNEL_MODULE:
        probe = UninstrumentedDistanceRule()
        scratch = ParsedModule(
            path=module.path,
            source=module.source,
            tree=info.node,
            lines=module.lines,
            aliases=module.aliases,
        )
        nested_ranges = [
            (child.lineno, child.end_lineno or child.lineno)
            for child in ast.walk(info.node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not info.node
        ]
        for finding in probe.check(scratch):
            if any(lo <= finding.line <= hi for lo, hi in nested_ranges):
                continue  # belongs to a nested def (its own graph node)
            if is_suppressed(suppressions, finding.line, "R001") or is_suppressed(
                suppressions, finding.line, "R008"
            ):
                continue
            effects.add(UNCOUNTED_DISTANCE)
            sites.append(
                DistanceSite(
                    line=finding.line,
                    col=finding.col,
                    message=finding.message,
                    snippet=finding.snippet,
                )
            )
    return effects, sites


def compute_direct_effects(project: Project) -> DirectEffects:
    """One intraprocedural pass per project function."""
    out = DirectEffects()
    globals_cache: Dict[str, FrozenSet[str]] = {}
    suppressions_cache: Dict[str, Mapping[int, FrozenSet[str]]] = {}
    for qualname in sorted(project.functions):
        info = project.functions[qualname]
        module = project.modules[info.module]
        if info.module not in globals_cache:
            globals_cache[info.module] = module_level_names(module.tree)
            suppressions_cache[info.module] = parse_suppressions(module.source)
        effects, sites = _function_direct_effects(
            module, info, globals_cache[info.module], suppressions_cache[info.module]
        )
        out.effects[qualname] = frozenset(effects)
        if sites:
            out.distance_sites[qualname] = tuple(
                sorted(sites, key=lambda s: (s.line, s.col))
            )
    return out


def propagate_effects(
    direct: DirectEffects,
    graph: CallGraph,
    *,
    fuzzy: bool = False,
) -> Dict[str, FrozenSet[str]]:
    """Least-fixpoint transitive effects over the chosen edge tier.

    Only :data:`PROPAGATED_EFFECTS` flow through calls; the
    ``unpicklable-closure`` property stays where it was declared.
    """
    effects: Dict[str, Set[str]] = {
        qualname: set(labels) for qualname, labels in direct.effects.items()
    }
    # Reverse edges drive a worklist so each SCC converges in few passes.
    callers: Dict[str, List[str]] = {}
    for caller in graph.edges:
        for callee in graph.callees(caller, fuzzy=fuzzy):
            callers.setdefault(callee, []).append(caller)
    worklist = sorted(effects)
    pending = set(worklist)
    while worklist:
        node = worklist.pop()
        pending.discard(node)
        inherited: Set[str] = set()
        for callee in graph.callees(node, fuzzy=fuzzy):
            inherited |= effects.get(callee, set()) & PROPAGATED_EFFECTS
        merged = effects.setdefault(node, set())
        if not inherited <= merged:
            merged |= inherited
            for caller in callers.get(node, ()):
                if caller not in pending:
                    pending.add(caller)
                    worklist.append(caller)
    return {qualname: frozenset(labels) for qualname, labels in effects.items()}
