"""AST rule framework and the repo-contract rule set (R001–R006).

Each rule is a small class with an id, a path scope, and a ``check`` method
that walks a parsed module and yields :class:`Finding`\\ s.  Rules are
registered in :data:`RULES` at import time; the runner applies inline
suppressions and the baseline afterwards, so rules themselves stay pure.

Scope conventions
-----------------
The *instrumented core* is ``repro/core/`` and ``repro/indexes/`` — the code
whose operation counts the paper reports (Table 3).  R001/R003/R004 apply
there; R002 applies everywhere except :mod:`repro.common.rng` (the one
blessed RNG chokepoint); R005 and R006 apply to the whole tree.
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.analysis.findings import Finding

#: path fragments delimiting the instrumented core (posix separators)
INSTRUMENTED_SCOPE = ("repro/core/", "repro/indexes/")

#: attribute names treated as stored bound arrays by R003
BOUND_ARRAY_ATTRS = frozenset(
    {"_ub", "_ub2", "_lb", "_lbs", "_glb", "_bounds", "_lb_shifted"}
)

#: einsum subscript signatures that compute a same-operand inner product,
#: i.e. a squared-distance evaluation
_DISTANCE_EINSUM_SIGS = frozenset({"i,i->", "ij,ij->", "ij,ij->i", "ijk,ijk->ij"})


# ----------------------------------------------------------------------
# Parsed-module container and name resolution.
# ----------------------------------------------------------------------


@dataclass
class ParsedModule:
    """One source file parsed for analysis."""

    path: str  # repo-relative, posix separators
    source: str
    tree: ast.AST
    lines: List[str] = field(default_factory=list)
    aliases: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, source: str) -> "ParsedModule":
        tree = ast.parse(source)
        module = cls(path=path, source=source, tree=tree, lines=source.splitlines())
        module.aliases = _collect_aliases(tree)
        return module

    def snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.path,
            line=lineno,
            col=col + 1,
            rule_id=rule.rule_id,
            message=message,
            snippet=self.snippet(lineno),
        )


def _collect_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted module path they were imported as."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                if item.name != "*":
                    aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


def resolve_name(aliases: Dict[str, str], node: ast.AST) -> Optional[str]:
    """Resolve an attribute chain / name to a dotted import path, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# Rule base class and registry.
# ----------------------------------------------------------------------


class Rule(abc.ABC):
    """One analysis rule: id, human name, path scope, and a checker."""

    rule_id: str = "R000"
    name: str = "abstract-rule"
    description: str = ""

    def applies_to(self, path: str) -> bool:
        return True

    @abc.abstractmethod
    def check(self, module: ParsedModule) -> Iterator[Finding]:
        """Yield findings for ``module`` (already known to be in scope)."""


class ProjectRule(Rule):
    """A rule that needs the whole-project view (call graph + effects).

    Per-module ``check`` is a no-op; the runner calls :meth:`check_project`
    once with the loaded :class:`~repro.analysis.graph.Project`, its
    :class:`~repro.analysis.graph.CallGraph`, and the
    :class:`~repro.analysis.effects.DirectEffects` table.  Findings still
    carry a (path, line) location, so inline suppressions and the baseline
    apply exactly as they do for per-module rules.
    """

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        return iter(())

    @abc.abstractmethod
    def check_project(self, project, graph, direct) -> Iterator[Finding]:
        """Yield findings for the whole project."""


RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if cls.rule_id in RULES:  # pragma: no cover - programming error guard
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULES[cls.rule_id] = cls
    return cls


def get_rules(rule_ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the requested rules (default: all, in id order)."""
    if rule_ids is None:
        selected: Iterable[str] = sorted(RULES)
    else:
        unknown = [rid for rid in rule_ids if rid.upper() not in RULES]
        if unknown:
            raise KeyError(f"unknown rule ids {unknown}; known: {sorted(RULES)}")
        selected = [rid.upper() for rid in rule_ids]
    return [RULES[rid]() for rid in selected]


def _in_instrumented_scope(path: str) -> bool:
    return any(fragment in path for fragment in INSTRUMENTED_SCOPE)


# ----------------------------------------------------------------------
# R001 — uninstrumented-distance.
# ----------------------------------------------------------------------


@register
class UninstrumentedDistanceRule(Rule):
    """Distance arithmetic in the instrumented core must go through the
    counted kernels of :mod:`repro.common.distance` (or carry a justified
    suppression), otherwise ``distance_computations`` silently undercounts
    and every Table 3-style measurement downstream is wrong.

    Besides ``np.linalg.norm``/scipy and the same-operand ``einsum`` /
    ``@`` idioms, this recognizes the batched squared-distance shapes a
    vectorized implementation (:mod:`repro.core.vectorized`) is most likely
    to hand-roll: the same-operand batched ``np.matmul`` row reduction
    (``np.matmul(diff[:, None, :], diff[:, :, None])`` — the kernel inside
    :func:`repro.common.distance._rowwise_sq_norms`), the same-operand
    ``np.dot``, and the summed squared difference in every spelling —
    ``((a - b) ** 2).sum()``, ``np.sum((a - b) ** 2)``,
    ``np.square(a - b).sum()``, ``((a - b) * (a - b)).sum()`` — the
    scatter-add and frontier batching idioms tempt exactly these.
    """

    rule_id = "R001"
    name = "uninstrumented-distance"
    description = (
        "distance computed outside the instrumented kernels in "
        "repro.common.distance"
    )

    def applies_to(self, path: str) -> bool:
        return _in_instrumented_scope(path)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                resolved = resolve_name(module.aliases, node.func)
                if resolved == "numpy.linalg.norm":
                    yield module.finding(
                        self,
                        node,
                        "np.linalg.norm computes an uncounted distance; use "
                        "repro.common.distance (euclidean / one_to_many_distances)",
                    )
                elif resolved is not None and resolved.startswith("scipy.spatial"):
                    yield module.finding(
                        self,
                        node,
                        f"{resolved} bypasses the instrumented kernels; use "
                        "repro.common.distance",
                    )
                elif resolved in ("numpy.einsum",) and self._is_distance_einsum(node):
                    yield module.finding(
                        self,
                        node,
                        "same-operand einsum is a squared-distance evaluation; "
                        "use repro.common.distance so it is counted",
                    )
                elif resolved == "numpy.matmul" and self._is_same_root_matmul(node):
                    yield module.finding(
                        self,
                        node,
                        "same-operand batched matmul is a squared-distance "
                        "evaluation; use repro.common.distance "
                        "(paired_sq_distances / block_sq_distances) so it is "
                        "counted",
                    )
                elif resolved == "numpy.dot" and self._is_same_root_matmul(node):
                    yield module.finding(
                        self,
                        node,
                        "same-operand np.dot is a squared-distance "
                        "evaluation; use repro.common.distance "
                        "(sq_euclidean / paired_sq_distances) so it is counted",
                    )
                elif self._is_sq_diff_sum(module, node):
                    yield module.finding(
                        self,
                        node,
                        "a squared difference summed is a squared-distance "
                        "evaluation; use repro.common.distance so it is counted",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                if ast.dump(node.left) == ast.dump(node.right):
                    yield module.finding(
                        self,
                        node,
                        "diff @ diff inner product is a squared-distance "
                        "evaluation; use repro.common.distance so it is counted",
                    )

    @staticmethod
    def _is_distance_einsum(node: ast.Call) -> bool:
        if len(node.args) != 3:
            return False
        sig = node.args[0]
        if not (isinstance(sig, ast.Constant) and isinstance(sig.value, str)):
            return False
        signature = sig.value.replace(" ", "")
        if signature not in _DISTANCE_EINSUM_SIGS:
            return False
        return ast.dump(node.args[1]) == ast.dump(node.args[2])

    @staticmethod
    def _is_same_root_matmul(node: ast.Call) -> bool:
        """``np.matmul(x[...], x[...])`` (or plain ``np.matmul(x, x)``)."""
        if len(node.args) < 2:
            return False

        def strip_subscripts(expr: ast.AST) -> ast.AST:
            while isinstance(expr, ast.Subscript):
                expr = expr.value
            return expr

        left = strip_subscripts(node.args[0])
        right = strip_subscripts(node.args[1])
        return ast.dump(left) == ast.dump(right)

    @classmethod
    def _is_sq_diff_sum(cls, module: ParsedModule, node: ast.Call) -> bool:
        """A summed squared difference, in any of its spellings:
        ``((a - b) ** 2).sum(...)``, ``np.sum((a - b) ** 2, ...)``,
        ``np.square(a - b).sum()``, or ``((a - b) * (a - b)).sum()``."""
        func = node.func
        if resolve_name(module.aliases, func) == "numpy.sum" and node.args:
            return cls._is_sq_diff(module, node.args[0])
        if isinstance(func, ast.Attribute) and func.attr == "sum":
            return cls._is_sq_diff(module, func.value)
        return False

    @staticmethod
    def _is_sq_diff(module: ParsedModule, node: ast.AST) -> bool:
        """An ``(a - b) ** 2`` / ``np.square(a - b)`` / same-operand
        ``(a - b) * (a - b)`` expression (optionally parenthesized)."""
        if (
            isinstance(node, ast.Call)
            and resolve_name(module.aliases, node.func) == "numpy.square"
            and node.args
        ):
            inner = node.args[0]
            return isinstance(inner, ast.BinOp) and isinstance(inner.op, ast.Sub)
        if not isinstance(node, ast.BinOp):
            return False
        if isinstance(node.op, ast.Pow):
            power = node.right
            if not (isinstance(power, ast.Constant) and power.value == 2):
                return False
            return isinstance(node.left, ast.BinOp) and isinstance(node.left.op, ast.Sub)
        if isinstance(node.op, ast.Mult):
            return (
                isinstance(node.left, ast.BinOp)
                and isinstance(node.left.op, ast.Sub)
                and ast.dump(node.left) == ast.dump(node.right)
            )
        return False


# ----------------------------------------------------------------------
# R002 — global-rng.
# ----------------------------------------------------------------------


@register
class GlobalRngRule(Rule):
    """All randomness flows through explicitly seeded generators.  The
    determinism contract (fixed seed => identical labels/centroids) breaks
    the moment any code touches the process-global numpy or stdlib RNG
    state, because test ordering then changes results."""

    rule_id = "R002"
    name = "global-rng"
    description = (
        "global / unseeded RNG use outside repro.common.rng; pass a seeded "
        "Generator (repro.common.rng.ensure_rng)"
    )

    def applies_to(self, path: str) -> bool:
        return not path.endswith("repro/common/rng.py")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_name(module.aliases, node.func)
            if resolved is None:
                continue
            if resolved == "numpy.random.default_rng":
                if not node.args or (
                    isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                ):
                    yield module.finding(
                        self,
                        node,
                        "unseeded default_rng() is nondeterministic; pass an "
                        "explicit seed or thread a Generator through",
                    )
            elif resolved.startswith("numpy.random."):
                yield module.finding(
                    self,
                    node,
                    f"{resolved} uses numpy's global RNG state; construct a "
                    "seeded Generator via repro.common.rng.ensure_rng",
                )
            elif resolved == "random" or resolved.startswith("random."):
                yield module.finding(
                    self,
                    node,
                    "stdlib random uses process-global state; use a seeded "
                    "numpy Generator via repro.common.rng.ensure_rng",
                )


# ----------------------------------------------------------------------
# R003 — counter-discipline.
# ----------------------------------------------------------------------


@register
class CounterDisciplineRule(Rule):
    """A function that accepts an :class:`OpCounters` parameter — or, in a
    method, touches ``self.counters`` — advertises that its work is
    measured; reading data-point rows or stored bound arrays inside it
    without charging ``point_accesses`` / ``bound_accesses`` breaks the
    Table 3 access accounting.

    Vectorized assignment passes (:mod:`repro.core.vectorized`) hoist
    ``self.X`` / bound arrays into locals before the batch operations
    (``lb = self._lb``), so reads through such single-assignment local
    aliases are tracked as bound/point reads too.
    """

    rule_id = "R003"
    name = "counter-discipline"
    description = (
        "counter-accepting function reads points/bounds without charging "
        "point_accesses/bound_accesses"
    )

    def applies_to(self, path: str) -> bool:
        return _in_instrumented_scope(path)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self.accepts_counters(node) or self.uses_self_counters(node):
                    yield from self._check_function(module, node)

    @staticmethod
    def accepts_counters(node: ast.AST) -> bool:
        args = node.args
        every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for arg in every:
            if arg.arg == "counters":
                return True
            if arg.annotation is not None and "OpCounters" in ast.dump(arg.annotation):
                return True
        return False

    @staticmethod
    def uses_self_counters(func: ast.AST) -> bool:
        """A method touching ``self.counters`` claims its work is measured."""
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "counters"
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return True
        return False

    @staticmethod
    def _local_array_aliases(func: ast.AST) -> Dict[str, str]:
        """Local names bound to ``self.X`` / bound arrays: name -> kind."""
        aliases: Dict[str, str] = {}
        for node in ast.walk(func):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            value = node.value
            if not (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
            ):
                continue
            if value.attr == "X":
                aliases[target.id] = "point"
            elif value.attr in BOUND_ARRAY_ATTRS:
                aliases[target.id] = "bound"
        return aliases

    @classmethod
    def scan_reads(
        cls, func: ast.AST
    ) -> Tuple[List[ast.AST], List[ast.AST], bool, bool]:
        """Scan one function for point/bound reads and access charges.

        Returns ``(point_reads, bound_reads, charges_points,
        charges_bounds)`` — shared with R010, which runs the same scan on
        *callees* of counter-accepting functions.
        """
        aliases = cls._local_array_aliases(func)
        point_reads: List[ast.AST] = []
        bound_reads: List[ast.AST] = []
        charges_points = False
        charges_bounds = False
        for node in ast.walk(func):
            if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
                target = node.value
                if isinstance(target, ast.Attribute):
                    if target.attr == "X":
                        point_reads.append(node)
                    elif target.attr in BOUND_ARRAY_ATTRS:
                        bound_reads.append(node)
                elif isinstance(target, ast.Name) and target.id in aliases:
                    if aliases[target.id] == "point":
                        point_reads.append(node)
                    else:
                        bound_reads.append(node)
            elif isinstance(node, ast.Attribute):
                if node.attr in ("add_point_accesses", "point_accesses"):
                    charges_points = True
                elif node.attr in ("add_bound_accesses", "bound_accesses"):
                    charges_bounds = True
        return point_reads, bound_reads, charges_points, charges_bounds

    def _check_function(
        self, module: ParsedModule, func: ast.AST
    ) -> Iterator[Finding]:
        point_reads, bound_reads, charges_points, charges_bounds = self.scan_reads(func)
        if point_reads and not charges_points:
            yield module.finding(
                self,
                point_reads[0],
                f"function {func.name!r} accepts counters but reads data "
                "points without charging point_accesses",
            )
        if bound_reads and not charges_bounds:
            yield module.finding(
                self,
                bound_reads[0],
                f"function {func.name!r} accepts counters but reads bound "
                "arrays without charging bound_accesses",
            )


# ----------------------------------------------------------------------
# R004 — float-equality.
# ----------------------------------------------------------------------


@register
class FloatEqualityRule(Rule):
    """Pruning code lives and dies by threshold tests; ``==``/``!=``
    against float expressions is almost always a latent tie-breaking or
    convergence bug (use <=/>= margins or math.isclose)."""

    rule_id = "R004"
    name = "float-equality"
    description = "== / != comparison against a float expression in pruning code"

    def applies_to(self, path: str) -> bool:
        return _in_instrumented_scope(path)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            if any(self._is_floatish(operand) for operand in operands):
                yield module.finding(
                    self,
                    node,
                    "float equality comparison; use an explicit tolerance or "
                    "an ordered comparison",
                )

    @classmethod
    def _is_floatish(cls, node: ast.AST, depth: int = 0) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.UnaryOp):
            return cls._is_floatish(node.operand, depth)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id == "float"
        if isinstance(node, ast.BinOp) and depth < 2:
            return cls._is_floatish(node.left, depth + 1) or cls._is_floatish(
                node.right, depth + 1
            )
        return False


# ----------------------------------------------------------------------
# R005 — mutable-default-arg.
# ----------------------------------------------------------------------


@register
class MutableDefaultArgRule(Rule):
    """Mutable default arguments are evaluated once and shared across
    calls — in a framework whose algorithms are re-run in loops by the
    harness, state leaking between runs corrupts measurements silently."""

    rule_id = "R005"
    name = "mutable-default-arg"
    description = "mutable default argument (list/dict/set) shared across calls"

    _MUTABLE_FACTORIES: FrozenSet[str] = frozenset({"list", "dict", "set", "bytearray"})

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield module.finding(
                        self,
                        default,
                        f"default argument of {name!r} is mutable and shared "
                        "across calls; default to None and construct inside",
                    )

    @classmethod
    def _is_mutable(cls, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                             ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in cls._MUTABLE_FACTORIES
        return False


# ----------------------------------------------------------------------
# R006 — no-swallowed-exception.
# ----------------------------------------------------------------------


@register
class SwallowedExceptionRule(Rule):
    """The fault-tolerant runtime turns failures into structured
    :class:`FailedRun` records; a bare/broad ``except`` that just ``pass``es
    instead silently deletes the evidence — a failed run looks identical to
    one that never happened, which poisons both the evaluation log and the
    UTune training corpus built from it."""

    rule_id = "R006"
    name = "no-swallowed-exception"
    description = (
        "bare or broad except whose body silently swallows the exception; "
        "handle, record, or re-raise"
    )

    _BROAD_NAMES = frozenset({"Exception", "BaseException"})

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._swallows(node.body):
                what = "bare except" if node.type is None else "broad except"
                yield module.finding(
                    self,
                    node,
                    f"{what} silently swallows the error; handle it, record "
                    "a FailedRun, or re-raise",
                )

    @classmethod
    def _is_broad(cls, type_node: Optional[ast.AST]) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Name):
            return type_node.id in cls._BROAD_NAMES
        if isinstance(type_node, ast.Attribute):
            return type_node.attr in cls._BROAD_NAMES
        if isinstance(type_node, ast.Tuple):
            return any(cls._is_broad(element) for element in type_node.elts)
        return False

    @staticmethod
    def _swallows(body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and (stmt.value.value is Ellipsis or isinstance(stmt.value.value, str))
            ):
                continue  # `...` or a docstring-style literal
            return False
        return True


def all_rule_ids() -> Tuple[str, ...]:
    """Every registered rule id, sorted.  The interprocedural rules
    (R007–R012) register when :mod:`repro.analysis.interprocedural` is
    imported, so the package ``__init__`` — which imports both modules —
    exposes the completed tuple as ``repro.analysis.ALL_RULE_IDS``."""
    return tuple(sorted(RULES))
