"""Inline suppression comments: ``# repro: ignore[R001]``.

A suppression applies to findings reported on

* the physical line carrying the comment (trailing comment style), or
* the first following code line, when the comment stands alone (banner
  style for statements that do not fit on one line).

``# repro: ignore`` without a bracket list silences every rule on that line;
``# repro: ignore[R001, R004]`` silences only the listed rules.  The linter
deliberately has no file-level escape hatch — blanket exemptions belong in
the rule's scope definition, not scattered through the tree.

Comments are located with :mod:`tokenize`, not a raw-line regex, so the
marker written inside a string or docstring (as in this very file's
documentation) is never mistaken for a live suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, FrozenSet, List

#: sentinel meaning "all rules suppressed on this line"
ALL_RULES: FrozenSet[str] = frozenset({"*"})

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?"
)

#: token types that do not count as "code" when resolving a banner target
_NON_CODE_TOKENS = frozenset(
    {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    }
)


@dataclass(frozen=True)
class SuppressionRecord:
    """One suppression comment: where it sits and what it silences.

    ``comment_line`` is the physical line carrying the comment;
    ``target_line`` is the code line the suppression applies to (the same
    line for trailing comments, the next code line for banners).  Used by
    the unused-suppression audit (``--strict-suppressions``) to point at
    the comment itself, not the code it annotates.
    """

    comment_line: int
    target_line: int
    rules: FrozenSet[str]


def _parse_rules(comment_text: str) -> FrozenSet[str]:
    match = _SUPPRESS_RE.search(comment_text)
    if not match:
        return frozenset()
    listed = match.group("rules")
    if listed is None or not listed.strip():
        return ALL_RULES
    return frozenset(
        item.strip().upper() for item in listed.split(",") if item.strip()
    )


def parse_suppression_records(source: str) -> List[SuppressionRecord]:
    """Every suppression comment in ``source``, in order of appearance.

    A banner comment with no following code line (end of file) produces no
    record — it cannot silence anything.  Unparsable source yields no
    records (the runner reports the syntax error separately).
    """
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return []
    records: List[SuppressionRecord] = []
    #: banner comments waiting for their first code line
    pending: List[SuppressionRecord] = []
    for token in tokens:
        if token.type == tokenize.COMMENT:
            rules = _parse_rules(token.string)
            if not rules:
                continue
            lineno = token.start[0]
            prefix = token.line[: token.start[1]]
            if prefix.strip():
                # Trailing comment: applies to its own line.
                records.append(SuppressionRecord(lineno, lineno, rules))
            else:
                pending.append(SuppressionRecord(lineno, 0, rules))
        elif pending and token.type not in _NON_CODE_TOKENS:
            target = token.start[0]
            for banner in pending:
                records.append(
                    SuppressionRecord(banner.comment_line, target, banner.rules)
                )
            pending = []
    return records


def parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule ids suppressed on them."""
    suppressed: Dict[int, FrozenSet[str]] = {}
    for record in parse_suppression_records(source):
        suppressed[record.target_line] = (
            suppressed.get(record.target_line, frozenset()) | record.rules
        )
    return suppressed


def is_suppressed(
    suppressions: Dict[int, FrozenSet[str]], line: int, rule_id: str
) -> bool:
    """True when ``rule_id`` is silenced on ``line``."""
    rules = suppressions.get(line)
    if not rules:
        return False
    return rules == ALL_RULES or "*" in rules or rule_id.upper() in rules
