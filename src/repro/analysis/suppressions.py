"""Inline suppression comments: ``# repro: ignore[R001]``.

A suppression applies to findings reported on

* the physical line carrying the comment (trailing comment style), or
* the first following non-blank, non-comment line, when the comment stands
  alone (banner style for statements that do not fit on one line).

``# repro: ignore`` without a bracket list silences every rule on that line;
``# repro: ignore[R001, R004]`` silences only the listed rules.  The linter
deliberately has no file-level escape hatch — blanket exemptions belong in
the rule's scope definition, not scattered through the tree.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List

#: sentinel meaning "all rules suppressed on this line"
ALL_RULES: FrozenSet[str] = frozenset({"*"})

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?"
)
_COMMENT_ONLY_RE = re.compile(r"^\s*#")


def parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule ids suppressed on them."""
    suppressed: Dict[int, FrozenSet[str]] = {}
    lines: List[str] = source.splitlines()
    pending: List[FrozenSet[str]] = []
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        rules: FrozenSet[str] = frozenset()
        if match:
            listed = match.group("rules")
            if listed is None or not listed.strip():
                rules = ALL_RULES
            else:
                rules = frozenset(
                    item.strip().upper() for item in listed.split(",") if item.strip()
                )
        if match and _COMMENT_ONLY_RE.match(text):
            # Standalone comment: applies to the next code line.
            pending.append(rules)
            continue
        if match:
            suppressed[lineno] = suppressed.get(lineno, frozenset()) | rules
        if pending and text.strip() and not _COMMENT_ONLY_RE.match(text):
            for rules_from_banner in pending:
                suppressed[lineno] = (
                    suppressed.get(lineno, frozenset()) | rules_from_banner
                )
            pending = []
    return suppressed


def is_suppressed(
    suppressions: Dict[int, FrozenSet[str]], line: int, rule_id: str
) -> bool:
    """True when ``rule_id`` is silenced on ``line``."""
    rules = suppressions.get(line)
    if not rules:
        return False
    return rules == ALL_RULES or "*" in rules or rule_id.upper() in rules
