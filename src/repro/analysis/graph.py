"""Whole-project model: import graph, symbol table, conservative call graph.

The per-file rules (R001–R006) see one module at a time; the
interprocedural rules (R007–R011, :mod:`repro.analysis.interprocedural`)
need to reason about *reachability* — an uncounted kernel three frames
below a pool-dispatched worker is invisible per-file.  This module builds
the shared substrate:

* :func:`load_project` parses a source tree into a :class:`Project` —
  every module keyed by its dotted import name, every function and method
  keyed by its dotted qualname (``repro.core.base.KMeansAlgorithm.fit``).
* :func:`build_call_graph` derives a conservative static call graph.
  Edges carry a confidence tier:

  - **direct** — the callee is resolved through imports, module-level
    names, ``self``-method dispatch (own class, then project base
    classes, then same module), or an explicit ``Class.method`` /
    ``Class(...)`` constructor reference;
  - **fuzzy** — an attribute call ``obj.m(...)`` on an object of unknown
    type resolves to *every* project method named ``m``.  Sound for
    may-reach questions (R007 must not miss a mutation behind duck-typed
    dispatch), far too coarse for must-style rules (R008/R010/R011 stay
    on the direct tier; see docs/static_analysis.md).

* :meth:`CallGraph.condensation` condenses strongly connected components
  (Tarjan) into the DAG that the effect fixpoint and the determinism
  property test run over.
* :func:`to_dot` renders the graph with effect annotations for
  ``repro lint --graph``.

Everything here is deterministic by construction: modules, functions and
edges are kept in sorted containers so two builds over the same sources
are equal object-for-object (pinned by ``tests/test_analysis_graph.py``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.analysis.rules import ParsedModule, resolve_name

#: edge confidence tiers (see module docstring)
DIRECT = "direct"
FUZZY = "fuzzy"


def module_name_for_path(path: str) -> str:
    """Dotted import name for a repo-relative posix path.

    ``src/repro/core/base.py`` -> ``repro.core.base``; a package
    ``__init__.py`` maps to the package itself.  Leading ``src``/``lib``
    segments and any segments before the last ``src`` are dropped so the
    name matches what ``import`` sees under the repo's layout.
    """
    parts = path.split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("src"):][1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


@dataclass
class FunctionInfo:
    """One function or method in the project symbol table."""

    qualname: str  # dotted: <module>.<Class>.<name> or <module>.<name>
    module: str  # dotted module name
    path: str  # repo-relative posix path
    name: str
    node: ast.AST  # FunctionDef / AsyncFunctionDef
    lineno: int
    class_name: Optional[str] = None  # enclosing class, if a method
    nested_in: Optional[str] = None  # enclosing function qualname, if nested
    param_names: Tuple[str, ...] = ()

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def is_nested(self) -> bool:
        return self.nested_in is not None


@dataclass
class ClassInfo:
    """One class: its methods and (textual) base-class names."""

    qualname: str
    module: str
    name: str
    bases: Tuple[str, ...] = ()  # resolved dotted names where possible
    methods: Dict[str, str] = field(default_factory=dict)  # name -> qualname


@dataclass
class Project:
    """A parsed source tree plus its symbol tables."""

    modules: Dict[str, ParsedModule] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module -> imported project modules (the import graph)
    imports: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: bare method name -> sorted qualnames of every project method so named
    methods_by_name: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def functions_in_module(self, module: str) -> List[FunctionInfo]:
        return [
            info for info in self.functions.values() if info.module == module
        ]

    def resolve_dotted(self, dotted: str) -> Optional[str]:
        """Map a dotted reference to a project function qualname, following
        one level of class-constructor indirection (``pkg.Cls`` ->
        ``pkg.Cls.__init__``)."""
        if dotted in self.functions:
            return dotted
        if dotted in self.classes:
            init = self.classes[dotted].methods.get("__init__")
            return init
        return None


def _param_names(node: ast.AST) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    names += [a.arg for a in args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return tuple(names)


def _index_module(project: Project, module_name: str, module: ParsedModule) -> None:
    """Populate function/class tables for one parsed module."""

    def visit(node: ast.AST, class_name: Optional[str], enclosing: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = f"{module_name}.{class_name}" if class_name else module_name
                qualname = f"{scope}.{child.name}"
                if enclosing is not None:
                    qualname = f"{enclosing}.<locals>.{child.name}"
                project.functions[qualname] = FunctionInfo(
                    qualname=qualname,
                    module=module_name,
                    path=module.path,
                    name=child.name,
                    node=child,
                    lineno=child.lineno,
                    class_name=class_name,
                    nested_in=enclosing,
                    param_names=_param_names(child),
                )
                if class_name is not None and enclosing is None:
                    cls = project.classes[f"{module_name}.{class_name}"]
                    cls.methods[child.name] = qualname
                visit(child, None, qualname)
            elif isinstance(child, ast.ClassDef) and enclosing is None and class_name is None:
                bases = []
                for base in child.bases:
                    dotted = resolve_name(module.aliases, base)
                    if dotted is None and isinstance(base, ast.Name):
                        dotted = f"{module_name}.{base.id}"
                    if dotted is not None:
                        bases.append(dotted)
                project.classes[f"{module_name}.{child.name}"] = ClassInfo(
                    qualname=f"{module_name}.{child.name}",
                    module=module_name,
                    name=child.name,
                    bases=tuple(bases),
                )
                visit(child, child.name, None)
            else:
                visit(child, class_name, enclosing)

    visit(module.tree, None, None)


def load_project(modules: Mapping[str, ParsedModule]) -> Project:
    """Build a :class:`Project` from parsed modules keyed by repo path.

    ``modules`` maps repo-relative posix paths to :class:`ParsedModule`;
    dotted module names are derived with :func:`module_name_for_path`.
    """
    project = Project()
    for path in sorted(modules):
        module = modules[path]
        project.modules[module_name_for_path(path)] = module
    for module_name in sorted(project.modules):
        _index_module(project, module_name, project.modules[module_name])
    # Import graph: project-internal edges only.
    module_names = set(project.modules)
    for module_name in sorted(project.modules):
        tree = project.modules[module_name].tree
        imported: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name in module_names:
                        imported.add(item.name)
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                if node.module in module_names:
                    imported.add(node.module)
                for item in node.names:
                    candidate = f"{node.module}.{item.name}"
                    if candidate in module_names:
                        imported.add(candidate)
        project.imports[module_name] = tuple(sorted(imported))
    by_name: Dict[str, List[str]] = {}
    for info in project.functions.values():
        if info.is_method:
            by_name.setdefault(info.name, []).append(info.qualname)
    project.methods_by_name = {
        name: tuple(sorted(quals)) for name, quals in sorted(by_name.items())
    }
    return project


# ----------------------------------------------------------------------
# Call graph construction.
# ----------------------------------------------------------------------


@dataclass
class CallGraph:
    """Conservative static call graph over project functions.

    ``edges`` maps caller qualname to ``(callee, tier)`` pairs, sorted.
    """

    edges: Dict[str, Tuple[Tuple[str, str], ...]] = field(default_factory=dict)

    def callees(self, qualname: str, *, fuzzy: bool = False) -> List[str]:
        return [
            callee
            for callee, tier in self.edges.get(qualname, ())
            if fuzzy or tier == DIRECT
        ]

    def reachable(
        self, roots: Iterable[str], *, fuzzy: bool = False
    ) -> Dict[str, Optional[str]]:
        """BFS closure from ``roots``; returns node -> predecessor (roots
        map to None) so callers can reconstruct a witness call chain."""
        parents: Dict[str, Optional[str]] = {}
        frontier: List[str] = []
        for root in sorted(set(roots)):
            if root not in parents:
                parents[root] = None
                frontier.append(root)
        while frontier:
            next_frontier: List[str] = []
            for node in frontier:
                for callee in self.callees(node, fuzzy=fuzzy):
                    if callee not in parents:
                        parents[callee] = node
                        next_frontier.append(callee)
            frontier = next_frontier
        return parents

    def chain(self, parents: Mapping[str, Optional[str]], node: str) -> List[str]:
        """Witness call chain root -> ... -> node from a BFS parent map."""
        out = [node]
        seen = {node}
        current: Optional[str] = node
        while current is not None:
            current = parents.get(current)
            if current is None or current in seen:
                break
            out.append(current)
            seen.add(current)
        return list(reversed(out))

    def condensation(self) -> Tuple[Tuple[Tuple[str, ...], ...], Tuple[Tuple[int, int], ...]]:
        """SCC condensation (direct + fuzzy edges): sorted component tuples
        plus inter-component edges.  The result is a DAG — pinned by the
        property test — which is what makes the effect fixpoint finite."""
        nodes = sorted(
            set(self.edges)
            | {callee for pairs in self.edges.values() for callee, _ in pairs}
        )
        index_of: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        components: List[Tuple[str, ...]] = []
        component_of: Dict[str, int] = {}
        counter = [0]

        def strongconnect(start: str) -> None:
            # Iterative Tarjan (the project graph is deep enough to bust
            # the recursion limit through fit -> assignment chains).
            work: List[Tuple[str, int]] = [(start, 0)]
            while work:
                node, edge_index = work.pop()
                if edge_index == 0:
                    index_of[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                callees = self.callees(node, fuzzy=True)
                for position in range(edge_index, len(callees)):
                    callee = callees[position]
                    if callee not in index_of:
                        work.append((node, position + 1))
                        work.append((callee, 0))
                        recurse = True
                        break
                    if callee in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[callee])
                if recurse:
                    continue
                if lowlink[node] == index_of[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        component_of[member] = len(components)
                        if member == node:
                            break
                    components.append(tuple(sorted(component)))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])

        for node in nodes:
            if node not in index_of:
                strongconnect(node)
        edge_set: Set[Tuple[int, int]] = set()
        for caller, pairs in self.edges.items():
            for callee, _tier in pairs:
                a, b = component_of[caller], component_of[callee]
                if a != b:
                    edge_set.add((a, b))
        return tuple(components), tuple(sorted(edge_set))


def _mro_method(project: Project, class_qualname: str, method: str, depth: int = 0) -> Optional[str]:
    """Resolve ``method`` on a class or its project-resolvable bases."""
    if depth > 16 or class_qualname not in project.classes:
        return None
    cls = project.classes[class_qualname]
    if method in cls.methods:
        return cls.methods[method]
    for base in cls.bases:
        found = _mro_method(project, base, method, depth + 1)
        if found is not None:
            return found
    return None


def resolve_call(
    project: Project,
    module_name: str,
    caller: FunctionInfo,
    call: ast.Call,
) -> List[Tuple[str, str]]:
    """Resolve one call expression to ``(callee_qualname, tier)`` pairs."""
    module = project.modules[module_name]
    func = call.func
    out: List[Tuple[str, str]] = []

    dotted = resolve_name(module.aliases, func)
    if dotted is not None:
        resolved = project.resolve_dotted(dotted)
        if resolved is not None:
            return [(resolved, DIRECT)]

    if isinstance(func, ast.Name):
        # Same-module function or class (not routed through an import).
        local = project.resolve_dotted(f"{module_name}.{func.id}")
        if local is not None:
            return [(local, DIRECT)]
        return []

    if isinstance(func, ast.Attribute):
        receiver = func.value
        method = func.attr
        if isinstance(receiver, ast.Name):
            if receiver.id == "self" and caller.class_name is not None:
                own = _mro_method(
                    project, f"{caller.module}.{caller.class_name}", method
                )
                if own is not None:
                    return [(own, DIRECT)]
            # Class-qualified call: Cls.method(...)
            receiver_dotted = resolve_name(module.aliases, receiver)
            candidates = [f"{module_name}.{receiver.id}"]
            if receiver_dotted is not None:
                candidates.append(receiver_dotted)
            for candidate in candidates:
                if candidate in project.classes:
                    found = _mro_method(project, candidate, method)
                    if found is not None:
                        return [(found, DIRECT)]
        # Unknown receiver: every project method of that name, fuzzily.
        for qualname in project.methods_by_name.get(method, ()):
            out.append((qualname, FUZZY))
    return out


def build_call_graph(project: Project) -> CallGraph:
    """Derive the conservative call graph for ``project``."""
    edges: Dict[str, Set[Tuple[str, str]]] = {}
    for qualname in sorted(project.functions):
        info = project.functions[qualname]
        collected: Set[Tuple[str, str]] = set()
        for node in ast.walk(info.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not info.node:
                continue  # nested defs are their own graph nodes
            if isinstance(node, ast.Call):
                for callee, tier in resolve_call(project, info.module, info, node):
                    if callee != qualname:
                        collected.add((callee, tier))
        # A direct edge subsumes a fuzzy edge to the same callee.
        directs = {callee for callee, tier in collected if tier == DIRECT}
        collected = {
            (callee, tier)
            for callee, tier in collected
            if tier == DIRECT or callee not in directs
        }
        edges[qualname] = collected
    return CallGraph(
        edges={qual: tuple(sorted(pairs)) for qual, pairs in edges.items()}
    )


# ----------------------------------------------------------------------
# DOT rendering.
# ----------------------------------------------------------------------


def to_dot(
    project: Project,
    graph: CallGraph,
    effects: Optional[Mapping[str, FrozenSet[str]]] = None,
    *,
    include_fuzzy: bool = False,
) -> str:
    """Render the call graph as GraphViz DOT, one cluster per module.

    Effect labels (from :mod:`repro.analysis.effects`) are appended to
    node labels; fuzzy edges are dashed when included.
    """
    effects = effects or {}
    lines = [
        "digraph repro_calls {",
        "  rankdir=LR;",
        '  node [shape=box, fontsize=10, fontname="monospace"];',
    ]
    by_module: Dict[str, List[str]] = {}
    for qualname in sorted(project.functions):
        by_module.setdefault(project.functions[qualname].module, []).append(qualname)
    for cluster_index, module_name in enumerate(sorted(by_module)):
        lines.append(f'  subgraph "cluster_{cluster_index}" {{')
        lines.append(f'    label="{module_name}";')
        for qualname in by_module[module_name]:
            short = qualname[len(module_name) + 1:] if qualname.startswith(module_name + ".") else qualname
            labels = sorted(effects.get(qualname, ()))
            suffix = ("\\n[" + ", ".join(labels) + "]") if labels else ""
            lines.append(f'    "{qualname}" [label="{short}{suffix}"];')
        lines.append("  }")
    for caller in sorted(graph.edges):
        for callee, tier in graph.edges[caller]:
            if tier == FUZZY and not include_fuzzy:
                continue
            style = ' [style=dashed, color=gray]' if tier == FUZZY else ""
            lines.append(f'  "{caller}" -> "{callee}"{style};')
    lines.append("}")
    return "\n".join(lines) + "\n"
