"""Walk files, run rules, apply suppressions and the baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.rules import ParsedModule, Rule, get_rules
from repro.analysis.suppressions import is_suppressed, parse_suppressions

#: directory names never descended into
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "build", "dist", ".eggs"}


@dataclass
class AnalysisReport:
    """Outcome of one analysis run."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through)."""
    for path in paths:
        path = Path(path)
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    yield candidate


def _relative_posix(path: Path, root: Optional[Path]) -> str:
    path = Path(path)
    if root is not None:
        try:
            path = path.resolve().relative_to(Path(root).resolve())
        except ValueError:
            pass
    return path.as_posix()


def analyze_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Analyze one in-memory module; ``path`` drives rule scoping.

    Inline suppressions are honored; baseline filtering is the caller's
    concern.  Raises ``SyntaxError`` on unparsable source.
    """
    module = ParsedModule.parse(path, source)
    suppressions = parse_suppressions(source)
    active = list(rules) if rules is not None else get_rules()
    findings: List[Finding] = []
    for rule in active:
        if not rule.applies_to(path):
            continue
        for finding in rule.check(module):
            if not is_suppressed(suppressions, finding.line, finding.rule_id):
                findings.append(finding)
    findings.sort()
    return findings


def analyze_paths(
    paths: Sequence[Path],
    *,
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> AnalysisReport:
    """Analyze every python file under ``paths`` and aggregate a report."""
    active = list(rules) if rules is not None else get_rules()
    report = AnalysisReport()
    collected: List[Finding] = []
    for file_path in iter_python_files(paths):
        relpath = _relative_posix(file_path, root)
        try:
            source = file_path.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            report.parse_errors.append(f"{relpath}: unreadable ({exc})")
            continue
        report.files_scanned += 1
        try:
            module = ParsedModule.parse(relpath, source)
        except SyntaxError as exc:
            report.parse_errors.append(f"{relpath}:{exc.lineno}: {exc.msg}")
            continue
        suppressions = parse_suppressions(source)
        for rule in active:
            if not rule.applies_to(relpath):
                continue
            for finding in rule.check(module):
                if is_suppressed(suppressions, finding.line, finding.rule_id):
                    report.suppressed += 1
                else:
                    collected.append(finding)
    collected.sort()
    if baseline is not None:
        collected, absorbed = baseline.filter(collected)
        report.baselined = absorbed
    report.findings = collected
    return report
