"""Walk files, run rules (per-module and whole-project), apply
suppressions and the baseline, and audit suppression usage.

Per-module rules (R001–R006) run file by file.  When any
:class:`~repro.analysis.rules.ProjectRule` (R007–R011) is active, the
parsed modules are additionally assembled into a
:class:`~repro.analysis.graph.Project`, the conservative call graph and
effect tables are built once, and each project rule runs over them.
Project-rule findings carry ordinary (path, line) locations, so the same
inline suppressions and baseline apply.

Because the graph/effects build dominates the cost on large trees, it can
be cached: ``cache_dir`` stores the project-phase findings keyed by a
digest of every source file plus the active rule ids, so an unchanged
tree re-lints at per-module speed (the CI job wires this up).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.rules import ParsedModule, ProjectRule, Rule, get_rules
from repro.analysis.suppressions import (
    ALL_RULES,
    is_suppressed,
    parse_suppression_records,
    parse_suppressions,
)

#: directory names never descended into
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "build", "dist", ".eggs"}

#: bump when the cached project-phase payload shape changes
_CACHE_VERSION = 1


@dataclass(frozen=True)
class UnusedSuppression:
    """A ``# repro: ignore[...]`` comment that silenced nothing."""

    path: str
    comment_line: int
    target_line: int
    rule_ids: Tuple[str, ...]  # ("*",) for a bare ignore

    def format(self) -> str:
        listed = ", ".join(self.rule_ids)
        return (
            f"{self.path}:{self.comment_line}: unused suppression [{listed}] "
            f"(no such finding on line {self.target_line})"
        )


@dataclass
class AnalysisReport:
    """Outcome of one analysis run."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0
    parse_errors: List[str] = field(default_factory=list)
    unused_suppressions: List[UnusedSuppression] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def strict_ok(self) -> bool:
        """`ok` plus the suppression audit: no unused suppressions."""
        return self.ok and not self.unused_suppressions


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through)."""
    for path in paths:
        path = Path(path)
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    yield candidate


def _relative_posix(path: Path, root: Optional[Path]) -> str:
    path = Path(path)
    if root is not None:
        try:
            path = path.resolve().relative_to(Path(root).resolve())
        except ValueError:
            pass
    return path.as_posix()


def _split_rules(
    rules: Optional[Sequence[Rule]],
) -> Tuple[List[Rule], List[ProjectRule]]:
    active = list(rules) if rules is not None else get_rules()
    per_module = [rule for rule in active if not isinstance(rule, ProjectRule)]
    project = [rule for rule in active if isinstance(rule, ProjectRule)]
    return per_module, project


def _run_project_rules(
    rules: Sequence[ProjectRule],
    modules: Dict[str, ParsedModule],
):
    """Build the project substrate and run every project rule over it."""
    from repro.analysis.effects import compute_direct_effects
    from repro.analysis.graph import build_call_graph, load_project

    project = load_project(modules)
    graph = build_call_graph(project)
    direct = compute_direct_effects(project)
    for rule in rules:
        for finding in rule.check_project(project, graph, direct):
            yield finding


def analyze_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Analyze one in-memory module; ``path`` drives rule scoping.

    Inline suppressions are honored; baseline filtering is the caller's
    concern.  Project rules (R007–R011) run against a single-module
    project, so only intra-module reachability is visible here — use
    :func:`analyze_paths` for cross-module analysis.  Raises
    ``SyntaxError`` on unparsable source.
    """
    module = ParsedModule.parse(path, source)
    suppressions = parse_suppressions(source)
    per_module, project_rules = _split_rules(rules)
    findings: List[Finding] = []
    for rule in per_module:
        if not rule.applies_to(path):
            continue
        for finding in rule.check(module):
            if not is_suppressed(suppressions, finding.line, finding.rule_id):
                findings.append(finding)
    if project_rules:
        for finding in _run_project_rules(project_rules, {path: module}):
            if not is_suppressed(suppressions, finding.line, finding.rule_id):
                findings.append(finding)
    findings.sort()
    return findings


def _source_digest(
    modules_source: Dict[str, str], project_rule_ids: Sequence[str]
) -> str:
    digest = hashlib.sha256()
    digest.update(f"v{_CACHE_VERSION}".encode())
    for rule_id in sorted(project_rule_ids):
        digest.update(rule_id.encode())
    for path in sorted(modules_source):
        digest.update(path.encode())
        digest.update(b"\0")
        digest.update(modules_source[path].encode())
        digest.update(b"\0")
    return digest.hexdigest()[:32]


def _cache_load(cache_dir: Path, digest: str) -> Optional[Dict]:
    cache_file = Path(cache_dir) / f"project-{digest}.json"
    if not cache_file.exists():
        return None
    try:
        payload = json.loads(cache_file.read_text())
    except (OSError, ValueError):
        return None
    if payload.get("version") != _CACHE_VERSION:
        return None
    return payload


def _cache_store(
    cache_dir: Path,
    digest: str,
    findings: Sequence[Finding],
    suppressed: int,
    used: Set[Tuple[str, int, str]],
) -> None:
    cache_dir = Path(cache_dir)
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": _CACHE_VERSION,
            "findings": [finding.as_dict() for finding in findings],
            "suppressed": suppressed,
            "used": sorted(list(item) for item in used),
        }
        (cache_dir / f"project-{digest}.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
    except OSError:
        pass  # caching is best-effort; the analysis result is unaffected


def _finding_from_dict(item: Dict) -> Finding:
    return Finding(
        path=item["path"],
        line=int(item["line"]),
        col=int(item["col"]),
        rule_id=item["rule"],
        message=item["message"],
        snippet=item.get("snippet", ""),
    )


def analyze_paths(
    paths: Sequence[Path],
    *,
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
    cache_dir: Optional[Path] = None,
) -> AnalysisReport:
    """Analyze every python file under ``paths`` and aggregate a report."""
    per_module, project_rules = _split_rules(rules)
    report = AnalysisReport()
    collected: List[Finding] = []
    modules: Dict[str, ParsedModule] = {}
    sources: Dict[str, str] = {}
    suppression_maps: Dict[str, Dict[int, FrozenSet[str]]] = {}
    #: (path, target_line, rule_id) triples that silenced a finding
    used: Set[Tuple[str, int, str]] = set()

    def mark_used(path: str, line: int, rule_id: str) -> None:
        rules_on_line = suppression_maps.get(path, {}).get(line, frozenset())
        if rules_on_line == ALL_RULES or "*" in rules_on_line:
            used.add((path, line, "*"))
        if rule_id.upper() in rules_on_line:
            used.add((path, line, rule_id.upper()))

    for file_path in iter_python_files(paths):
        relpath = _relative_posix(file_path, root)
        try:
            source = file_path.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            report.parse_errors.append(f"{relpath}: unreadable ({exc})")
            continue
        report.files_scanned += 1
        try:
            module = ParsedModule.parse(relpath, source)
        except SyntaxError as exc:
            report.parse_errors.append(f"{relpath}:{exc.lineno}: {exc.msg}")
            continue
        modules[relpath] = module
        sources[relpath] = source
        suppression_maps[relpath] = parse_suppressions(source)
        for rule in per_module:
            if not rule.applies_to(relpath):
                continue
            for finding in rule.check(module):
                if is_suppressed(
                    suppression_maps[relpath], finding.line, finding.rule_id
                ):
                    report.suppressed += 1
                    mark_used(relpath, finding.line, finding.rule_id)
                else:
                    collected.append(finding)

    if project_rules and modules:
        rule_ids = [rule.rule_id for rule in project_rules]
        cached = None
        digest = None
        if cache_dir is not None:
            digest = _source_digest(sources, rule_ids)
            cached = _cache_load(Path(cache_dir), digest)
        if cached is not None:
            collected.extend(
                _finding_from_dict(item) for item in cached["findings"]
            )
            report.suppressed += int(cached.get("suppressed", 0))
            for path, line, rule_id in cached.get("used", []):
                used.add((path, int(line), rule_id))
        else:
            project_findings: List[Finding] = []
            project_suppressed = 0
            project_used: Set[Tuple[str, int, str]] = set()
            for finding in _run_project_rules(project_rules, modules):
                suppressions = suppression_maps.get(finding.path, {})
                if is_suppressed(suppressions, finding.line, finding.rule_id):
                    project_suppressed += 1
                    before = set(used)
                    mark_used(finding.path, finding.line, finding.rule_id)
                    project_used |= used - before
                else:
                    project_findings.append(finding)
            collected.extend(project_findings)
            report.suppressed += project_suppressed
            if cache_dir is not None and digest is not None:
                _cache_store(
                    Path(cache_dir), digest,
                    sorted(project_findings), project_suppressed, project_used,
                )

    # Suppression audit: comments that silenced nothing are stale.
    for relpath in sorted(sources):
        for record in parse_suppression_records(sources[relpath]):
            if record.rules == ALL_RULES:
                if (relpath, record.target_line, "*") not in used:
                    report.unused_suppressions.append(
                        UnusedSuppression(
                            relpath, record.comment_line, record.target_line, ("*",)
                        )
                    )
                continue
            stale = tuple(
                sorted(
                    rule_id
                    for rule_id in record.rules
                    if (relpath, record.target_line, rule_id) not in used
                )
            )
            if stale:
                report.unused_suppressions.append(
                    UnusedSuppression(
                        relpath, record.comment_line, record.target_line, stale
                    )
                )

    collected.sort()
    if baseline is not None:
        collected, absorbed = baseline.filter(collected)
        report.baselined = absorbed
    report.findings = collected
    return report


def load_project_from_paths(
    paths: Sequence[Path], *, root: Optional[Path] = None
):
    """Parse ``paths`` into (Project, CallGraph, DirectEffects,
    transitive-effects) — the substrate behind ``repro lint --graph``."""
    from repro.analysis.effects import compute_direct_effects, propagate_effects
    from repro.analysis.graph import build_call_graph, load_project

    modules: Dict[str, ParsedModule] = {}
    for file_path in iter_python_files(paths):
        relpath = _relative_posix(file_path, root)
        try:
            source = file_path.read_text()
            modules[relpath] = ParsedModule.parse(relpath, source)
        except (OSError, UnicodeDecodeError, SyntaxError):
            continue
    project = load_project(modules)
    graph = build_call_graph(project)
    direct = compute_direct_effects(project)
    transitive = propagate_effects(direct, graph)
    return project, graph, direct, transitive
