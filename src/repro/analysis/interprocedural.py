"""Interprocedural rules R007–R012: effects lifted through the call graph.

These rules consume the whole-project substrate (:mod:`.graph`,
:mod:`.effects`) and prove the disciplines the sharded data-parallel
engine and the pluggable backend layer will depend on *before that code
exists* — a worker that mutates module state, an uncounted kernel behind
a helper call, or an order-sensitive float merge cannot be seen one file
at a time.

Reachability semantics (documented in docs/static_analysis.md):

* R007 traverses **direct + fuzzy** edges — a may-reach question must
  not miss a mutation behind duck-typed dispatch, so it accepts the
  fuzzy tier's over-approximation.
* R008, R010 and R011 traverse **direct** edges only — they assert a
  discipline about code the author actually wired together; fuzzy edges
  would drown them in every same-named method in the project.
* R009 and R012 are intraprocedural dataflow (provenance inside one
  function); they live here because they share the project walk.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.effects import (
    MUTATES_GLOBAL,
    RNG_METHODS,
    DirectEffects,
    is_rng_shaped_name,
)
from repro.analysis.findings import Finding
from repro.analysis.graph import CallGraph, FunctionInfo, Project
from repro.analysis.rules import (
    CounterDisciplineRule,
    ParsedModule,
    ProjectRule,
    _in_instrumented_scope,
    register,
    resolve_name,
)
from repro.analysis.suppressions import is_suppressed, parse_suppressions

#: resolved-name suffixes recognized as pool-dispatch entry points
POOL_DISPATCH_SUFFIXES = ("supervised_map", "supervised_call")

#: module-level registry literals whose values are pool-dispatched
#: indirectly (the sharded engine looks kernels up by name inside the
#: worker, so the dispatch call site never names them — the registry is
#: the ground truth for what runs in a worker process).  POOL_HANDLERS
#: holds the persistent pool's command handlers: every entry is a
#: long-lived worker's dispatch root, same contract.
POOL_REGISTRY_NAMES = frozenset({"SHARD_KERNELS", "POOL_HANDLERS"})

#: bare function names treated as shard-merge sinks by R011
MERGE_SINK_NAMES = frozenset({"accumulate_cluster_sums"})
MERGE_SINK_PREFIXES = ("merge_",)


def _module_finding(
    rule, module: ParsedModule, line: int, col: int, message: str
) -> Finding:
    return Finding(
        path=module.path,
        line=line,
        col=col + 1,
        rule_id=rule.rule_id,
        message=message,
        snippet=module.snippet(line),
    )


def _short(qualname: str) -> str:
    """Trim a dotted qualname for messages: keep the last three segments."""
    parts = qualname.split(".")
    return ".".join(parts[-3:]) if len(parts) > 3 else qualname


def _format_chain(chain: Sequence[str]) -> str:
    return " -> ".join(_short(q) for q in chain)


# ----------------------------------------------------------------------
# R007 — parallel-safety.
# ----------------------------------------------------------------------


@register
class ParallelSafetyRule(ProjectRule):
    """Anything dispatched to the supervised process pool must be pickle-
    safe and free of transitive module-global mutation.

    The pool (:func:`repro.eval.runtime.supervised_map`) forks/spawns a
    worker per item: a lambda or nested closure cannot pickle by
    reference, and a module-global mutated three frames down is silently
    lost when the worker exits (fork) or never shared (spawn) — the
    sharded engine inherits whichever failure mode the platform picks.
    This rule finds every dispatch site, resolves the dispatched
    callable, and walks the conservative call graph (direct **and**
    fuzzy edges) from it.

    Dispatch sites are the pool entry points
    (:data:`POOL_DISPATCH_SUFFIXES`), ``Process(target=...)`` /
    ``Thread(target=...)`` constructions (the serving micro-batcher's
    worker is a thread target — shared memory, same races), and the
    entries of pool-kernel registries (:data:`POOL_REGISTRY_NAMES`).
    """

    rule_id = "R007"
    name = "parallel-safety"
    description = (
        "pool-dispatched callable is unpicklable or transitively mutates "
        "module-global state"
    )

    def check_project(
        self, project: Project, graph: CallGraph, direct: DirectEffects
    ) -> Iterator[Finding]:
        reported: Set[Tuple[str, str]] = set()
        for site in _dispatch_sites(project):
            module = project.modules[site.module]
            if site.kind == "lambda":
                yield _module_finding(
                    self, module, site.line, site.col,
                    "lambda dispatched to the process pool cannot pickle; "
                    "use a module-level function",
                )
                continue
            if site.kind == "nested":
                yield _module_finding(
                    self, module, site.line, site.col,
                    f"nested function {site.root_name!r} dispatched to the "
                    "process pool is an unpicklable closure; hoist it to "
                    "module level",
                )
                # closures still get the reachability check below
            if site.root is None:
                continue
            parents = graph.reachable([site.root], fuzzy=True)
            for reached in sorted(parents):
                if MUTATES_GLOBAL not in direct.get(reached):
                    continue
                if (site.root, reached) in reported:
                    continue
                reported.add((site.root, reached))
                info = project.functions[reached]
                chain = graph.chain(parents, reached)
                yield _module_finding(
                    self,
                    project.modules[info.module],
                    info.lineno,
                    0,
                    f"{info.name!r} mutates module-global state and is "
                    f"reachable from pool dispatch at {site.where} "
                    f"(chain: {_format_chain(chain)}); worker-side global "
                    "mutation is lost or racy under process dispatch",
                )


class _DispatchSite:
    def __init__(
        self,
        module: str,
        line: int,
        col: int,
        kind: str,
        root: Optional[str],
        root_name: str,
        where: str,
    ) -> None:
        self.module = module
        self.line = line
        self.col = col
        self.kind = kind  # "function" | "lambda" | "nested"
        self.root = root  # resolved qualname of the dispatched callable
        self.root_name = root_name
        self.where = where


def _dispatch_sites(project: Project) -> List[_DispatchSite]:
    """Every pool-dispatch call site with its resolved callable.

    Includes the entries of pool-kernel *registries*
    (:data:`POOL_REGISTRY_NAMES`): a worker that looks its kernel up by
    name at run time hides the callable from every call-site scan, so the
    registry literal itself is treated as a dispatch site per entry.
    """
    sites: List[_DispatchSite] = []
    for module_name in sorted(project.modules):
        module = project.modules[module_name]
        sites.extend(_registry_sites(project, module_name, module))
        # Deepest containers first: a call inside a nested function must be
        # attributed to that function (so name resolution sees its locals),
        # not to the enclosing def or the module walk that also reaches it.
        containers: List[Tuple[Optional[FunctionInfo], ast.AST]] = [
            (info, info.node)
            for info in sorted(
                project.functions_in_module(module_name),
                key=lambda i: (-i.qualname.count(".<locals>."), i.qualname),
            )
        ]
        containers.append((None, module.tree))
        seen_calls: Set[int] = set()
        for info, tree in containers:
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call) or id(node) in seen_calls:
                    continue
                target_expr = _dispatched_callable(module, node)
                if target_expr is None:
                    continue
                seen_calls.add(id(node))
                where = f"{module.path}:{node.lineno}"
                if isinstance(target_expr, ast.Lambda):
                    sites.append(
                        _DispatchSite(
                            module_name, node.lineno, node.col_offset,
                            "lambda", None, "<lambda>", where,
                        )
                    )
                    continue
                root, kind, root_name = _resolve_callable(
                    project, module_name, info, target_expr
                )
                if kind == "skip":
                    continue
                sites.append(
                    _DispatchSite(
                        module_name, node.lineno, node.col_offset,
                        kind, root, root_name, where,
                    )
                )
    return sites


def _registry_sites(
    project: Project, module_name: str, module: ParsedModule
) -> List[_DispatchSite]:
    """Dispatch sites for module-level pool-kernel registry literals."""
    sites: List[_DispatchSite] = []
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        named = any(
            isinstance(t, ast.Name) and t.id in POOL_REGISTRY_NAMES
            for t in targets
        )
        if not named:
            continue
        if isinstance(value, ast.Dict):
            entries = list(value.values)
        elif isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            entries = list(value.elts)
        else:
            continue
        for entry in entries:
            where = f"{module.path}:{entry.lineno} (pool-kernel registry)"
            if isinstance(entry, ast.Lambda):
                sites.append(
                    _DispatchSite(
                        module_name, entry.lineno, entry.col_offset,
                        "lambda", None, "<lambda>", where,
                    )
                )
                continue
            root, kind, root_name = _resolve_callable(
                project, module_name, None, entry
            )
            if kind == "skip":
                continue
            sites.append(
                _DispatchSite(
                    module_name, entry.lineno, entry.col_offset,
                    kind, root, root_name, where,
                )
            )
    return sites


def _dispatched_callable(module: ParsedModule, call: ast.Call) -> Optional[ast.AST]:
    """The callable expression a pool-dispatch call ships, or None."""
    resolved = resolve_name(module.aliases, call.func)
    name = None
    if resolved is not None:
        name = resolved.rsplit(".", 1)[-1]
    elif isinstance(call.func, ast.Attribute):
        name = call.func.attr
    elif isinstance(call.func, ast.Name):
        name = call.func.id
    if name in POOL_DISPATCH_SUFFIXES:
        if call.args:
            return call.args[0]
        for keyword in call.keywords:
            if keyword.arg == "fn":
                return keyword.value
        return None
    if name in ("Process", "Thread"):
        # Both ship a callable into another execution context via
        # target=; threads share memory, so a thread target that mutates
        # module globals races exactly like a pool kernel would (the
        # serving micro-batcher dispatches its worker this way).
        for keyword in call.keywords:
            if keyword.arg == "target":
                return keyword.value
    return None


def _resolve_callable(
    project: Project,
    module_name: str,
    enclosing: Optional[FunctionInfo],
    expr: ast.AST,
) -> Tuple[Optional[str], str, str]:
    """Resolve a dispatched callable expression to (qualname, kind, name)."""
    module = project.modules[module_name]
    if isinstance(expr, ast.Name):
        if enclosing is not None:
            nested = f"{enclosing.qualname}.<locals>.{expr.id}"
            if nested in project.functions:
                return nested, "nested", expr.id
        dotted = resolve_name(module.aliases, expr)
        for candidate in filter(None, (dotted, f"{module_name}.{expr.id}")):
            resolved = project.resolve_dotted(candidate)
            if resolved is not None:
                kind = (
                    "nested" if project.functions[resolved].is_nested else "function"
                )
                return resolved, kind, expr.id
        return None, "skip", expr.id  # a parameter / external callable
    if isinstance(expr, ast.Attribute):
        dotted = resolve_name(module.aliases, expr)
        if dotted is not None:
            resolved = project.resolve_dotted(dotted)
            if resolved is not None:
                return resolved, "function", expr.attr
        return None, "skip", expr.attr
    return None, "skip", "<expr>"


# ----------------------------------------------------------------------
# R008 — backend-purity.
# ----------------------------------------------------------------------

#: NumPy functions that belong to the managed array-math surface of the
#: array-backend manager (repro.backend).  Inside a BACKEND_ROUTED module
#: these must be called as ``bm.<op>`` so accelerator backends can supply
#: the implementation; a direct ``np.<op>`` call silently pins the numpy
#: path and bypasses the two-tier conformance contract.
MANAGED_NUMPY_OPS = frozenset({
    "argmax",
    "argmin",
    "argpartition",
    "bincount",
    "dot",
    "einsum",
    "inner",
    "matmul",
    "partition",
    "tensordot",
    "vdot",
})

#: ndarray *method* spellings of managed ops (``dists.argmin(axis=1)``):
#: the receiver is usually a local array the resolver cannot type, so
#: these attribute names are flagged by name inside routed modules unless
#: the receiver resolves into ``repro.backend``
MANAGED_ARRAY_METHODS = frozenset({"argmax", "argmin"})

#: resolved-name prefix of the manager itself — calls through it are the
#: sanctioned spelling
_BACKEND_MANAGER_PREFIX = "repro.backend"


@register
class BackendPurityRule(ProjectRule):
    """Backend-routed modules must keep every distance evaluation inside
    the counted kernels of :mod:`repro.common.distance` — including the
    ones hidden behind helper calls — and every managed array op behind
    the array-backend manager.

    A module opts in by declaring ``BACKEND_ROUTED = True`` at top level
    (the vectorized execution modules do).  Within such a module, any
    function whose *transitive* effect set (direct call edges) contains
    ``uncounted-distance`` is flagged: directly offending expressions are
    reported at their own line, inherited ones at the function definition
    with a witness chain to the raw arithmetic.

    The array-math check (added with the pluggable array-backend layer)
    additionally flags direct calls to managed NumPy ops
    (:data:`MANAGED_NUMPY_OPS`, e.g. ``np.argmin`` / ``np.bincount`` /
    ``np.matmul``) and their ndarray-method spellings
    (:data:`MANAGED_ARRAY_METHODS`) inside routed modules: those must go
    through ``repro.backend.backend_manager`` (``bm.<op>``) so the active
    array backend — not the call site — decides the implementation.  The
    kernel layer ``repro.common.distance`` and the adapters under
    ``repro/backend/`` are exempt: they *are* the implementations the
    manager routes to.
    """

    rule_id = "R008"
    name = "backend-purity"
    description = (
        "backend-routed module reaches raw distance arithmetic outside "
        "the counted kernels in repro.common.distance"
    )

    def check_project(
        self, project: Project, graph: CallGraph, direct: DirectEffects
    ) -> Iterator[Finding]:
        routed = sorted(
            name for name, module in project.modules.items()
            if _declares_backend_routed(module.tree)
        )
        if not routed:
            return
        for module_name in routed:
            module = project.modules[module_name]
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                message = _managed_op_violation(module, node)
                if message is not None:
                    yield _module_finding(
                        self, module, node.lineno, node.col_offset, message
                    )
        routed_set = set(routed)
        for qualname in sorted(project.functions):
            info = project.functions[qualname]
            if info.module not in routed_set:
                continue
            module = project.modules[info.module]
            sites = direct.distance_sites.get(qualname, ())
            for site in sites:
                yield _module_finding(
                    self, module, site.line, site.col - 1,
                    f"backend-routed module: {site.message}",
                )
            if sites:
                continue
            # Inherited: walk direct edges for a callee with the effect.
            parents = graph.reachable([qualname], fuzzy=False)
            witnesses = [
                reached
                for reached in sorted(parents)
                if direct.distance_sites.get(reached)
            ]
            if witnesses:
                witness = witnesses[0]
                evidence = direct.distance_sites[witness][0]
                chain = graph.chain(parents, witness)
                yield _module_finding(
                    self, module, info.lineno, 0,
                    f"{info.name!r} reaches uncounted distance arithmetic "
                    f"via {_format_chain(chain)} "
                    f"({project.functions[witness].path}:{evidence.line}); "
                    "route it through repro.common.distance",
                )


def _managed_op_violation(module: ParsedModule, call: ast.Call) -> Optional[str]:
    """Message when ``call`` is managed array math bypassing the manager."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    resolved = resolve_name(module.aliases, func)
    if resolved is not None:
        if resolved.startswith(_BACKEND_MANAGER_PREFIX + "."):
            return None
        root, _, op = resolved.rpartition(".")
        if root == "numpy" and op in MANAGED_NUMPY_OPS:
            return (
                f"backend-routed module: managed array op numpy.{op} must "
                "go through the array-backend manager "
                f"(repro.backend: bm.{op})"
            )
        return None
    if func.attr in MANAGED_ARRAY_METHODS:
        return (
            f"backend-routed module: array method .{func.attr}() is a "
            "managed op; call it through the array-backend manager "
            f"(repro.backend: bm.{func.attr})"
        )
    return None


def _declares_backend_routed(tree: ast.AST) -> bool:
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "BACKEND_ROUTED"
                    and isinstance(node.value, ast.Constant)
                    and node.value.value is True
                ):
                    return True
    return False


# ----------------------------------------------------------------------
# R009 — rng-provenance.
# ----------------------------------------------------------------------


@register
class RngProvenanceRule(ProjectRule):
    """Every RNG use must trace back to an explicitly passed seed or
    Generator parameter.

    R002 bans the process-global RNG; R009 closes the remaining leaks:
    a generator seeded from a hard-coded constant (the caller can no
    longer control the stream), a generator acquired from *nothing*
    (``ensure_rng()`` with no argument), and draws from a module-level
    generator object.  Provenance is a small forward dataflow inside each
    function: parameters (and ``self``) are provenance-carrying roots;
    locals assigned from provenance-carrying expressions inherit it.
    """

    rule_id = "R009"
    name = "rng-provenance"
    description = (
        "RNG acquired or drawn from something other than an explicitly "
        "passed seed/Generator parameter"
    )

    _ACQUIRERS = ("ensure_rng", "spawn_rng", "default_rng")

    def check_project(
        self, project: Project, graph: CallGraph, direct: DirectEffects
    ) -> Iterator[Finding]:
        for qualname in sorted(project.functions):
            info = project.functions[qualname]
            if info.path.endswith("repro/common/rng.py"):
                continue
            module = project.modules[info.module]
            yield from self._check_function(module, info)

    def _check_function(
        self, module: ParsedModule, info: FunctionInfo
    ) -> Iterator[Finding]:
        ok = _provenance_locals(module, info)
        for node in _body_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            acquirer = self._acquisition_name(module, node)
            if acquirer is not None:
                yield from self._check_acquisition(module, info, node, acquirer, ok)
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in RNG_METHODS:
                receiver = func.value
                if not _is_rng_shaped(receiver):
                    continue
                root = _root_name_of(receiver)
                if root is None or root in ok:
                    continue
                yield _module_finding(
                    self, module, node.lineno, node.col_offset,
                    f"RNG draw .{func.attr}() on {root!r}, which does not "
                    "derive from a passed seed/Generator parameter; thread "
                    "the generator through explicitly",
                )

    def _acquisition_name(
        self, module: ParsedModule, call: ast.Call
    ) -> Optional[str]:
        resolved = resolve_name(module.aliases, call.func)
        if resolved is not None:
            tail = resolved.rsplit(".", 1)[-1]
            if tail in self._ACQUIRERS and (
                tail != "default_rng" or resolved.startswith("numpy.random")
            ):
                return tail
        elif isinstance(call.func, ast.Name) and call.func.id in (
            "ensure_rng", "spawn_rng",
        ):
            return call.func.id
        return None

    def _check_acquisition(
        self,
        module: ParsedModule,
        info: FunctionInfo,
        call: ast.Call,
        acquirer: str,
        ok: Set[str],
    ) -> Iterator[Finding]:
        if not call.args and not call.keywords:
            if acquirer == "default_rng":
                return  # unseeded default_rng() is R002's finding already
            yield _module_finding(
                self, module, call.lineno, call.col_offset,
                f"{acquirer}() acquires a generator from nothing; accept and "
                "pass through an explicit seed/Generator parameter",
            )
            return
        seed_expr = call.args[0] if call.args else call.keywords[0].value
        if isinstance(seed_expr, ast.Constant) and seed_expr.value is not None:
            yield _module_finding(
                self, module, call.lineno, call.col_offset,
                f"{acquirer}({seed_expr.value!r}) hard-codes the seed; the "
                "stream is no longer caller-controlled — accept a seed "
                "parameter instead",
            )
            return
        roots = _name_roots(seed_expr)
        bad = sorted(root for root in roots if root not in ok)
        if bad:
            yield _module_finding(
                self, module, call.lineno, call.col_offset,
                f"{acquirer}(...) seeded from {', '.join(repr(b) for b in bad)}"
                ", which does not derive from a passed seed/Generator "
                "parameter",
            )


def _body_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Function body nodes, excluding nested function/lambda bodies."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _root_name_of(node: ast.AST) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_rng_shaped(receiver: ast.AST) -> bool:
    node = receiver
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute) and is_rng_shaped_name(node.attr):
            return True
        node = node.value
    return isinstance(node, ast.Name) and is_rng_shaped_name(node.id)


def _name_roots(expr: ast.AST) -> Set[str]:
    """Base names an expression's *data* depends on (call args, not the
    callee itself)."""
    roots: Set[str] = set()

    def visit(node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            for arg in node.args:
                visit(arg)
            for keyword in node.keywords:
                visit(keyword.value)
            return
        if isinstance(node, ast.Name):
            roots.add(node.id)
            return
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            root = _root_name_of(node)
            if root is not None:
                roots.add(root)
            if isinstance(node, ast.Subscript):
                visit(node.slice)
            return
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(expr)
    return roots


def _provenance_locals(module: ParsedModule, info: FunctionInfo) -> Set[str]:
    """Names carrying seed/Generator provenance inside one function:
    parameters, then locals derived from them (forward fixpoint)."""
    ok: Set[str] = set(info.param_names)
    changed = True
    passes = 0
    while changed and passes < 8:
        changed = False
        passes += 1
        for node in _body_nodes(info.node):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets, value = [node.target], node.iter
            if value is None:
                continue
            roots = _name_roots(value)
            if not roots or not roots <= ok:
                continue
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name) and leaf.id not in ok:
                        ok.add(leaf.id)
                        changed = True
    return ok


# ----------------------------------------------------------------------
# R010 — transitive counter discipline.
# ----------------------------------------------------------------------


@register
class TransitiveCounterDisciplineRule(ProjectRule):
    """R003 lifted through the call graph: a counter-accepting function
    must not delegate point/bound reads to helpers that neither charge
    accesses nor accept counters themselves.

    Per-file R003 sees a counter-accepting function's *own* reads; this
    rule walks its direct call edges (within the instrumented scope,
    stopping at callees that accept counters — those are R003's problem)
    and flags reachable helpers that read ``self.X`` / bound arrays
    without charging.  The finding lands on the counter-accepting
    function's definition line, naming the helper and the uncharged read.
    """

    rule_id = "R010"
    name = "transitive-counter-discipline"
    description = (
        "counter-accepting function delegates point/bound reads to a "
        "helper that neither charges accesses nor accepts counters"
    )

    def check_project(
        self, project: Project, graph: CallGraph, direct: DirectEffects
    ) -> Iterator[Finding]:
        suppressions_cache: Dict[str, Mapping[int, FrozenSet[str]]] = {}
        uncharged_cache: Dict[str, Optional[Tuple[str, int]]] = {}

        def uncharged_read(qualname: str) -> Optional[Tuple[str, int]]:
            """(kind, line) of the first uncharged read in a helper."""
            if qualname in uncharged_cache:
                return uncharged_cache[qualname]
            info = project.functions[qualname]
            module = project.modules[info.module]
            if info.module not in suppressions_cache:
                suppressions_cache[info.module] = parse_suppressions(module.source)
            suppressed = suppressions_cache[info.module]
            points, bounds, charges_p, charges_b = (
                CounterDisciplineRule.scan_reads(info.node)
            )
            result: Optional[Tuple[str, int]] = None
            if not charges_p:
                for read in points:
                    if not _read_suppressed(suppressed, read.lineno):
                        result = ("point", read.lineno)
                        break
            if result is None and not charges_b:
                for read in bounds:
                    if not _read_suppressed(suppressed, read.lineno):
                        result = ("bound", read.lineno)
                        break
            uncharged_cache[qualname] = result
            return result

        for qualname in sorted(project.functions):
            info = project.functions[qualname]
            if not _in_instrumented_scope(info.path):
                continue
            node = info.node
            if not (
                CounterDisciplineRule.accepts_counters(node)
                or CounterDisciplineRule.uses_self_counters(node)
            ):
                continue
            module = project.modules[info.module]
            # BFS over direct edges, stopping at counter-accepting callees.
            parents: Dict[str, Optional[str]] = {qualname: None}
            frontier = [qualname]
            while frontier:
                nxt: List[str] = []
                for current in frontier:
                    for callee in graph.callees(current, fuzzy=False):
                        if callee in parents:
                            continue
                        callee_info = project.functions[callee]
                        if not _in_instrumented_scope(callee_info.path):
                            continue
                        parents[callee] = current
                        callee_node = callee_info.node
                        if CounterDisciplineRule.accepts_counters(
                            callee_node
                        ) or CounterDisciplineRule.uses_self_counters(callee_node):
                            continue  # R003's responsibility; don't descend
                        nxt.append(callee)
                frontier = nxt
            for reached in sorted(parents):
                if reached == qualname:
                    continue
                reached_node = project.functions[reached].node
                if CounterDisciplineRule.accepts_counters(
                    reached_node
                ) or CounterDisciplineRule.uses_self_counters(reached_node):
                    continue
                read = uncharged_read(reached)
                if read is None:
                    continue
                kind, line = read
                chain = graph.chain(
                    {k: v for k, v in parents.items()}, reached
                )
                yield _module_finding(
                    self, module, info.lineno, 0,
                    f"{info.name!r} accepts counters but delegates {kind} "
                    f"reads to {_short(reached)!r} "
                    f"({project.functions[reached].path}:{line}), which "
                    "neither charges accesses nor accepts counters "
                    f"(chain: {_format_chain(chain)})",
                )
                break  # one finding per counter-accepting function


def _read_suppressed(
    suppressed: Mapping[int, FrozenSet[str]], line: int
) -> bool:
    return is_suppressed(suppressed, line, "R003") or is_suppressed(
        suppressed, line, "R010"
    )


# ----------------------------------------------------------------------
# R011 — accumulation-order stability.
# ----------------------------------------------------------------------


@register
class AccumulationOrderRule(ProjectRule):
    """Merge paths that must stay bit-identical across shards cannot
    reduce floats in unordered iteration order.

    The sharded engine will merge per-shard partial sums through
    :func:`repro.core.refinement.accumulate_cluster_sums` (and future
    ``merge_*`` helpers); float addition does not commute in rounding, so
    any reduction over a ``set`` — or a ``+=`` accumulation inside a loop
    over one — in a function from which a merge sink is reachable makes
    the merged result depend on hash-iteration order.  Sort the operands
    (or use ``math.fsum``, which is exact and therefore order-free).
    """

    rule_id = "R011"
    name = "accumulation-order-stability"
    description = (
        "unordered float reduction on a call path into a shard-merge sink "
        "(accumulate_cluster_sums / merge_*)"
    )

    def check_project(
        self, project: Project, graph: CallGraph, direct: DirectEffects
    ) -> Iterator[Finding]:
        sinks = sorted(
            qualname
            for qualname, info in project.functions.items()
            if info.name in MERGE_SINK_NAMES
            or info.name.startswith(MERGE_SINK_PREFIXES)
        )
        if not sinks:
            return
        # Ancestors of any sink over direct edges (reverse reachability).
        callers: Dict[str, List[str]] = {}
        for caller in graph.edges:
            for callee in graph.callees(caller, fuzzy=False):
                callers.setdefault(callee, []).append(caller)
        merge_path: Set[str] = set(sinks)
        frontier = list(sinks)
        while frontier:
            nxt: List[str] = []
            for current in frontier:
                for caller in callers.get(current, ()):
                    if caller not in merge_path:
                        merge_path.add(caller)
                        nxt.append(caller)
            frontier = nxt
        for qualname in sorted(merge_path):
            info = project.functions[qualname]
            module = project.modules[info.module]
            for node, reason in _unordered_reductions(module, info.node):
                yield _module_finding(
                    self, module, node.lineno, node.col_offset,
                    f"{reason} in {info.name!r}, which is on a call path "
                    "into a shard-merge sink; iterate in sorted order (or "
                    "use math.fsum) so shard merges stay bit-identical",
                )


def _is_set_like(module: ParsedModule, node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        resolved = resolve_name(module.aliases, node.func)
        if resolved in ("builtins.set", "builtins.frozenset"):
            return True
    return False


def _unordered_reductions(
    module: ParsedModule, func: ast.AST
) -> Iterator[Tuple[ast.AST, str]]:
    for node in _body_nodes(func):
        if isinstance(node, ast.Call):
            resolved = resolve_name(module.aliases, node.func)
            is_sum = (
                (isinstance(node.func, ast.Name) and node.func.id == "sum")
                or resolved in ("builtins.sum", "numpy.sum")
            )
            if is_sum and node.args:
                operand = node.args[0]
                if _is_set_like(module, operand):
                    yield node, "sum() over a set reduces in hash order"
                elif isinstance(operand, (ast.GeneratorExp, ast.ListComp)):
                    source = operand.generators[0].iter
                    if _is_set_like(module, source):
                        yield (
                            node,
                            "sum() over a set-driven comprehension reduces "
                            "in hash order",
                        )
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if not _is_set_like(module, node.iter):
                continue
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.AugAssign) and isinstance(
                    stmt.op, (ast.Add, ast.Sub)
                ):
                    yield (
                        node,
                        "+= accumulation inside a loop over a set runs in "
                        "hash order",
                    )
                    break


# ----------------------------------------------------------------------
# R012 — shm-name-provenance.
# ----------------------------------------------------------------------


@register
class ShmNameProvenanceRule(ProjectRule):
    """Shared-memory segment names must derive from the fit key, never
    from RNG, time, or uuid.

    The data plane's resume and leak-audit contracts both hang on
    deterministic naming: ``segment_name(fit_token, ...)`` maps equal
    fits to equal names, so a crashed fit's segments are findable (and
    unlinkable) by recomputing the token, and a chaos test can assert
    "no ``rpx*`` segment survives" without racing a random suffix.  A
    name minted from ``uuid4()`` / ``time.time()`` / an RNG draw breaks
    both: the orphan is unaddressable and the audit has nothing stable
    to grep for.  Provenance is the same forward dataflow as R009:
    parameters are clean roots, locals inherit taint from the
    entropy-bearing expressions they are assigned from, and the rule
    fires when a tainted name reaches a naming sink — a
    ``segment_name(...)`` call or a ``SharedMemory(name=..., create=True)``
    construction.
    """

    rule_id = "R012"
    name = "shm-name-provenance"
    description = (
        "shared-memory segment name derives from RNG/time/uuid instead of "
        "the deterministic fit key"
    )

    #: dotted-call prefixes whose results carry entropy taint
    _TAINT_PREFIXES = (
        "time.", "uuid.", "random.", "secrets.", "numpy.random.",
    )
    _TAINT_TAILS = ("urandom", "monotonic", "time_ns", "perf_counter")

    def check_project(
        self, project: Project, graph: CallGraph, direct: DirectEffects
    ) -> Iterator[Finding]:
        for qualname in sorted(project.functions):
            info = project.functions[qualname]
            module = project.modules[info.module]
            yield from self._check_function(module, info)

    def _check_function(
        self, module: ParsedModule, info: FunctionInfo
    ) -> Iterator[Finding]:
        tainted = self._tainted_locals(module, info)
        for node in _body_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            name_expr, sink = self._sink_name_expr(module, node)
            if name_expr is None:
                continue
            reason = self._taint_reason(module, name_expr, tainted)
            if reason is not None:
                yield _module_finding(
                    self, module, node.lineno, node.col_offset,
                    f"segment name passed to {sink} derives from {reason}; "
                    "shm names must be a pure function of the fit key "
                    "(repro.exec.checkpoint.fit_token) so crashed fits "
                    "stay addressable and leak audits stay deterministic",
                )

    # -- sinks ----------------------------------------------------------

    def _sink_name_expr(
        self, module: ParsedModule, call: ast.Call
    ) -> Tuple[Optional[ast.AST], str]:
        resolved = resolve_name(module.aliases, call.func)
        tail = (
            resolved.rsplit(".", 1)[-1] if resolved is not None
            else call.func.id if isinstance(call.func, ast.Name)
            else call.func.attr if isinstance(call.func, ast.Attribute)
            else None
        )
        if tail == "segment_name":
            for keyword in call.keywords:
                if keyword.arg == "fit_token":
                    return keyword.value, "segment_name()"
            if call.args:
                return call.args[0], "segment_name()"
            return None, ""
        if tail == "SharedMemory" and self._creates_segment(call):
            for keyword in call.keywords:
                if keyword.arg == "name":
                    return keyword.value, "SharedMemory(create=True)"
            if call.args:
                return call.args[0], "SharedMemory(create=True)"
        return None, ""

    @staticmethod
    def _creates_segment(call: ast.Call) -> bool:
        for keyword in call.keywords:
            if keyword.arg == "create":
                return (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                )
        return False

    # -- taint ----------------------------------------------------------

    def _expr_taint(
        self, module: ParsedModule, expr: ast.AST, tainted: Set[str]
    ) -> Optional[str]:
        """The entropy source an expression depends on, or ``None``."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                resolved = resolve_name(module.aliases, node.func)
                if resolved is not None:
                    tail = resolved.rsplit(".", 1)[-1]
                    if (
                        resolved.startswith(self._TAINT_PREFIXES)
                        or tail in self._TAINT_TAILS
                    ):
                        return f"{resolved}()"
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in RNG_METHODS
                    and _is_rng_shaped(func.value)
                ):
                    return f"an RNG draw (.{func.attr}())"
            elif isinstance(node, ast.Name) and node.id in tainted:
                return f"{node.id!r} (entropy-tainted local)"
        return None

    def _tainted_locals(
        self, module: ParsedModule, info: FunctionInfo
    ) -> Set[str]:
        """Locals carrying entropy taint (forward fixpoint, mirror of
        :func:`_provenance_locals` with the polarity flipped)."""
        tainted: Set[str] = set()
        changed = True
        passes = 0
        while changed and passes < 8:
            changed = False
            passes += 1
            for node in _body_nodes(info.node):
                targets: List[ast.AST] = []
                value: Optional[ast.AST] = None
                if isinstance(node, ast.Assign):
                    targets, value = list(node.targets), node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                elif isinstance(node, ast.AugAssign):
                    targets, value = [node.target], node.value
                if value is None:
                    continue
                if self._expr_taint(module, value, tainted) is None:
                    continue
                for target in targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name) and leaf.id not in tainted:
                            tainted.add(leaf.id)
                            changed = True
        return tainted

    def _taint_reason(
        self, module: ParsedModule, name_expr: ast.AST, tainted: Set[str]
    ) -> Optional[str]:
        return self._expr_taint(module, name_expr, tainted)
