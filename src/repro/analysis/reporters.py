"""Text, JSON, and SARIF rendering of analysis reports."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List

from repro.analysis.rules import RULES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.runner import AnalysisReport

#: tool identity stamped into SARIF output
SARIF_TOOL_NAME = "repro-lint"
SARIF_TOOL_VERSION = "2.0.0"
SARIF_INFO_URI = "https://github.com/repro/repro/blob/main/docs/static_analysis.md"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: partialFingerprints key carrying the statement content hash
SARIF_FINGERPRINT_KEY = "reproStatementHash/v1"


def format_findings_text(report: "AnalysisReport") -> str:
    """Human-oriented report: one line per finding plus a summary."""
    lines = []
    for finding in report.findings:
        lines.append(finding.format())
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    for error in report.parse_errors:
        lines.append(f"{error} [parse-error]")
    for unused in report.unused_suppressions:
        lines.append(unused.format())
    summary = (
        f"{len(report.findings)} finding(s) in {report.files_scanned} file(s)"
        f" ({report.suppressed} suppressed, {report.baselined} baselined)"
    )
    if report.unused_suppressions:
        summary += f", {len(report.unused_suppressions)} unused suppression(s)"
    lines.append(summary)
    return "\n".join(lines)


def format_findings_json(report: "AnalysisReport") -> str:
    """Machine-oriented report mirroring the text output."""
    payload = {
        "findings": [finding.as_dict() for finding in report.findings],
        "parse_errors": list(report.parse_errors),
        "files_scanned": report.files_scanned,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "unused_suppressions": [
            {
                "path": unused.path,
                "comment_line": unused.comment_line,
                "target_line": unused.target_line,
                "rules": list(unused.rule_ids),
            }
            for unused in report.unused_suppressions
        ],
        "rules": {
            rule_id: {"name": cls.name, "description": cls.description}
            for rule_id, cls in sorted(RULES.items())
        },
        "ok": report.ok,
    }
    return json.dumps(payload, indent=2)


def format_findings_sarif(report: "AnalysisReport") -> str:
    """SARIF 2.1.0 — the interchange format GitHub code scanning ingests.

    Every registered rule is described in the tool driver (so the
    code-scanning UI can render rule help even for rules with no current
    findings); results carry the statement content hash as a
    ``partialFingerprints`` entry, which keeps alert identity stable
    across line drift exactly like the v2 baseline does.
    """
    rule_ids = sorted(RULES)
    rule_index: Dict[str, int] = {rid: i for i, rid in enumerate(rule_ids)}
    rules_payload = [
        {
            "id": rule_id,
            "name": RULES[rule_id].name,
            "shortDescription": {"text": RULES[rule_id].description},
            "helpUri": SARIF_INFO_URI,
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id in rule_ids
    ]
    results: List[Dict] = []
    for finding in report.findings:
        result: Dict = {
            "ruleId": finding.rule_id,
            "ruleIndex": rule_index.get(finding.rule_id, -1),
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
            "partialFingerprints": {
                SARIF_FINGERPRINT_KEY: finding.content_hash,
            },
        }
        if finding.snippet:
            result["locations"][0]["physicalLocation"]["region"]["snippet"] = {
                "text": finding.snippet
            }
        results.append(result)
    notifications = [
        {
            "level": "error",
            "message": {"text": error},
        }
        for error in report.parse_errors
    ]
    run: Dict = {
        "tool": {
            "driver": {
                "name": SARIF_TOOL_NAME,
                "version": SARIF_TOOL_VERSION,
                "informationUri": SARIF_INFO_URI,
                "rules": rules_payload,
            }
        },
        "results": results,
        "columnKind": "unicodeCodePoints",
        "invocations": [
            {
                "executionSuccessful": not report.parse_errors,
                "toolExecutionNotifications": notifications,
            }
        ],
    }
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [run],
    }
    return json.dumps(payload, indent=2)
