"""Text and JSON rendering of analysis reports."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.analysis.rules import RULES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.analysis.runner import AnalysisReport


def format_findings_text(report: "AnalysisReport") -> str:
    """Human-oriented report: one line per finding plus a summary."""
    lines = []
    for finding in report.findings:
        lines.append(finding.format())
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    for error in report.parse_errors:
        lines.append(f"{error} [parse-error]")
    summary = (
        f"{len(report.findings)} finding(s) in {report.files_scanned} file(s)"
        f" ({report.suppressed} suppressed, {report.baselined} baselined)"
    )
    lines.append(summary)
    return "\n".join(lines)


def format_findings_json(report: "AnalysisReport") -> str:
    """Machine-oriented report mirroring the text output."""
    payload = {
        "findings": [finding.as_dict() for finding in report.findings],
        "parse_errors": list(report.parse_errors),
        "files_scanned": report.files_scanned,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "rules": {
            rule_id: {"name": cls.name, "description": cls.description}
            for rule_id, cls in sorted(RULES.items())
        },
        "ok": report.ok,
    }
    return json.dumps(payload, indent=2)
