"""Drift algorithm — geometric drift-bound tightening (Rysavy & Hamerly
2016; paper Section 4.3.3).

Reproduction note.  The paper's Equation 7 states the 2-D form of Rysavy &
Hamerly's tighter centroid-drift bound; its general-``d`` form requires the
coordinate conversion of their Algorithm 2, which the paper explicitly does
not elaborate.  This implementation reproduces the two *mechanisms* that
define the method's cost/benefit profile in the evaluation:

1. **Geometric neighbor pruning via cluster radii** — for a point assigned
   to cluster ``a`` with radius ``ra``, a centroid ``j`` with
   ``d(c_a, c_j) / 2 > ra`` can never win any point of the cluster
   (the same ball geometry Eq. 7 exploits; cf. Eq. 4), so the candidate
   loop is restricted to the neighbor set of the assigned cluster.
   Cluster radii are maintained as ``max`` of member upper bounds and are
   therefore sound over-estimates.
2. **Lazy per-centroid drift accumulation** — instead of Elkan's
   ``n * k`` bound writes per iteration, each stored bound is shifted by
   the centroid's cumulative drift at write time, and reads subtract the
   current cumulative drift:
   ``lb_eff(i, j) = stored(i, j) - cum_drift(j)``.  Writes cost O(1) and
   the per-iteration update cost collapses to ``k`` accumulator bumps,
   while every read pays one extra subtraction — exactly the access-heavy,
   update-light trade-off the paper attributes to the tight-bound family.

The result is exact (all bounds remain true lower/upper bounds; exactness
is enforced by the trajectory-equivalence tests) and exhibits the profile
the paper reports for Drift: strong pruning ratio, heavy bound traffic,
mediocre wall-clock.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import KMeansAlgorithm
from repro.core.pruning import centroid_separations


class DriftKMeans(KMeansAlgorithm):
    """Elkan variant with lazy drift-shifted bounds and radius pruning."""

    name = "drift"

    def __init__(self) -> None:
        super().__init__()
        self._ub: np.ndarray | None = None
        self._lb_shifted: np.ndarray | None = None  # stored + cum_drift(j)
        self._cum_drift: np.ndarray | None = None
        self._radii: np.ndarray | None = None

    def _setup(self) -> None:
        n = len(self.X)
        self.counters.record_footprint(n * self.k + n + 2 * self.k)

    def _assign(self, iteration: int) -> None:
        if iteration == 0:
            dists = self._full_scan_assign()
            n = len(self.X)
            self._cum_drift = np.zeros(self.k)
            self._lb_shifted = dists  # cum drift is zero, so shift is zero
            self._ub = dists[np.arange(n), self._labels].copy()
            self.counters.add_bound_updates(dists.size + n)
            self._refresh_radii()
            return

        cc, s = centroid_separations(self._centroids, self.counters)
        counters = self.counters
        cum = self._cum_drift
        lbs = self._lb_shifted
        ub = self._ub
        labels = self._labels
        # Vectorized global test; survivors go pointwise.
        counters.add_bound_accesses(len(self.X))
        for i in np.flatnonzero(ub > s[labels]):
            i = int(i)
            a = int(labels[i])
            u = float(ub[i])
            # Neighbor set of the assigned cluster: centroids beyond twice
            # the cluster radius cannot win any member (ball geometry).
            neighbor_mask = 0.5 * cc[a] <= self._radii[a]
            neighbor_mask[a] = False
            # Effective lower bounds: stored values minus cumulative drift.
            row_eff = lbs[i] - cum
            counters.bound_accesses += self.k
            mask = neighbor_mask & (row_eff < u) & (0.5 * cc[a] < u)
            candidates = np.flatnonzero(mask)
            if len(candidates) == 0:
                continue
            da = self._point_centroid_distance(i, a)
            ub[i] = da
            lbs[i, a] = da + cum[a]
            counters.add_bound_updates(2)
            u = da
            for j in candidates:
                counters.bound_accesses += 2
                if lbs[i, j] - cum[j] >= u or 0.5 * cc[int(labels[i]), j] >= u:
                    continue
                dij = self._point_centroid_distance(i, int(j))
                lbs[i, j] = dij + cum[j]
                counters.add_bound_updates(1)
                if dij < u:
                    labels[i] = j
                    ub[i] = dij
                    counters.add_bound_updates(1)
                    u = dij

    def _refresh_radii(self) -> None:
        """Cluster radii as the max member upper bound (sound over-estimate)."""
        self._radii = np.zeros(self.k)
        np.maximum.at(self._radii, self._labels, self._ub)
        self.counters.add_bound_updates(self.k)

    def _update_bounds(self, drifts: np.ndarray) -> None:
        # Lazy lb maintenance: only the k accumulators move.
        self._cum_drift += drifts
        self._ub += drifts[self._labels]
        self.counters.add_bound_updates(self.k + len(self.X))
        self._refresh_radii()
