"""Index-based k-means (Section 3): batch assignment via tree filtering.

This is the Pelleg-Moore / Kanungo *filtering algorithm* generalized to any
ball-shaped index (Ball-tree, M-tree, Cover-tree, HKT) plus the kd-tree
hyperplane variant.  Each iteration descends from the root carrying a
candidate centroid set:

* the node's two nearest candidates ``c_1, c_2`` are found from its pivot;
* if ``d(p, c_2) - d(p, c_1) > 2r`` (Eq. 2/9) the whole node is assigned to
  ``c_1`` — its precomputed sum vector and count move in batch, saving
  ``num * k`` distances and ``num`` data accesses;
* otherwise candidates with ``d(p, c_j) - r > d(p, c_1) + r`` are filtered
  out and the children recurse with the shrunken set;
* leaves that cannot be batch-assigned scan their points over the surviving
  candidates only.

For kd-trees the filter uses Kanungo's hyperplane test instead: candidate
``c_j`` is pruned when the cell corner farthest toward ``c_j`` is still
closer to ``c_1``.

Refinement is incremental by construction: cluster sums are aggregated from
node sum vectors during the descent, so no point is ever re-read.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.distance import chunked_sq_distances, one_to_many_distances
from repro.common.exceptions import ConfigurationError
from repro.core.base import KMeansAlgorithm
from repro.indexes import INDEX_CLASSES, MetricTree, TreeNode
from repro.indexes.kd_tree import KDTree


class IndexKMeans(KMeansAlgorithm):
    """Pure index-based k-means over any of the five tree indexes."""

    name = "index"
    refinement = "none"

    def __init__(
        self,
        index: str = "ball-tree",
        *,
        capacity: int = 30,
        tree: Optional[MetricTree] = None,
        **index_kwargs,
    ) -> None:
        super().__init__()
        self.index_name = index.lower()
        if self.index_name not in INDEX_CLASSES and tree is None:
            known = ", ".join(sorted(INDEX_CLASSES))
            raise ConfigurationError(
                f"unknown index {index!r}; known indexes: {known}"
            )
        self.capacity = int(capacity)
        self.index_kwargs = index_kwargs
        self.tree = tree
        self.name = f"index-{self.index_name}" if tree is None else f"index-{tree.name}"

    def _setup(self) -> None:
        if self.tree is None or self.tree.X is not self.X:
            cls = INDEX_CLASSES[self.index_name]
            kwargs = dict(self.index_kwargs)
            if self.index_name != "cover-tree":
                kwargs.setdefault("capacity", self.capacity)
            self.tree = cls(self.X, **kwargs)
        self.counters.record_footprint(self.tree.space_cost_floats())
        self._use_hyperplane = isinstance(self.tree, KDTree)

    def _assign(self, iteration: int) -> None:
        self._sums.fill(0.0)
        self._counts.fill(0)
        all_candidates = np.arange(self.k, dtype=np.intp)
        self._descend(self.tree.root, all_candidates)

    def _descend(self, node: TreeNode, candidates: np.ndarray) -> None:
        counters = self.counters
        counters.add_node_accesses(1)
        dists = self._node_centroid_distances(node, candidates)
        order = np.argsort(dists, kind="stable")
        best = int(candidates[order[0]])
        d1 = float(dists[order[0]])
        d2 = float(dists[order[1]]) if len(candidates) > 1 else np.inf
        if d2 - d1 > 2.0 * node.radius or len(candidates) == 1:
            self._assign_whole_node(node, best)
            return
        keep = dists - node.radius <= d1 + node.radius
        if self._use_hyperplane:
            keep &= self._hyperplane_keep(node, candidates, best)
        keep[order[0]] = True
        surviving = candidates[keep]
        if node.is_leaf:
            self._assign_leaf_points(node, surviving)
        else:
            for child in node.children:
                self._descend(child, surviving)

    def _node_centroid_distances(
        self, node: TreeNode, candidates: np.ndarray
    ) -> np.ndarray:
        return one_to_many_distances(
            node.pivot, self._centroids[candidates], self.counters
        )

    def _hyperplane_keep(
        self, node: TreeNode, candidates: np.ndarray, best: int
    ) -> np.ndarray:
        """Kanungo's corner test: keep ``c_j`` only if some cell corner is
        closer to it than to the current best centroid."""
        keep = np.ones(len(candidates), dtype=bool)
        c1 = self._centroids[best]
        for pos, j in enumerate(candidates):
            j = int(j)
            if j == best:
                continue
            cj = self._centroids[j]
            corner = self.tree.farthest_corner(node, cj - c1)
            self.counters.add_distances(2)
            # repro: ignore[R001] — both corner distances charged manually on the line above
            if np.sum((corner - cj) ** 2) >= np.sum((corner - c1) ** 2):
                keep[pos] = False
        return keep

    def _assign_whole_node(self, node: TreeNode, cluster: int) -> None:
        """Batch assignment: move the node's sum vector and labels at once."""
        self._sums[cluster] += node.sv
        self._counts[cluster] += node.num
        idx = node.subtree_point_indices()
        self._labels[idx] = cluster

    def _assign_leaf_points(self, node: TreeNode, candidates: np.ndarray) -> None:
        idx = node.point_indices
        points = self.X[idx]
        self.counters.add_point_accesses(len(idx) * len(candidates))
        sq = chunked_sq_distances(points, self._centroids[candidates], self.counters)
        winners = candidates[np.argmin(sq, axis=1)]
        self._apply_leaf_winners(node, winners, points)

    def _apply_leaf_winners(
        self, node: TreeNode, winners: np.ndarray, points: np.ndarray
    ) -> None:
        """Fold a leaf's per-point winners into labels and cluster sums.

        Accumulation is deliberately *per point, in leaf storage order*
        (``np.add.at`` applies its updates sequentially in element order).
        Together with the descent's depth-first decision order this makes
        the full iteration's sum update one well-defined sequence of scalar
        additions per (cluster, dimension) — which is exactly what lets the
        vectorized backend replay it as a single flattened ``bincount``
        scatter-add and still match the reference centroids bitwise
        (see ``VectorizedIndexKMeans`` and ``repro.core.refinement``).
        """
        idx = node.point_indices
        self._labels[idx] = winners
        # ``points`` is the block the caller already fetched (and charged)
        # for the distance scan — reusing it avoids a second gather.
        np.add.at(self._sums, winners, points)
        self._counts += np.bincount(winners, minlength=self.k)

    def _extras(self) -> dict:
        return {
            "index": self.tree.name,
            "index_nodes": self.tree.node_count(),
            "index_build_distances": self.tree.counters.distance_computations,
        }
