"""Yinyang k-means (Ding et al. 2015) — group pruning (Section 4.2.3).

Centroids are grouped once, in the first iteration, by a small k-means run
over the initial centroids (``t = ceil(k / 10)`` groups).  Each point keeps
an upper bound and one lower bound *per group* on the distance to the
nearest non-assigned centroid of that group.  Pruning runs in three tiers:

* global: ``ub(i) <= min_g lb(i, g)`` — the point stays put;
* group: groups with ``lb(i, g) >= ub(i)`` are skipped wholesale;
* local: within a scanned group, centroid ``j`` is skipped when its
  individually reconstructed bound ``lb_old(i, g) - drift(j)`` still
  exceeds the current upper bound.

Group bounds decay by the *maximum* drift within the group, which is why
Yinyang's bound maintenance is so much cheaper than Elkan's (Figure 11).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import KMeansAlgorithm
from repro.core.pruning import (
    GroupView,
    default_group_count,
    group_centroids_kmeans,
)


class YinyangKMeans(KMeansAlgorithm):
    """Yinyang k-means with global/group/local pruning tiers."""

    name = "yinyang"

    def __init__(self, t: Optional[int] = None, *, group_seed: int = 0) -> None:
        super().__init__()
        self._t_param = t
        self._group_seed = group_seed
        self.groups: Optional[GroupView] = None
        self._ub: Optional[np.ndarray] = None
        self._glb: Optional[np.ndarray] = None  # (n, t) group lower bounds
        self._last_drifts: Optional[np.ndarray] = None

    def _setup(self) -> None:
        t = self._t_param if self._t_param is not None else default_group_count(self.k)
        self._t = max(1, min(int(t), self.k))
        n = len(self.X)
        self.counters.record_footprint(n * self._t + n)

    def _initial_scan(self) -> None:
        """First-iteration grouping + full scan seeding ``ub`` and ``glb``.

        Shared with the vectorized backend (both backends take this exact
        path, so iteration 0 is trivially identical between them).
        """
        self.groups = GroupView(
            group_centroids_kmeans(self._centroids, self._t, seed=self._group_seed)
        )
        dists = self._full_scan_assign()
        n = len(self.X)
        self._ub = dists[np.arange(n), self._labels].copy()
        masked = dists.copy()
        masked[np.arange(n), self._labels] = np.inf
        self._glb = np.empty((n, self.groups.t))
        for g, members in enumerate(self.groups.members):
            self._glb[:, g] = masked[:, members].min(axis=1)
        self.counters.add_bound_updates(n * (self.groups.t + 1))

    def _assign(self, iteration: int) -> None:
        if iteration == 0:
            self._initial_scan()
            return

        counters = self.counters
        glb = self._glb
        ub = self._ub
        # Global test, vectorized over points ((t+1) * n bound reads either
        # way); only survivors enter the pointwise group scan.
        gmins = glb.min(axis=1)
        counters.add_bound_accesses((self.groups.t + 1) * len(self.X))
        for i in np.flatnonzero(ub > gmins):
            i = int(i)
            gmin = float(gmins[i])
            a = int(self._labels[i])
            da = self._point_centroid_distance(i, a)
            ub[i] = da
            counters.add_bound_updates(1)
            if da <= gmin:
                continue
            self._scan_groups(i, da)

    def _scan_groups(self, i: int, da: float) -> None:
        """Scan every group whose bound fails; maintain exact two-nearest.

        Group bounds are assembled *after* the scan from the collected
        evidence — exact distances of computed centroids (excluding the
        final winner) and the local-filter lower bounds of skipped ones.
        Assembling per-centroid keeps every refreshed bound attached to the
        right group even when the running best hops between groups
        mid-scan; a running "runner-up per group" would leave the
        dethroned winner's group with a stale, too-large bound.
        """
        counters = self.counters
        old_a = int(self._labels[i])
        best = old_a
        best_d = da
        group_decay = self._group_decay
        scanned: list[int] = []
        computed: list[tuple[int, float]] = []
        skip_bounds: dict[int, float] = {}
        for g, members in enumerate(self.groups.members):
            counters.bound_accesses += 1
            if self._glb[i, g] >= best_d:
                continue
            scanned.append(g)
            others = members[members != old_a]
            if len(others) == 0:
                continue
            # Per-centroid local filter against the pre-drift group bound,
            # then one vectorized distance block for the survivors (Ding's
            # implementation batches the group scan the same way).
            old_bound = self._glb[i, g] + group_decay[g]
            per_j = old_bound - self._last_drifts[others]
            counters.add_bound_accesses(len(others))
            mask = per_j < best_d
            if not mask.all():
                skipped_min = float(per_j[~mask].min())
                skip_bounds[g] = min(skip_bounds.get(g, np.inf), skipped_min)
            survivors = others[mask]
            if len(survivors) == 0:
                continue
            dists = self._point_distances(i, survivors)
            for pos, j in enumerate(survivors):
                dij = float(dists[pos])
                computed.append((int(j), dij))
                if dij < best_d:
                    best_d = dij
                    best = int(j)
        # Assemble refreshed bounds per group from the scan evidence.
        group_min = dict(skip_bounds)
        for j, dij in computed:
            if j == best:
                continue
            g = int(self.groups.group_of[j])
            group_min[g] = min(group_min.get(g, np.inf), dij)
        for g in scanned:
            value = group_min.get(g, np.inf)
            if np.isfinite(value):
                self._glb[i, g] = value
                counters.add_bound_updates(1)
        if best != old_a:
            self._labels[i] = best
            self._ub[i] = best_d
            counters.add_bound_updates(1)
            # The old assigned centroid now participates in its group bound
            # (its exact distance is known from the ub tightening).
            g_old = int(self.groups.group_of[old_a])
            self._glb[i, g_old] = min(self._glb[i, g_old], da)
            counters.add_bound_updates(1)

    def _update_bounds(self, drifts: np.ndarray) -> None:
        self._last_drifts = drifts.copy()
        decay = self.groups.max_drift_per_group(drifts)
        self._group_decay = decay
        # Note: no clipping at zero here — the local filter reconstructs the
        # pre-drift bound as ``glb + decay``, which requires the subtraction
        # to be exact.  Negative bounds are harmless (their tests just fail).
        self._glb -= decay[None, :]
        self._ub += drifts[self._labels]
        self.counters.add_bound_updates(self._glb.size + len(self._ub))
