"""Drake's algorithm (Drake & Hamerly 2012) — ``b < k`` sorted bounds
(Section 4.2.2).

Each point keeps its assigned centroid plus an ordered list of the ``b``
next-closest centroids with one lower bound each; the last bound doubles as
a bound on every unsorted centroid.  The paper's default ``b = ceil(k / 4)``
is used.

Soundness invariant maintained here: ``lb(i, z)`` lower-bounds the distance
from ``x_i`` to *every* centroid of sorted rank >= z (and the unsorted
remainder).  Drift updates subtract each sorted centroid's own drift, give
the final bound the global maximum drift, and then enforce the invariant by
a suffix-minimum sweep — the "frequent updates" overhead that Section 4.2.2
attributes to Drak.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import KMeansAlgorithm
from repro.core.pruning import two_smallest


class DrakeKMeans(KMeansAlgorithm):
    """Drake's adaptive-bound k-means with a sorted bound prefix."""

    name = "drake"

    def __init__(self, b: int | None = None) -> None:
        super().__init__()
        self._b_param = b
        self.b = 0
        self._ub: np.ndarray | None = None
        self._order: np.ndarray | None = None  # (n, b) centroid indices
        self._lbs: np.ndarray | None = None  # (n, b) bounds for the order

    def _setup(self) -> None:
        if self._b_param is not None:
            self.b = max(1, min(int(self._b_param), max(1, self.k - 1)))
        else:
            self.b = max(1, min(-(-self.k // 4), max(1, self.k - 1)))
        n = len(self.X)
        self.counters.record_footprint(n * (2 * self.b + 1))

    def _assign(self, iteration: int) -> None:
        if iteration == 0:
            dists = self._full_scan_assign()
            n = len(self.X)
            self._ub = dists[np.arange(n), self._labels].copy()
            self._order = np.empty((n, self.b), dtype=np.intp)
            self._lbs = np.empty((n, self.b))
            masked = dists.copy()
            masked[np.arange(n), self._labels] = np.inf
            # b closest *other* centroids, ascending.
            part = np.argsort(masked, axis=1, kind="stable")[:, : self.b]
            self._order = part.astype(np.intp)
            self._lbs = np.take_along_axis(masked, part, axis=1)
            self.counters.add_bound_updates(n * (2 * self.b + 1))
            return

        counters = self.counters
        # Vectorized global test against the first sorted bound.
        counters.add_bound_accesses(2 * len(self.X))
        for i in np.flatnonzero(self._ub > self._lbs[:, 0]):
            i = int(i)
            a = int(self._labels[i])
            da = self._point_centroid_distance(i, a)
            self._ub[i] = da
            counters.add_bound_updates(1)
            if da <= self._lbs[i, 0]:
                counters.bound_accesses += 1
                continue
            # Find the first rank whose bound exceeds the upper bound: the
            # nearest centroid then lies within {a} + order[:z].
            z = None
            for rank in range(self.b):
                counters.bound_accesses += 1
                if da < self._lbs[i, rank]:
                    z = rank
                    break
            if z is None:
                self._full_rescan(i)
                continue
            candidates = np.concatenate(([a], self._order[i, :z]))
            dists = self._point_distances(i, candidates)
            best_pos, d1, _ = two_smallest(dists)
            new_a = int(candidates[best_pos])
            self._labels[i] = new_a
            self._ub[i] = d1
            counters.add_bound_updates(1)
            # Re-sort the evaluated prefix (exact distances) minus the new
            # assigned centroid; suffix bounds stay (still sound for ranks
            # >= z because those bounds were not touched).
            rest_mask = candidates != new_a
            rest = candidates[rest_mask]
            rest_d = dists[rest_mask]
            sort = np.argsort(rest_d, kind="stable")
            width = len(rest)
            self._order[i, :width] = rest[sort]
            self._lbs[i, :width] = rest_d[sort]
            counters.add_bound_updates(2 * width)
            self._enforce_suffix_min(i)

    def _full_rescan(self, i: int) -> None:
        dists = self._point_distances(i, np.arange(self.k))
        a = int(np.argmin(dists))
        self._labels[i] = a
        self._ub[i] = float(dists[a])
        masked = dists.copy()
        masked[a] = np.inf
        order = np.argsort(masked, kind="stable")[: self.b]
        self._order[i] = order
        self._lbs[i] = masked[order]
        self.counters.add_bound_updates(2 * self.b + 1)

    def _enforce_suffix_min(self, i: int) -> None:
        """Restore ``lb(i, z) <= lb(i, z')`` for ``z < z'`` (suffix minimum)."""
        # repro: ignore[R003] — in-place bound maintenance, charged as bound_updates
        row = self._lbs[i]
        np.minimum.accumulate(row[::-1], out=row[::-1])
        self.counters.add_bound_updates(self.b)

    def _update_bounds(self, drifts: np.ndarray) -> None:
        n = len(self.X)
        self._ub += drifts[self._labels]
        # Each sorted bound decays by its own centroid's drift; the final
        # bound also covers the unsorted remainder, so it takes the global
        # maximum drift.  The suffix-minimum sweep then restores the rank
        # invariant in one vectorized pass.
        self._lbs -= drifts[self._order]
        self._lbs[:, -1] = np.minimum(
            # repro: ignore[R003] — drift bookkeeping (base.py's drift convention), charged as bound_updates
            self._lbs[:, -1],
            (self._lbs[:, -1] + drifts[self._order[:, -1]]) - float(drifts.max()),
        )
        np.minimum.accumulate(self._lbs[:, ::-1], axis=1, out=self._lbs[:, ::-1])
        np.maximum(self._lbs, 0.0, out=self._lbs)
        self.counters.add_bound_updates(n * (2 * self.b + 1))
