"""Knob configurations (Definition 3) and the configuration space.

Each existing algorithm corresponds to one knob configuration in the UniK
framework; UTune's job (Section 6) is to predict the best configuration for
a dataset.  Two knob families matter in the paper's selection problem:

* ``bound`` — which bound machinery to run.  The selection pool is the five
  leaderboard methods of Figure 12 (Hame, Drak, Heap, Yinyang, Regroup);
  the full space also contains the remaining sequential methods.
* ``index`` — how to use the index: ``none`` (sequential only), ``pure``
  (index filtering without bounds), ``single`` or ``multiple`` (UniK's two
  bound-carrying traversals).

:func:`build_algorithm` materializes a configuration into a runnable
algorithm instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.exceptions import ConfigurationError
from repro.core.annular import AnnularKMeans
from repro.core.drake import DrakeKMeans
from repro.core.drift import DriftKMeans
from repro.core.elkan import ElkanKMeans
from repro.core.exponion import ExponionKMeans
from repro.core.hamerly import HamerlyKMeans
from repro.core.heap import HeapKMeans
from repro.core.index_kmeans import IndexKMeans
from repro.core.lloyd import LloydKMeans
from repro.core.pami20 import Pami20KMeans
from repro.core.regroup import RegroupKMeans
from repro.core.search import SearchKMeans
from repro.core.sphere import SphereKMeans
from repro.core.unik import UniKKMeans
from repro.core.vector import VectorKMeans
from repro.core.yinyang import YinyangKMeans

#: bound knob values: the sequential machinery to run without an index
BOUND_KNOBS = (
    "none",
    "elkan",
    "hamerly",
    "drake",
    "yinyang",
    "regroup",
    "heap",
    "annular",
    "exponion",
    "drift",
    "vector",
    "pami20",
    "search",
    "sphere",
)

#: the five leaderboard methods used as UTune's selection pool (Figure 12)
SELECTION_POOL = ("hamerly", "drake", "heap", "yinyang", "regroup")

#: index knob values (Section 5.3)
INDEX_KNOBS = ("none", "pure", "single", "multiple", "adaptive")

_SEQUENTIAL = {
    "none": LloydKMeans,
    "elkan": ElkanKMeans,
    "hamerly": HamerlyKMeans,
    "drake": DrakeKMeans,
    "yinyang": YinyangKMeans,
    "regroup": RegroupKMeans,
    "heap": HeapKMeans,
    "annular": AnnularKMeans,
    "exponion": ExponionKMeans,
    "drift": DriftKMeans,
    "vector": VectorKMeans,
    "pami20": Pami20KMeans,
    "search": SearchKMeans,
    "sphere": SphereKMeans,
}


@dataclass(frozen=True)
class KnobConfig:
    """One point in the configuration space Theta (Definition 3)."""

    bound: str = "yinyang"
    index: str = "none"
    block_filter: bool = False
    capacity: int = 30
    index_structure: str = "ball-tree"

    def __post_init__(self) -> None:
        if self.bound not in BOUND_KNOBS:
            raise ConfigurationError(
                f"unknown bound knob {self.bound!r}; known: {BOUND_KNOBS}"
            )
        if self.index not in INDEX_KNOBS:
            raise ConfigurationError(
                f"unknown index knob {self.index!r}; known: {INDEX_KNOBS}"
            )

    @property
    def label(self) -> str:
        if self.index == "none":
            return self.bound
        if self.index == "pure":
            return f"index-{self.index_structure}"
        return f"unik-{self.index}"


def build_algorithm(config: KnobConfig):
    """Materialize a knob configuration into an algorithm instance.

    Sequential configurations (``index == "none"``) run the standalone
    implementation of the chosen bound method; ``pure`` runs index
    filtering without bounds; ``single``/``multiple``/``adaptive`` run UniK
    with Yinyang-style bounds carried by both nodes and points.
    """
    if config.index == "none":
        return _SEQUENTIAL[config.bound]()
    if config.index == "pure":
        return IndexKMeans(index=config.index_structure, capacity=config.capacity)
    return UniKKMeans(
        index=config.index_structure,
        capacity=config.capacity,
        traversal=config.index,
        block_filter=config.block_filter,
    )


def configuration_pool(selective: bool = True) -> List[KnobConfig]:
    """Configurations tested when generating ground truth (Algorithm 2).

    ``selective=True`` restricts the bound knob to the five leaderboard
    methods (plus the index traversals), the paper's selective-running
    trick that multiplies the amount of training data per unit time.
    """
    bounds = SELECTION_POOL if selective else tuple(b for b in BOUND_KNOBS if b != "none")
    configs = [KnobConfig(bound=b, index="none") for b in bounds]
    configs.append(KnobConfig(index="pure"))
    configs.append(KnobConfig(index="single"))
    configs.append(KnobConfig(index="multiple"))
    return configs
