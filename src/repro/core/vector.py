"""Block-vector algorithm (Bottesch et al. 2016) — Section 4.3.4.

Adds a cheap pre-distance filter to Hamerly's rescan: each vector is split
into ``blocks`` equal slices and per-block norms are precomputed.  By
Cauchy-Schwarz applied per block,

    <x, c>  <=  sum_b ||x^(b)|| * ||c^(b)||,

so  ``lb_block(x, c)^2 = ||x||^2 + ||c||^2 - 2 * sum_b ||x^(b)|| ||c^(b)||``
lower-bounds the squared distance at O(blocks) cost instead of O(d).

Reproduction note: Bottesch et al. phrase the bound via block *means* plus
Hölder's inequality; per-block norms give the same family of bounds (their
Cauchy-Schwarz instance), are unconditionally sound, and preserve the
method's profile — extra per-candidate bound arithmetic traded against full
distance computations — which is what the paper's evaluation measures.

During a rescan the filter may skip a candidate only when its block bound
already exceeds the *running second-best* distance, so both the assignment
and Hamerly's second-nearest lower bound remain exact.
"""

from __future__ import annotations

import numpy as np

from repro.common.distance import norms
from repro.core.base import KMeansAlgorithm
from repro.core.pruning import centroid_separations, second_max


def block_norms(X: np.ndarray, blocks: int) -> np.ndarray:
    """Per-block L2 norms of each row, shape ``(n, blocks)``."""
    X = np.atleast_2d(X)
    n, d = X.shape
    out = np.empty((n, blocks))
    bounds = np.linspace(0, d, blocks + 1).astype(int)
    for b in range(blocks):
        seg = X[:, bounds[b] : bounds[b + 1]]
        # repro: ignore[R001] — partial-dimension norm table, not a full
        # d-dimensional distance; callers charge bound updates for it
        out[:, b] = np.sqrt(np.einsum("ij,ij->i", seg, seg))
    return out


class VectorKMeans(KMeansAlgorithm):
    """Hamerly plus block-vector pre-distance filtering."""

    name = "vector"

    def __init__(self, blocks: int = 2) -> None:
        super().__init__()
        if blocks < 1:
            raise ValueError(f"blocks must be >= 1, got {blocks}")
        self.blocks = int(blocks)
        self._ub: np.ndarray | None = None
        self._lb: np.ndarray | None = None
        self._xnorm_sq: np.ndarray | None = None
        self._xblocks: np.ndarray | None = None

    def _setup(self) -> None:
        self.blocks = min(self.blocks, self.X.shape[1])
        self._xnorm_sq = norms(self.X) ** 2
        self._xblocks = block_norms(self.X, self.blocks)
        n = len(self.X)
        self.counters.record_footprint(n * (self.blocks + 3) + self.k * (self.blocks + 1))

    def _assign(self, iteration: int) -> None:
        if iteration == 0:
            dists = self._full_scan_assign()
            n = len(self.X)
            idx = np.arange(n)
            self._ub = dists[idx, self._labels].copy()
            masked = dists.copy()
            masked[idx, self._labels] = np.inf
            self._lb = masked.min(axis=1) if self.k > 1 else np.full(n, np.inf)
            self.counters.add_bound_updates(2 * n)
            return

        _, s = centroid_separations(self._centroids, self.counters)
        cnorm_sq = norms(self._centroids) ** 2
        cblocks = block_norms(self._centroids, self.blocks)
        self.counters.add_bound_updates(self.k * (self.blocks + 1))
        counters = self.counters
        # Vectorized global test; survivors go pointwise.
        thresholds = np.maximum(self._lb, s[self._labels])
        counters.add_bound_accesses(2 * len(self.X))
        for i in np.flatnonzero(self._ub > thresholds):
            i = int(i)
            a = int(self._labels[i])
            threshold = float(thresholds[i])
            da = self._point_centroid_distance(i, a)
            self._ub[i] = da
            counters.add_bound_updates(1)
            if da <= threshold:
                continue
            self._filtered_rescan(i, a, da, cnorm_sq, cblocks)

    def _filtered_rescan(
        self,
        i: int,
        a: int,
        da: float,
        cnorm_sq: np.ndarray,
        cblocks: np.ndarray,
    ) -> None:
        """Full scan with block-bound skipping; exact (d1, d2) maintained."""
        counters = self.counters
        best = a
        d1 = da
        d2 = np.inf
        xnsq = float(self._xnorm_sq[i])
        xb = self._xblocks[i]
        for j in range(self.k):
            if j == a:
                continue
            counters.bound_accesses += 1
            inner = float(xb @ cblocks[j])
            block_sq = xnsq + float(cnorm_sq[j]) - 2.0 * inner
            block_bound = np.sqrt(block_sq) if block_sq > 0.0 else 0.0
            if block_bound >= d2:
                continue  # cannot affect either first or second place
            dij = self._point_centroid_distance(i, j)
            if dij < d1:
                d2 = d1
                d1 = dij
                best = j
            elif dij < d2:
                d2 = dij
        self._labels[i] = best
        self._ub[i] = d1
        self._lb[i] = d2
        counters.add_bound_updates(2)

    def _update_bounds(self, drifts: np.ndarray) -> None:
        top_j, top, second = second_max(drifts)
        self._ub += drifts[self._labels]
        decay = np.where(self._labels == top_j, second, top)
        self._lb -= decay
        self.counters.add_bound_updates(2 * len(self.X))
