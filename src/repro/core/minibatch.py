"""Approximate accelerations (paper Section 2.2): mini-batch and sampling.

The paper's taxonomy lists four acceleration families; its evaluation
covers the *exact* family, noting the approximate family (sampling [19],
mini-batch [55]) "can be integrated with the above methods to reduce their
running time".  These two implementations complete that taxonomy:

* :class:`MiniBatchKMeans` — Sculley's web-scale mini-batch k-means with
  per-centroid learning rates ``1/count``;
* :class:`SampledKMeans` — cluster a uniform sample with any exact
  accelerated method, then assign the full dataset once.

Both are approximate: they do **not** reproduce Lloyd's trajectory and are
therefore excluded from the exactness guarantees; their contract is instead
bounded SSE inflation relative to Lloyd, which the tests check statistically.
"""

from __future__ import annotations


import numpy as np

from repro.common.distance import chunked_sq_distances
from repro.common.exceptions import ConfigurationError
from repro.common.validation import check_positive, check_probability
from repro.core.base import KMeansAlgorithm


class MiniBatchKMeans(KMeansAlgorithm):
    """Sculley's mini-batch k-means.

    Each iteration draws ``batch_size`` points, assigns them to the nearest
    centroid, and moves each winning centroid toward its batch members with
    a learning rate of ``1 / count`` (count = points ever assigned to it).
    A final full assignment pass produces labels consistent with the
    learned centroids.
    """

    name = "minibatch"
    refinement = "none"

    def __init__(self, batch_size: int = 256, batch_seed: int = 0) -> None:
        super().__init__()
        check_positive(batch_size, "batch_size")
        self.batch_size = int(batch_size)
        self.batch_seed = batch_seed

    def _setup(self) -> None:
        self._assign_counts = None
        self._batch_rng = np.random.default_rng(self.batch_seed)
        self.counters.record_footprint(self.k)

    def _assign(self, iteration: int) -> None:
        n = len(self.X)
        if self._assign_counts is None:
            self._assign_counts = np.zeros(self.k)
        batch_idx = self._batch_rng.integers(0, n, size=min(self.batch_size, n))
        batch = self.X[batch_idx]
        sq = chunked_sq_distances(batch, self._centroids, self.counters)
        self.counters.add_point_accesses(sq.size)
        winners = np.argmin(sq, axis=1)
        # Per-centroid gradient step with 1/count learning rate.
        for pos, j in enumerate(winners):
            self._assign_counts[j] += 1.0
            eta = 1.0 / self._assign_counts[j]
            self._centroids[j] = (1.0 - eta) * self._centroids[j] + eta * batch[pos]
        # Labels for the result: full assignment against current centroids.
        full_sq = chunked_sq_distances(self.X, self._centroids, self.counters)
        self.counters.add_point_accesses(full_sq.size)
        self._labels = np.argmin(full_sq, axis=1).astype(np.intp)
        # Keep base-class sums consistent for refinement bookkeeping.
        self._sums.fill(0.0)
        np.add.at(self._sums, self._labels, self.X)
        self._counts = np.bincount(self._labels, minlength=self.k).astype(np.intp)

    def _refine(self, iteration: int, previous_labels: np.ndarray) -> np.ndarray:
        # Mini-batch already moved the centroids inside _assign; refinement
        # is the identity so the trajectory stays Sculley's, not Lloyd's.
        return self._centroids.copy()


class SampledKMeans(KMeansAlgorithm):
    """Cluster a uniform sample, then assign the full dataset once.

    ``inner`` names any registered exact algorithm ("unik" by default), so
    the approximate and exact acceleration families compose exactly as the
    paper describes.
    """

    name = "sampled"
    refinement = "none"

    def __init__(
        self,
        sample_fraction: float = 0.2,
        inner: str = "unik",
        sample_seed: int = 0,
        min_sample: int = 50,
    ) -> None:
        super().__init__()
        check_probability(sample_fraction, "sample_fraction")
        if sample_fraction <= 0.0:
            raise ConfigurationError("sample_fraction must be > 0")
        self.sample_fraction = sample_fraction
        self.inner = inner
        self.sample_seed = sample_seed
        self.min_sample = int(min_sample)
        self.inner_result = None

    def _setup(self) -> None:
        self.counters.record_footprint(self.k)

    def _assign(self, iteration: int) -> None:
        from repro.core import make_algorithm  # local import: avoids a cycle

        n = len(self.X)
        if iteration == 0:
            rng = np.random.default_rng(self.sample_seed)
            size = max(min(self.min_sample, n), int(n * self.sample_fraction))
            size = max(size, min(self.k, n))
            sample_idx = rng.choice(n, size=size, replace=False)
            sample = self.X[sample_idx]
            algorithm = make_algorithm(self.inner)
            k_inner = min(self.k, len(sample))
            init = self._centroids[:k_inner] if len(self._centroids) else None
            self.inner_result = algorithm.fit(
                sample, k_inner, initial_centroids=init, max_iter=25
            )
            self.counters.merge(algorithm.counters)
            self._centroids[:k_inner] = self.inner_result.centroids
        sq = chunked_sq_distances(self.X, self._centroids, self.counters)
        self.counters.add_point_accesses(sq.size)
        self._labels = np.argmin(sq, axis=1).astype(np.intp)
        self._sums.fill(0.0)
        np.add.at(self._sums, self._labels, self.X)
        self._counts = np.bincount(self._labels, minlength=self.k).astype(np.intp)

    def _refine(self, iteration: int, previous_labels: np.ndarray) -> np.ndarray:
        # One full Lloyd refinement after the sampled solution: standard
        # "sample + polish" — further iterations would converge to Lloyd.
        nonempty = self._counts > 0
        out = self._centroids.copy()
        out[nonempty] = self._sums[nonempty] / self._counts[nonempty, None]
        return out
