"""Vectorized NumPy backend: bound-based trio, Lloyd, and index k-means.

The reference implementations in :mod:`repro.core.elkan`,
:mod:`repro.core.hamerly` and :mod:`repro.core.yinyang` run their pruning
loops point by point — faithful to the paper's pseudocode and easy to
audit, but dominated by Python interpreter overhead, so the "accelerated"
methods often lose to plain vectorized Lloyd on wall-clock.  Newling &
Fleuret's and Raff's implementations show the fix: bound-based pruning only
pays when the bound *bookkeeping* is batched too.  The same applies to the
paper's other pipeline half: the reference :class:`IndexKMeans` descent
(Section 3, Eq. 2/9) makes one tiny NumPy call per tree node, and plain
Lloyd's chunked direct-differencing scan leaves the expansion trick's GEMM
throughput on the table.

The classes here are drop-in replacements selected with
``backend="vectorized"`` (see :func:`repro.core.make_algorithm` and
``docs/backends.md``).  Each subclasses its reference implementation and
replaces only the per-iteration assignment pass — array-held bounds and
masked batch updates for the trio, a speculative expansion scan with exact
near-tie fallback for Lloyd, and a frontier-batched breadth-first traversal
for index k-means; setup, initialization, refinement and drift correction
are inherited unchanged (refinement itself is the shared scatter-add of
:mod:`repro.core.refinement`, and k-means++ seeding batches its D² updates
through the same bit-identical kernels, see :mod:`repro.core.initialization`).

Exactness contract
------------------
The vectorized backend is not "close to" the reference — it is *equal*:

* identical labels, centroids (bitwise), iteration counts;
* identical :class:`~repro.instrumentation.counters.OpCounters` totals per
  iteration.

Both follow from two invariants, enforced by
``tests/test_backend_conformance.py`` and ``tests/test_golden_traces.py``:

1. every distance is computed by a batch kernel of
   :mod:`repro.common.distance` that is bit-identical per row to the scalar
   helper the reference calls (:func:`~repro.common.distance.paired_distances`
   for ``euclidean``, :func:`~repro.common.distance.block_distances` for
   ``one_to_many_distances``), so every pruning test sees the same 64-bit
   float and takes the same branch;
2. the per-point scan order is preserved by swapping loop nesting, never by
   changing the decision procedure: the reference iterates points outer /
   candidates inner, the vectorized code iterates candidates outer / points
   (as arrays) inner.  Per-point state (current best, upper bound) is held
   in arrays and updated after each candidate column, which reproduces the
   reference's sequential semantics exactly because points never interact
   within an assignment pass.

Counters are charged per *pruning decision* — one distance per row-pair
actually evaluated, one bound access per bound read by a test — never per
BLAS call.  A batched kernel that evaluates 10k distances in one call
charges 10k, and a test that short-circuits for some points charges only
the points that reached it.  This keeps every Table 3-style metric
backend-independent: the paper's tables measure algorithmic work, and both
backends do the same algorithmic work.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

import numpy as np

from repro.backend import backend_manager as bm
from repro.common.distance import (
    block_distances,
    chunked_sq_distances,
    paired_distances,
    pairwise_sq_distances,
    sq_norms,
)
from repro.core.base import KMeansAlgorithm
from repro.core.elkan import ElkanKMeans
from repro.core.hamerly import HamerlyKMeans
from repro.core.index_kmeans import IndexKMeans
from repro.core.lloyd import LloydKMeans
from repro.core.pruning import centroid_separations
from repro.core.refinement import accumulate_cluster_sums
from repro.core.yinyang import YinyangKMeans

#: Opts this module into R008 (backend-purity): any distance arithmetic
#: here must go through the counted kernels in ``repro.common.distance``.
BACKEND_ROUTED = True


# ----------------------------------------------------------------------
# Row-subset assignment kernels.
#
# The per-point assignment logic of Lloyd/Elkan/Hamerly is independent
# across points (points never interact within an assignment pass — the
# module-docstring invariant), so each pass is exposed as a module-level
# function over an arbitrary contiguous *row slice*: running it on
# ``X[lo:hi]`` produces exactly the rows ``[lo, hi)`` of the full-matrix
# pass, bitwise.  The classes below call them on the full matrix; the
# sharded engine (``repro.exec.sharded``) ships them to supervised worker
# processes per shard.  They are deliberately plain module functions —
# picklable, no module-global mutation — because they are pool-dispatch
# roots under the R007 parallel-safety rule.
#
# Each kernel charges the slice's share of the per-iteration counters;
# centroid-level work (``centroid_separations``) is *not* charged here —
# it happens once per iteration in the caller, so sharded counter totals
# equal single-process totals.
# ----------------------------------------------------------------------


def lloyd_assign_rows(
    X_rows: np.ndarray,
    centroids: np.ndarray,
    x_sq_rows: np.ndarray,
    c_sq: np.ndarray,
    counters,
    *,
    margin_factor: float = 16.0,
) -> np.ndarray:
    """Lloyd assignment for one row slice; returns the slice's labels.

    Speculative expansion scan + exact near-tie fallback (see
    :class:`VectorizedLloydKMeans`).  ``x_sq_rows`` are the slice's cached
    row norms and ``c_sq``/``c_sq.max()`` are global, so the margin test is
    row-subset invariant and the fallback's :func:`chunked_sq_distances`
    entries are too — the slice result equals the full-scan rows bitwise.
    """
    n, d = X_rows.shape
    k = len(centroids)
    # The paper's Lloyd cost: n*k distances, each touching its point.
    counters.add_distances(n * k)
    counters.add_point_accesses(n * k)
    # Uncounted kernel calls — the n*k charge above covers this scan.
    fast = pairwise_sq_distances(X_rows, centroids, a_sq=x_sq_rows, b_sq=c_sq)
    labels = bm.argmin(fast, axis=1).astype(np.intp)
    if k > 1:
        two = bm.partition(fast, 1, axis=1)
        eps = np.finfo(np.float64).eps
        margin = margin_factor * (d + 4) * eps * (x_sq_rows + float(c_sq.max()))
        suspects = np.flatnonzero(two[:, 1] - two[:, 0] <= 2.0 * margin)
        if len(suspects):
            exact = chunked_sq_distances(X_rows[suspects], centroids)
            labels[suspects] = bm.argmin(exact, axis=1)
    return labels


def elkan_seed_rows(
    X_rows: np.ndarray, centroids: np.ndarray, counters
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Elkan iteration-0 full scan for one row slice.

    Returns ``(labels, ub, lb)`` for the slice — the per-row restriction
    of :meth:`repro.core.elkan.ElkanKMeans._initial_scan`
    (:func:`chunked_sq_distances` is row-subset invariant), with the same
    charges: ``n*k`` distances + point accesses, ``n*k + n`` bound writes.
    """
    sq = chunked_sq_distances(X_rows, centroids, counters)
    counters.add_point_accesses(sq.size)
    labels = bm.argmin(sq, axis=1).astype(np.intp)
    dists = np.sqrt(sq)
    ub = dists[np.arange(len(X_rows)), labels].copy()
    counters.add_bound_updates(dists.size + len(X_rows))
    return labels, ub, dists


def elkan_assign_rows(
    X_rows: np.ndarray,
    centroids: np.ndarray,
    labels: np.ndarray,
    ub: np.ndarray,
    lb: np.ndarray,
    half_cc,
    s: np.ndarray,
    counters,
    *,
    cand_buf=None,
) -> None:
    """Elkan assignment pass over one row slice, in place.

    ``labels``/``ub``/``lb`` are the slice's bound state and are updated in
    place.  ``half_cc`` (``0.5 * cc``, or None when inter-bounds are off)
    and ``s`` are centroid-level context computed — and charged — once per
    iteration by the caller.  ``cand_buf`` optionally supplies the
    ``(n, k)`` candidate scratch; a fresh allocation is value-identical.
    """
    n = len(X_rows)
    k = len(centroids)
    # Global test (n bound reads), identical to the reference.
    counters.add_bound_accesses(n)
    active = np.flatnonzero(ub > s[labels])
    if len(active) == 0:
        return
    # Candidate filter: both Elkan conditions over all j != a, one
    # masked block instead of a per-point loop (k bound reads each).
    a0 = labels[active]
    u0 = ub[active]
    counters.add_bound_accesses(len(active) * k)
    if cand_buf is not None:
        cand = np.less(lb[active], u0[:, None], out=cand_buf[: len(active)])
    else:
        cand = np.less(lb[active], u0[:, None])
    if half_cc is not None:
        cand &= half_cc[a0] < u0[:, None]
    cand[np.arange(len(active)), a0] = False
    has = cand.any(axis=1)
    pts = active[has]
    if len(pts) == 0:
        return
    cand = cand[has]
    # Tighten ub to the exact distance for every surviving point.
    a = labels[pts]
    counters.add_point_accesses(len(pts))
    d_a = paired_distances(X_rows[pts], centroids[a], counters)
    ub[pts] = d_a
    lb[pts, a] = d_a
    counters.add_bound_updates(2 * len(pts))
    u = d_a.copy()
    # Candidate scan, column-major: ascending j preserves each point's
    # reference scan order; u/labels update per column, so the running
    # best a point carries into column j+1 matches the reference's
    # sequential inner loop.
    for j in range(k):
        rows = np.flatnonzero(cand[:, j])
        if len(rows) == 0:
            continue
        p = pts[rows]
        counters.add_bound_accesses(2 * len(rows))
        skip = lb[p, j] >= u[rows]
        if half_cc is not None:
            skip |= half_cc[labels[p], j] >= u[rows]
        todo = rows[~skip]
        if len(todo) == 0:
            continue
        q = pts[todo]
        counters.add_point_accesses(len(q))
        d_j = paired_distances(X_rows[q], centroids[j], counters)
        lb[q, j] = d_j
        counters.add_bound_updates(len(q))
        better = d_j < u[todo]
        if better.any():
            moved = todo[better]
            labels[pts[moved]] = j
            ub[pts[moved]] = d_j[better]
            u[moved] = d_j[better]
            counters.add_bound_updates(int(better.sum()))


def hamerly_seed_rows(
    X_rows: np.ndarray, centroids: np.ndarray, counters
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Hamerly iteration-0 full scan for one row slice.

    Returns ``(labels, ub, lb)`` — the per-row restriction of
    :meth:`repro.core.hamerly.HamerlyKMeans._initial_scan` with the same
    charges (``n*k`` distances + point accesses, ``2n`` bound writes).
    """
    sq = chunked_sq_distances(X_rows, centroids, counters)
    counters.add_point_accesses(sq.size)
    labels = bm.argmin(sq, axis=1).astype(np.intp)
    dists = np.sqrt(sq)
    n = len(X_rows)
    idx = np.arange(n)
    ub = dists[idx, labels].copy()
    if len(centroids) > 1:
        masked = dists.copy()
        masked[idx, labels] = np.inf
        lb = masked.min(axis=1)
    else:
        lb = np.full(n, np.inf)
    counters.add_bound_updates(2 * n)
    return labels, ub, lb


def hamerly_assign_rows(
    X_rows: np.ndarray,
    centroids: np.ndarray,
    labels: np.ndarray,
    ub: np.ndarray,
    lb: np.ndarray,
    s: np.ndarray,
    counters,
    *,
    thresh_buf=None,
) -> None:
    """Hamerly assignment pass over one row slice, in place.

    ``s`` is the half-separation vector computed — and charged — once per
    iteration by the caller; ``thresh_buf`` optionally supplies the length
    ``n`` threshold scratch (fresh allocation is value-identical).
    """
    k = len(centroids)
    # Global test over all points (2n bound reads), as in the reference.
    if thresh_buf is not None:
        thresholds = np.maximum(lb, s[labels], out=thresh_buf[: len(X_rows)])
    else:
        thresholds = np.maximum(lb, s[labels])
    counters.add_bound_accesses(2 * len(X_rows))
    active = np.flatnonzero(ub > thresholds)
    if len(active) == 0:
        return
    # Tighten the upper bound with one exact distance per survivor.
    counters.add_point_accesses(len(active))
    d_a = paired_distances(X_rows[active], centroids[labels[active]], counters)
    ub[active] = d_a
    counters.add_bound_updates(len(active))
    rescan = active[d_a > thresholds[active]]
    if len(rescan) == 0:
        return
    # Full rescan block: every entry bit-identical to the reference's
    # one_to_many_distances row, so argmin tie-breaking is preserved.
    counters.add_point_accesses(len(rescan) * k)
    dists = block_distances(X_rows[rescan], centroids, counters)
    best = bm.argmin(dists, axis=1)
    d1 = dists[np.arange(len(rescan)), best]
    if k > 1:
        d2 = bm.partition(dists, 1, axis=1)[:, 1]
    else:
        d2 = np.full(len(rescan), np.inf)
    labels[rescan] = best
    ub[rescan] = d1
    lb[rescan] = d2
    counters.add_bound_updates(2 * len(rescan))


class VectorizedElkanKMeans(ElkanKMeans):
    """Elkan's algorithm with batched bound tests (candidate-major order).

    The reference scans each global-test survivor's candidate centroids in
    ascending index order, tightening ``ub`` first.  Here the candidate
    filter runs as one masked ``(survivors, k)`` comparison, tightening as
    one paired-distance call, and the candidate scan as a loop over
    centroid *columns* with the surviving point set shrinking per column —
    the same decisions in the same per-point order, interpreted k times
    instead of n times.
    """

    backend = "vectorized"

    def _setup(self) -> None:
        super()._setup()
        # Per-fit scratch, reused every iteration: the (n, k) candidate
        # matrix, the (2, k, k) + (k, k) center-center buffers, and the
        # half-separation matrix shared by both pruning passes below.
        n, k = len(self.X), self.k
        self._cand_buf = np.empty((n, k), dtype=bool)
        self._cc_scratch = np.empty((2, k, k)) if self.use_inter else None
        self._cc_work = np.empty((k, k)) if self.use_inter else None
        self._half_cc = np.empty((k, k)) if self.use_inter else None

    def _assign(self, iteration: int) -> None:
        if iteration == 0:
            self._initial_scan()
            return
        half_cc, s = self._separation_context()
        elkan_assign_rows(
            self.X,
            self._centroids,
            self._labels,
            self._ub,
            self._lb,
            half_cc,
            s,
            self.counters,
            cand_buf=self._cand_buf,
        )

    def _separation_context(self):
        """Per-iteration centroid-level context ``(half_cc, s)``.

        Computed (and charged) once per iteration; the sharded engine calls
        this in the supervisor and ships the result to every shard worker,
        so counter totals match the single-process pass.
        """
        if not self.use_inter:
            return None, np.zeros(self.k)  # never prunes
        cc, s = centroid_separations(
            self._centroids,
            self.counters,
            scratch=self._cc_scratch,
            work=self._cc_work,
        )
        # One center-center pass per iteration: the candidate filter and
        # the per-column scan both test against 0.5 * cc; halving once
        # (exact scaling, bit-invisible) replaces two full passes.
        return np.multiply(cc, 0.5, out=self._half_cc), s


class VectorizedHamerlyKMeans(HamerlyKMeans):
    """Hamerly's algorithm with batched tighten-and-rescan.

    One paired-distance call tightens every global-test survivor's upper
    bound; the points that still fail rescan all ``k`` centroids in one
    ``(rescans, k)`` block with a vectorized two-smallest reduction.
    """

    backend = "vectorized"

    def _setup(self) -> None:
        super()._setup()
        n, k = len(self.X), self.k
        self._thresh_buf = np.empty(n)
        self._cc_scratch = np.empty((2, k, k))
        self._cc_work = np.empty((k, k))

    def _assign(self, iteration: int) -> None:
        if iteration == 0:
            self._initial_scan()
            return
        s = self._separation_context()
        hamerly_assign_rows(
            self.X,
            self._centroids,
            self._labels,
            self._ub,
            self._lb,
            s,
            self.counters,
            thresh_buf=self._thresh_buf,
        )

    def _separation_context(self) -> np.ndarray:
        """Per-iteration half-separation vector ``s`` (charged once)."""
        _, s = centroid_separations(
            self._centroids,
            self.counters,
            scratch=self._cc_scratch,
            work=self._cc_work,
        )
        return s


class VectorizedYinyangKMeans(YinyangKMeans):
    """Yinyang with batched group pruning (group-major scan order).

    The reference scans each survivor's groups in ascending group order,
    maintaining a running best and assembling refreshed group bounds from
    the scan evidence.  Here the group loop is outermost: per group, the
    entry test, the local per-centroid filter and the survivor distances
    run as masked blocks over all scanning points at once, with per-point
    running state (``best``, ``best_d``) carried between groups in arrays.
    The bound-assembly evidence — minimum skipped local bound and the two
    smallest computed distances per (point, group) — is accumulated in
    arrays and resolved after the scan, excluding the final winner exactly
    as the reference's per-centroid assembly does.
    """

    backend = "vectorized"

    def _setup(self) -> None:
        super()._setup()
        self._scan_bufs = None

    def _scan_scratch(
        self, m: int, t: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Reusable ``(n, t)`` scan-evidence buffers, sliced to ``m`` rows.

        Allocated on first use (the grouping — hence ``t`` — only exists
        after iteration 0) and reinitialized per call; slicing a persistent
        buffer produces the same values as the former per-iteration
        ``np.full``/``np.zeros`` allocations.
        """
        if self._scan_bufs is None or self._scan_bufs[0].shape[1] != t:
            n = len(self.X)
            self._scan_bufs = (
                np.empty((n, t)),
                np.empty((n, t)),
                np.empty((n, t)),
                np.empty((n, t), dtype=bool),
            )
        skip_min, comp_min1, comp_min2, scanned = (buf[:m] for buf in self._scan_bufs)
        skip_min.fill(np.inf)
        comp_min1.fill(np.inf)
        comp_min2.fill(np.inf)
        scanned.fill(False)
        return skip_min, comp_min1, comp_min2, scanned

    def _assign(self, iteration: int) -> None:
        if iteration == 0:
            self._initial_scan()
            return

        counters = self.counters
        glb = self._glb
        ub = self._ub
        t = self.groups.t
        # Global test ((t+1) * n bound reads), identical to the reference.
        gmins = glb.min(axis=1)
        counters.add_bound_accesses((t + 1) * len(self.X))
        active = np.flatnonzero(ub > gmins)
        if len(active) == 0:
            return
        counters.add_point_accesses(len(active))
        d_a = paired_distances(
            self.X[active], self._centroids[self._labels[active]], counters
        )
        ub[active] = d_a
        counters.add_bound_updates(len(active))
        keep = d_a > gmins[active]
        scan = active[keep]
        if len(scan) == 0:
            return
        self._scan_groups_batch(scan, d_a[keep])

    def _scan_groups_batch(self, scan: np.ndarray, da: np.ndarray) -> None:
        """Group-major scan of every failing point; exact two-tier pruning.

        ``scan`` holds the point indices whose tightened upper bound still
        exceeds their minimum group bound; ``da`` their exact distances to
        their assigned centroids.  Mirrors the reference ``_scan_groups``
        with the point loop vectorized away.
        """
        counters = self.counters
        m = len(scan)
        t = self.groups.t
        group_decay = self._group_decay
        old_a = self._labels[scan].copy()
        best = old_a.copy()
        best_d = da.copy()
        # Scan evidence, resolved after the group loop: minimum skipped
        # local-filter bound and the two smallest computed distances per
        # (point, group).  Held in per-fit scratch buffers.
        skip_min, comp_min1, comp_min2, scanned = self._scan_scratch(m, t)
        for g in range(t):
            counters.add_bound_accesses(m)
            enter = self._glb[scan, g] < best_d
            scanned[:, g] = enter
            rows = np.flatnonzero(enter)
            if len(rows) == 0:
                continue
            members = self.groups.members[g]
            others = members[None, :] != old_a[rows, None]
            counters.add_bound_accesses(int(others.sum()))
            # Per-centroid local filter against the pre-drift group bound.
            old_bound = self._glb[scan[rows], g] + group_decay[g]
            per_j = old_bound[:, None] - self._last_drifts[members][None, :]
            survive = (per_j < best_d[rows, None]) & others
            skipped = others & ~survive
            if skipped.any():
                skip_min[rows, g] = np.where(skipped, per_j, np.inf).min(axis=1)
            srow, scol = np.nonzero(survive)
            if len(srow) == 0:
                continue
            # One batched distance evaluation for all survivors of this
            # group, bit-identical per entry to the reference's
            # one_to_many_distances call.
            p_idx = scan[rows[srow]]
            counters.add_point_accesses(len(p_idx))
            d = paired_distances(self.X[p_idx], self._centroids[members[scol]], counters)
            dists = np.full((len(rows), len(members)), np.inf)
            dists[srow, scol] = d
            gmin = dists.min(axis=1)
            garg = bm.argmin(dists, axis=1)
            # Two smallest computed distances feed the bound assembly.
            comp_min1[rows, g] = gmin
            if len(members) > 1:
                comp_min2[rows, g] = bm.partition(dists, 1, axis=1)[:, 1]
            # Running-best update: argmin's first-index tie-break over
            # ascending member order equals the reference's sequential
            # strict-< scan within the group.
            improved = gmin < best_d[rows]
            upd = rows[improved]
            best[upd] = members[garg[improved]]
            best_d[upd] = gmin[improved]
        # Assemble refreshed bounds from the scan evidence.  The final
        # winner's distance is excluded from its own group's bound; it is
        # always that group's smallest computed distance, so the exclusion
        # is the second-smallest there and the smallest everywhere else.
        moved = best != old_a
        excl = comp_min1
        g_best = self.groups.group_of[best]
        excl[moved, g_best[moved]] = comp_min2[moved, g_best[moved]]
        value = np.minimum(skip_min, excl)
        write = scanned & np.isfinite(value)
        wrow, wcol = np.nonzero(write)
        if len(wrow):
            self._glb[scan[wrow], wcol] = value[wrow, wcol]
            counters.add_bound_updates(len(wrow))
        mv = np.flatnonzero(moved)
        if len(mv):
            p = scan[mv]
            self._labels[p] = best[mv]
            self._ub[p] = best_d[mv]
            counters.add_bound_updates(len(mv))
            # The old assigned centroid now participates in its group bound
            # (its exact distance is known from the ub tightening).
            g_old = self.groups.group_of[old_a[mv]]
            self._glb[p, g_old] = np.minimum(self._glb[p, g_old], da[mv])
            counters.add_bound_updates(len(mv))


class VectorizedLloydKMeans(LloydKMeans):
    """Lloyd's algorithm with a speculative expansion scan + exact fallback.

    The reference full scan uses :func:`chunked_sq_distances` — direct
    differencing, bit-identical to the pointwise helpers but ~4x slower
    than the GEMM-backed expansion trick.  This class computes the whole
    ``(n, k)`` matrix with :func:`pairwise_sq_distances` (cached row norms,
    one GEMM) and takes its argmin, then *proves* each winner correct: a
    row can only disagree with the exact scan if its two smallest expansion
    values are within twice the expansion's rounding-error bound, and only
    those suspect rows are recomputed with the exact kernel.

    Soundness of the margin test: for every entry,
    ``|expansion - exact| <= margin_i`` where ``margin_i`` scales with the
    row/centroid squared norms (cancellation is the only error source; see
    ``_expansion_margin``).  If the expansion's best-vs-runner-up gap
    exceeds ``2 * margin_i``, the exact values preserve strict order, so
    the exact argmin is unique and equals the expansion argmin — no
    tie-breaking is involved.  Exact ties or near-ties always fall inside
    the margin and take the exact path, inheriting ``np.argmin``'s
    first-index rule on the same bits the reference sees
    (:func:`chunked_sq_distances` is row-subset invariant).  On generic
    data the suspect set is empty or tiny, so the scan runs at GEMM speed.

    Counter totals are unchanged: ``n * k`` distances and ``n * k`` point
    accesses per iteration, charged up front like the reference — the
    exact-fallback recomputation re-evaluates distances already charged,
    which the cost model treats as one logical evaluation.
    """

    backend = "vectorized"

    #: safety factor over the worst-case relative rounding error of the
    #: expansion identity |a-b|^2 = |a|^2 + |b|^2 - 2 a.b (a standard
    #: forward-error analysis gives ~3(d+3) eps (|a|^2 + |b|^2); 16(d+4)
    #: leaves a generous cushion without inflating the suspect set).
    _MARGIN_FACTOR = 16.0

    def _setup(self) -> None:
        super()._setup()
        self._x_sq: np.ndarray | None = None

    def _expansion_margin(self, c_sq: np.ndarray) -> np.ndarray:
        """Per-row bound on ``|expansion - exact|`` for the current scan."""
        eps = np.finfo(np.float64).eps
        d = self.X.shape[1]
        return (
            self._MARGIN_FACTOR * (d + 4) * eps * (self._x_sq + float(c_sq.max()))
        )

    def _assign(self, iteration: int) -> None:
        if self._x_sq is None:
            self._x_sq = sq_norms(self.X)
        c_sq = sq_norms(self._centroids)
        self._labels = lloyd_assign_rows(
            self.X,
            self._centroids,
            self._x_sq,
            c_sq,
            self.counters,
            margin_factor=self._MARGIN_FACTOR,
        )


class VectorizedIndexKMeans(IndexKMeans):
    """Index-based k-means with a frontier-batched breadth-first traversal.

    The reference descends the tree recursively, making one tiny NumPy call
    per node (Section 3's filtering algorithm).  This class processes whole
    BFS *frontiers* instead: one :func:`block_distances` call yields the
    pivot-to-centroid matrix for every frontier node, the Eq. 2/9 batch
    test and the ring filter ``d_j - r <= d_1 + r`` run array-wise over the
    frontier, pruned subtrees queue their ``sv``/``num`` batch assignment,
    and all surviving leaves are scanned in one concatenated
    :func:`chunked_sq_distances` call.

    Exactness
    ---------
    * Per-node decisions are identical: ``block_distances`` entries are
      bit-identical to the reference's ``one_to_many_distances``; masked
      ``argmin``/``partition`` reproduce the stable-argsort two-smallest
      over each node's (ascending) candidate set; the kd-tree hyperplane
      filter reuses the inherited per-node corner test verbatim.  So every
      node is batch-assigned / filtered / descended exactly as in the
      reference, and each leaf sees the same candidate set.
    * The sum update is replayed, not re-derived: the reference's
      depth-first descent performs one well-defined sequence of additions
      into ``self._sums`` — per visited node in left-to-right pre-order,
      either its ``sv`` vector (batch assignment) or its points one by one
      (leaf fold, ``np.add.at``).  The traversal buffers every decision,
      sorts by pre-order rank (``MetricTree.preorder_nodes``), stacks the
      addend rows in exactly that order and folds them with the same
      sequential bincount scatter-add the shared refinement step uses
      (:func:`repro.core.refinement.accumulate_cluster_sums`) — from the
      zeroed per-iteration base this is bit-identical to the reference's
      addition sequence, so the refined centroids match bitwise.  Label
      writes and integer counts are order-independent and applied in bulk
      (whole subtrees via precomputed pre-order point ranges).
    * Counters charge per pruning decision, as always: node accesses per
      frontier node, one distance per (node, surviving candidate) pair
      actually tested, leaf point accesses/distances per (point, candidate)
      pair scanned — the full-matrix kernel calls themselves are uncounted.
    """

    backend = "vectorized"

    def _setup(self) -> None:
        super()._setup()
        # Pre-order flattening of the tree (parallel arrays indexed by
        # left-to-right pre-order rank = reference visit order), cached on
        # the tree itself so repeated fits over a prebuilt index pay it once.
        flat = self.tree.preorder_flat()
        self._nodes = flat.nodes
        self._pivots = flat.pivots
        self._radii = flat.radii
        self._svs = flat.svs
        self._leaf_flags = flat.leaf_flags
        self._child_flat = flat.child_flat
        self._child_offsets = flat.child_offsets
        # Each subtree covers the contiguous slice perm[start[r]:end[r]],
        # replacing the reference's per-call subtree walk for
        # (order-independent) bulk label writes.
        self._perm = flat.perm
        self._subtree_starts = flat.subtree_starts
        self._subtree_ends = flat.subtree_ends

    def _assign(self, iteration: int) -> None:
        self._sums.fill(0.0)
        self._counts.fill(0)
        counters = self.counters
        centroids = self._centroids
        k = self.k
        nodes = self._nodes
        # Decisions accumulate as parallel arrays: batch-assigned node ranks
        # with their winning cluster, and surviving-leaf ranks with their
        # candidate masks (winners filled in after the batched scan).
        batch_rank_parts: List[np.ndarray] = []
        batch_best_parts: List[np.ndarray] = []
        leaf_rank_parts: List[np.ndarray] = []
        leaf_mask_parts: List[np.ndarray] = []
        frontier_ranks = np.array([0], dtype=np.intp)
        frontier_masks = np.ones((1, k), dtype=bool)
        while len(frontier_ranks):
            m = len(frontier_ranks)
            counters.add_node_accesses(m)
            # One distance per (node, candidate) pair, as in the reference;
            # the full (m, k) block itself is an uncounted kernel call.
            counters.add_distances(int(frontier_masks.sum()))
            dists = block_distances(self._pivots[frontier_ranks], centroids)
            np.copyto(dists, np.inf, where=~frontier_masks)
            best = bm.argmin(dists, axis=1)
            d1 = dists[np.arange(m), best]
            d2 = (
                bm.partition(dists, 1, axis=1)[:, 1]
                if k > 1
                else np.full(m, np.inf)
            )
            radii = self._radii[frontier_ranks]
            # Eq. 2/9 batch test; single-candidate nodes have d2 = inf and
            # batch-assign too, matching the reference's explicit branch.
            batch = d2 - d1 > 2.0 * radii
            if batch.any():
                batch_rank_parts.append(frontier_ranks[batch])
                batch_best_parts.append(best[batch])
            survivors = np.flatnonzero(~batch)
            if len(survivors) == 0:
                break
            # Ring filter over the whole frontier: candidates with
            # d_j - r > d_1 + r cannot win anywhere inside the ball.
            keep = dists[survivors] - radii[survivors, None] <= (
                d1[survivors] + radii[survivors]
            )[:, None]
            surv_ranks = frontier_ranks[survivors]
            surv_best = best[survivors]
            if self._use_hyperplane:
                for pos, row in enumerate(survivors):
                    cand_idx = np.flatnonzero(frontier_masks[row])
                    keep[pos, cand_idx] &= self._hyperplane_keep(
                        nodes[int(surv_ranks[pos])], cand_idx, int(surv_best[pos])
                    )
            keep[np.arange(len(survivors)), surv_best] = True
            leaf_sel = self._leaf_flags[surv_ranks]
            if leaf_sel.any():
                leaf_rank_parts.append(surv_ranks[leaf_sel])
                leaf_mask_parts.append(keep[leaf_sel])
            int_sel = ~leaf_sel
            int_ranks = surv_ranks[int_sel]
            if len(int_ranks):
                # CSR-style frontier expansion: gather every surviving
                # internal node's children in one shot.
                starts = self._child_offsets[int_ranks]
                cnts = self._child_offsets[int_ranks + 1] - starts
                rep = np.repeat(np.arange(len(int_ranks)), cnts)
                within = np.arange(int(cnts.sum())) - (np.cumsum(cnts) - cnts)[rep]
                frontier_ranks = self._child_flat[starts[rep] + within]
                frontier_masks = keep[int_sel][rep]
            else:
                frontier_ranks = np.empty(0, dtype=np.intp)
        empty = np.empty(0, dtype=np.intp)
        batch_ranks = (
            np.concatenate(batch_rank_parts) if batch_rank_parts else empty
        )
        batch_best = (
            np.concatenate(batch_best_parts) if batch_best_parts else empty
        )
        leaf_ranks = np.concatenate(leaf_rank_parts) if leaf_rank_parts else empty
        leaf_masks = (
            np.vstack(leaf_mask_parts)
            if leaf_mask_parts
            else np.empty((0, k), dtype=bool)
        )
        leaf_points, leaf_idx, leaf_winners, leaf_offsets = self._scan_leaves_batch(
            leaf_ranks, leaf_masks
        )
        # Replay: stack every decision's addend rows in reference (pre-order)
        # order — one sv row per batch-assigned node, the leaf's point rows
        # per scanned leaf — and fold them with one sequential bincount
        # scatter-add.  Bin-internal accumulation runs in row order, so each
        # (cluster, dim) cell sums in exactly the reference's sequence.
        n_batch = len(batch_ranks)
        order = np.argsort(np.concatenate([batch_ranks, leaf_ranks]))
        addends: List[np.ndarray] = []
        keys: List[np.ndarray] = []
        for pos in order:
            if pos < n_batch:
                addends.append(self._svs[batch_ranks[pos]][None])
                keys.append(batch_best[pos : pos + 1])
            else:
                lo, hi = leaf_offsets[pos - n_batch], leaf_offsets[pos - n_batch + 1]
                addends.append(leaf_points[lo:hi])
                keys.append(leaf_winners[lo:hi])
        if addends:
            self._sums[:] = accumulate_cluster_sums(
                np.concatenate(addends), np.concatenate(keys), k
            )
        # Labels and integer counts are order-independent: bulk subtree
        # slice writes for batch assignments, one write for all leaf points.
        lo = self._subtree_starts[batch_ranks]
        hi = self._subtree_ends[batch_ranks]
        np.add.at(self._counts, batch_best, hi - lo)
        for pos in range(n_batch):
            self._labels[self._perm[lo[pos] : hi[pos]]] = batch_best[pos]
        if len(leaf_winners):
            self._labels[leaf_idx] = leaf_winners
            self._counts += bm.bincount(leaf_winners, minlength=k)

    def _scan_leaves_batch(
        self, leaf_ranks: np.ndarray, leaf_masks: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One concatenated exact scan over every surviving leaf.

        Returns ``(points, point_indices, winners, offsets)`` where leaf
        ``i`` (in ``leaf_ranks`` order) owns rows
        ``offsets[i]:offsets[i+1]``.  Winners are bit-identical to the
        reference's per-leaf ``candidates[argmin]``: each group scans the
        exact column subset the reference scans (chunked entries are row-
        and column-subset invariant), so argmin sees the same floats in the
        same candidate order.
        """
        d = self.X.shape[1]
        if len(leaf_ranks) == 0:
            empty_idx = np.empty(0, dtype=np.intp)
            return np.empty((0, d)), empty_idx, empty_idx, np.zeros(1, dtype=np.intp)
        counters = self.counters
        # A leaf's perm slice is its own point_indices (see FlatTree).
        lstarts = self._subtree_starts[leaf_ranks]
        sizes = self._subtree_ends[leaf_ranks] - lstarts
        pairs = sizes * leaf_masks.sum(axis=1)
        counters.add_point_accesses(int(pairs.sum()))
        counters.add_distances(int(pairs.sum()))
        rep = np.repeat(np.arange(len(leaf_ranks)), sizes)
        offsets = np.zeros(len(leaf_ranks) + 1, dtype=np.intp)
        np.cumsum(sizes, out=offsets[1:])
        within = np.arange(int(offsets[-1])) - offsets[:-1][rep]
        idx = self._perm[lstarts[rep] + within]
        points = self.X[idx]
        # Group leaves sharing the same surviving-candidate set and scan
        # each group over those columns only — the same
        # ``chunked_sq_distances(points, centroids[candidates])`` call the
        # reference makes per leaf (entry- and subset-invariant), but one
        # rectangular kernel per distinct candidate set instead of one per
        # leaf, and no wasted columns for well-pruned frontiers.
        groups: Dict[bytes, List[int]] = {}
        for pos in range(len(leaf_ranks)):
            groups.setdefault(leaf_masks[pos].tobytes(), []).append(pos)
        winners = np.empty(len(points), dtype=np.intp)
        for leaf_positions in groups.values():
            cand = np.flatnonzero(leaf_masks[leaf_positions[0]])
            rowpos = (
                slice(offsets[leaf_positions[0]], offsets[leaf_positions[0] + 1])
                if len(leaf_positions) == 1
                else np.concatenate(
                    [np.arange(offsets[i], offsets[i + 1]) for i in leaf_positions]
                )
            )
            sq = chunked_sq_distances(points[rowpos], self._centroids[cand])
            winners[rowpos] = cand[bm.argmin(sq, axis=1)]
        return points, idx, winners, offsets


#: registry of vectorized implementations, keyed by algorithm name
VECTORIZED_ALGORITHMS: Dict[str, Type[KMeansAlgorithm]] = {
    "lloyd": VectorizedLloydKMeans,
    "elkan": VectorizedElkanKMeans,
    "hamerly": VectorizedHamerlyKMeans,
    "yinyang": VectorizedYinyangKMeans,
    "index": VectorizedIndexKMeans,
}

__all__ = [
    "VECTORIZED_ALGORITHMS",
    "VectorizedElkanKMeans",
    "VectorizedHamerlyKMeans",
    "VectorizedIndexKMeans",
    "VectorizedLloydKMeans",
    "VectorizedYinyangKMeans",
    "elkan_assign_rows",
    "elkan_seed_rows",
    "hamerly_assign_rows",
    "hamerly_seed_rows",
    "lloyd_assign_rows",
]
