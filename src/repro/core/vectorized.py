"""Vectorized NumPy backend for the sequential bound-based algorithms.

The reference implementations in :mod:`repro.core.elkan`,
:mod:`repro.core.hamerly` and :mod:`repro.core.yinyang` run their pruning
loops point by point — faithful to the paper's pseudocode and easy to
audit, but dominated by Python interpreter overhead, so the "accelerated"
methods often lose to plain vectorized Lloyd on wall-clock.  Newling &
Fleuret's and Raff's implementations show the fix: bound-based pruning only
pays when the bound *bookkeeping* is batched too.

The classes here are drop-in replacements selected with
``backend="vectorized"`` (see :func:`repro.core.make_algorithm` and
``docs/backends.md``).  Each subclasses its reference implementation and
replaces only the per-iteration assignment pass with array-held bounds,
masked batch updates and vectorized drift application; setup, iteration 0,
refinement and drift correction are inherited unchanged.

Exactness contract
------------------
The vectorized backend is not "close to" the reference — it is *equal*:

* identical labels, centroids (bitwise), iteration counts;
* identical :class:`~repro.instrumentation.counters.OpCounters` totals per
  iteration.

Both follow from two invariants, enforced by
``tests/test_backend_conformance.py`` and ``tests/test_golden_traces.py``:

1. every distance is computed by a batch kernel of
   :mod:`repro.common.distance` that is bit-identical per row to the scalar
   helper the reference calls (:func:`~repro.common.distance.paired_distances`
   for ``euclidean``, :func:`~repro.common.distance.block_distances` for
   ``one_to_many_distances``), so every pruning test sees the same 64-bit
   float and takes the same branch;
2. the per-point scan order is preserved by swapping loop nesting, never by
   changing the decision procedure: the reference iterates points outer /
   candidates inner, the vectorized code iterates candidates outer / points
   (as arrays) inner.  Per-point state (current best, upper bound) is held
   in arrays and updated after each candidate column, which reproduces the
   reference's sequential semantics exactly because points never interact
   within an assignment pass.

Counters are charged per *pruning decision* — one distance per row-pair
actually evaluated, one bound access per bound read by a test — never per
BLAS call.  A batched kernel that evaluates 10k distances in one call
charges 10k, and a test that short-circuits for some points charges only
the points that reached it.  This keeps every Table 3-style metric
backend-independent: the paper's tables measure algorithmic work, and both
backends do the same algorithmic work.
"""

from __future__ import annotations

from typing import Dict, Type

import numpy as np

from repro.common.distance import block_distances, paired_distances
from repro.core.base import KMeansAlgorithm
from repro.core.elkan import ElkanKMeans
from repro.core.hamerly import HamerlyKMeans
from repro.core.pruning import centroid_separations
from repro.core.yinyang import YinyangKMeans


class VectorizedElkanKMeans(ElkanKMeans):
    """Elkan's algorithm with batched bound tests (candidate-major order).

    The reference scans each global-test survivor's candidate centroids in
    ascending index order, tightening ``ub`` first.  Here the candidate
    filter runs as one masked ``(survivors, k)`` comparison, tightening as
    one paired-distance call, and the candidate scan as a loop over
    centroid *columns* with the surviving point set shrinking per column —
    the same decisions in the same per-point order, interpreted k times
    instead of n times.
    """

    backend = "vectorized"

    def _assign(self, iteration: int) -> None:
        if iteration == 0:
            self._initial_scan()
            return

        if self.use_inter:
            cc, s = centroid_separations(self._centroids, self.counters)
        else:
            cc = None
            s = np.zeros(self.k)  # never prunes
        n = len(self.X)
        labels = self._labels
        ub = self._ub
        lb = self._lb
        counters = self.counters
        # Global test (n bound reads), identical to the reference.
        counters.add_bound_accesses(n)
        active = np.flatnonzero(ub > s[labels])
        if len(active) == 0:
            return
        # Candidate filter: both Elkan conditions over all j != a, one
        # masked block instead of a per-point loop (k bound reads each).
        a0 = labels[active]
        u0 = ub[active]
        counters.add_bound_accesses(len(active) * self.k)
        cand = lb[active] < u0[:, None]
        if cc is not None:
            cand &= 0.5 * cc[a0] < u0[:, None]
        cand[np.arange(len(active)), a0] = False
        has = cand.any(axis=1)
        pts = active[has]
        if len(pts) == 0:
            return
        cand = cand[has]
        # Tighten ub to the exact distance for every surviving point.
        a = labels[pts]
        counters.add_point_accesses(len(pts))
        d_a = paired_distances(self.X[pts], self._centroids[a], counters)
        ub[pts] = d_a
        lb[pts, a] = d_a
        counters.add_bound_updates(2 * len(pts))
        u = d_a.copy()
        # Candidate scan, column-major: ascending j preserves each point's
        # reference scan order; u/labels update per column, so the running
        # best a point carries into column j+1 matches the reference's
        # sequential inner loop.
        for j in range(self.k):
            rows = np.flatnonzero(cand[:, j])
            if len(rows) == 0:
                continue
            p = pts[rows]
            counters.add_bound_accesses(2 * len(rows))
            skip = lb[p, j] >= u[rows]
            if cc is not None:
                skip |= 0.5 * cc[labels[p], j] >= u[rows]
            todo = rows[~skip]
            if len(todo) == 0:
                continue
            q = pts[todo]
            counters.add_point_accesses(len(q))
            d_j = paired_distances(self.X[q], self._centroids[j], counters)
            lb[q, j] = d_j
            counters.add_bound_updates(len(q))
            better = d_j < u[todo]
            if better.any():
                moved = todo[better]
                labels[pts[moved]] = j
                ub[pts[moved]] = d_j[better]
                u[moved] = d_j[better]
                counters.add_bound_updates(int(better.sum()))


class VectorizedHamerlyKMeans(HamerlyKMeans):
    """Hamerly's algorithm with batched tighten-and-rescan.

    One paired-distance call tightens every global-test survivor's upper
    bound; the points that still fail rescan all ``k`` centroids in one
    ``(rescans, k)`` block with a vectorized two-smallest reduction.
    """

    backend = "vectorized"

    def _assign(self, iteration: int) -> None:
        if iteration == 0:
            self._initial_scan()
            return
        _, s = centroid_separations(self._centroids, self.counters)
        labels = self._labels
        ub = self._ub
        lb = self._lb
        counters = self.counters
        # Global test over all points (2n bound reads), as in the reference.
        thresholds = np.maximum(lb, s[labels])
        counters.add_bound_accesses(2 * len(self.X))
        active = np.flatnonzero(ub > thresholds)
        if len(active) == 0:
            return
        # Tighten the upper bound with one exact distance per survivor.
        counters.add_point_accesses(len(active))
        d_a = paired_distances(self.X[active], self._centroids[labels[active]], counters)
        ub[active] = d_a
        counters.add_bound_updates(len(active))
        rescan = active[d_a > thresholds[active]]
        if len(rescan) == 0:
            return
        # Full rescan block: every entry bit-identical to the reference's
        # one_to_many_distances row, so argmin tie-breaking is preserved.
        counters.add_point_accesses(len(rescan) * self.k)
        dists = block_distances(self.X[rescan], self._centroids, counters)
        best = np.argmin(dists, axis=1)
        d1 = dists[np.arange(len(rescan)), best]
        if self.k > 1:
            d2 = np.partition(dists, 1, axis=1)[:, 1]
        else:
            d2 = np.full(len(rescan), np.inf)
        labels[rescan] = best
        ub[rescan] = d1
        lb[rescan] = d2
        counters.add_bound_updates(2 * len(rescan))


class VectorizedYinyangKMeans(YinyangKMeans):
    """Yinyang with batched group pruning (group-major scan order).

    The reference scans each survivor's groups in ascending group order,
    maintaining a running best and assembling refreshed group bounds from
    the scan evidence.  Here the group loop is outermost: per group, the
    entry test, the local per-centroid filter and the survivor distances
    run as masked blocks over all scanning points at once, with per-point
    running state (``best``, ``best_d``) carried between groups in arrays.
    The bound-assembly evidence — minimum skipped local bound and the two
    smallest computed distances per (point, group) — is accumulated in
    arrays and resolved after the scan, excluding the final winner exactly
    as the reference's per-centroid assembly does.
    """

    backend = "vectorized"

    def _assign(self, iteration: int) -> None:
        if iteration == 0:
            self._initial_scan()
            return

        counters = self.counters
        glb = self._glb
        ub = self._ub
        t = self.groups.t
        # Global test ((t+1) * n bound reads), identical to the reference.
        gmins = glb.min(axis=1)
        counters.add_bound_accesses((t + 1) * len(self.X))
        active = np.flatnonzero(ub > gmins)
        if len(active) == 0:
            return
        counters.add_point_accesses(len(active))
        d_a = paired_distances(
            self.X[active], self._centroids[self._labels[active]], counters
        )
        ub[active] = d_a
        counters.add_bound_updates(len(active))
        keep = d_a > gmins[active]
        scan = active[keep]
        if len(scan) == 0:
            return
        self._scan_groups_batch(scan, d_a[keep])

    def _scan_groups_batch(self, scan: np.ndarray, da: np.ndarray) -> None:
        """Group-major scan of every failing point; exact two-tier pruning.

        ``scan`` holds the point indices whose tightened upper bound still
        exceeds their minimum group bound; ``da`` their exact distances to
        their assigned centroids.  Mirrors the reference ``_scan_groups``
        with the point loop vectorized away.
        """
        counters = self.counters
        m = len(scan)
        t = self.groups.t
        group_decay = self._group_decay
        old_a = self._labels[scan].copy()
        best = old_a.copy()
        best_d = da.copy()
        scanned = np.zeros((m, t), dtype=bool)
        # Scan evidence, resolved after the group loop: minimum skipped
        # local-filter bound and the two smallest computed distances per
        # (point, group).
        skip_min = np.full((m, t), np.inf)
        comp_min1 = np.full((m, t), np.inf)
        comp_min2 = np.full((m, t), np.inf)
        for g in range(t):
            counters.add_bound_accesses(m)
            enter = self._glb[scan, g] < best_d
            scanned[:, g] = enter
            rows = np.flatnonzero(enter)
            if len(rows) == 0:
                continue
            members = self.groups.members[g]
            others = members[None, :] != old_a[rows, None]
            counters.add_bound_accesses(int(others.sum()))
            # Per-centroid local filter against the pre-drift group bound.
            old_bound = self._glb[scan[rows], g] + group_decay[g]
            per_j = old_bound[:, None] - self._last_drifts[members][None, :]
            survive = (per_j < best_d[rows, None]) & others
            skipped = others & ~survive
            if skipped.any():
                skip_min[rows, g] = np.where(skipped, per_j, np.inf).min(axis=1)
            srow, scol = np.nonzero(survive)
            if len(srow) == 0:
                continue
            # One batched distance evaluation for all survivors of this
            # group, bit-identical per entry to the reference's
            # one_to_many_distances call.
            p_idx = scan[rows[srow]]
            counters.add_point_accesses(len(p_idx))
            d = paired_distances(self.X[p_idx], self._centroids[members[scol]], counters)
            dists = np.full((len(rows), len(members)), np.inf)
            dists[srow, scol] = d
            gmin = dists.min(axis=1)
            garg = dists.argmin(axis=1)
            # Two smallest computed distances feed the bound assembly.
            comp_min1[rows, g] = gmin
            if len(members) > 1:
                comp_min2[rows, g] = np.partition(dists, 1, axis=1)[:, 1]
            # Running-best update: argmin's first-index tie-break over
            # ascending member order equals the reference's sequential
            # strict-< scan within the group.
            improved = gmin < best_d[rows]
            upd = rows[improved]
            best[upd] = members[garg[improved]]
            best_d[upd] = gmin[improved]
        # Assemble refreshed bounds from the scan evidence.  The final
        # winner's distance is excluded from its own group's bound; it is
        # always that group's smallest computed distance, so the exclusion
        # is the second-smallest there and the smallest everywhere else.
        moved = best != old_a
        excl = comp_min1
        g_best = self.groups.group_of[best]
        excl[moved, g_best[moved]] = comp_min2[moved, g_best[moved]]
        value = np.minimum(skip_min, excl)
        write = scanned & np.isfinite(value)
        wrow, wcol = np.nonzero(write)
        if len(wrow):
            self._glb[scan[wrow], wcol] = value[wrow, wcol]
            counters.add_bound_updates(len(wrow))
        mv = np.flatnonzero(moved)
        if len(mv):
            p = scan[mv]
            self._labels[p] = best[mv]
            self._ub[p] = best_d[mv]
            counters.add_bound_updates(len(mv))
            # The old assigned centroid now participates in its group bound
            # (its exact distance is known from the ub tightening).
            g_old = self.groups.group_of[old_a[mv]]
            self._glb[p, g_old] = np.minimum(self._glb[p, g_old], da[mv])
            counters.add_bound_updates(len(mv))


#: registry of vectorized implementations, keyed by algorithm name
VECTORIZED_ALGORITHMS: Dict[str, Type[KMeansAlgorithm]] = {
    "elkan": VectorizedElkanKMeans,
    "hamerly": VectorizedHamerlyKMeans,
    "yinyang": VectorizedYinyangKMeans,
}

__all__ = [
    "VECTORIZED_ALGORITHMS",
    "VectorizedElkanKMeans",
    "VectorizedHamerlyKMeans",
    "VectorizedYinyangKMeans",
]
