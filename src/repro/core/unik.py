"""UniK — the paper's unified, adaptive k-means pipeline (Section 5).

UniK scans *objects* — index nodes and points — through one pruning
pipeline.  A node shares the point's bound pipeline with its radius ``r``
folded into every test (``r = 0`` recovers the point case):

* global stay test (Eq. 10):  ``min_g lb(p, g) - r > ub(p) + r``;
* group pruning over Yinyang-style centroid groups;
* local test (Eq. 11) folded into the group scan;
* whole-node assignment (Eq. 9): assign when the gap between the two
  nearest centroids exceeds ``2r``, moving the node's precomputed sum
  vector between clusters in batch;
* node splitting with bound inheritance (Eq. 12): children reuse the
  parent's bounds shifted by the parent-to-child pivot distance ``psi``
  (cached per point at build time for leaf members).

Refinement is the incremental sum-vector update of Section 5.1.2: clusters
carry exact sums at all times, so no data point is re-read.

Traversal modes (Section 5.3):

``single``
    Iteration 0 descends from the root; surviving nodes and points become
    persistent objects carrying bounds across iterations.
``multiple``
    Every iteration re-descends from the root with fresh bound inheritance.
``adaptive`` (default)
    Runs iteration 0 from the root and iteration 1 from the object lists,
    then keeps whichever assignment phase was faster — the paper's
    index-single / index-multiple switch.

Setting ``t = k`` gives per-centroid bounds (Elkan-strength locals), and
``block_filter=True`` adds the block-vector pre-distance test on points;
enabling both yields the paper's ``Full`` configuration (maximum pruning
ratio, heavy bound traffic).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.distance import euclidean, one_to_many_distances
from repro.common.exceptions import ConfigurationError
from repro.core.base import KMeansAlgorithm
from repro.core.pruning import GroupView, default_group_count, group_centroids_kmeans
from repro.core.vector import block_norms
from repro.indexes import INDEX_CLASSES, MetricTree, TreeNode

_TRAVERSALS = ("single", "multiple", "adaptive")


class _Obj:
    """A pipeline object: an index node or a single point, with bounds."""

    __slots__ = ("node", "point", "a", "ub", "glb")

    def __init__(
        self,
        node: Optional[TreeNode],
        point: int,
        a: int,
        ub: float,
        glb: np.ndarray,
    ) -> None:
        self.node = node
        self.point = point
        self.a = a
        self.ub = ub
        self.glb = glb

    @property
    def radius(self) -> float:
        return self.node.radius if self.node is not None else 0.0


class UniKKMeans(KMeansAlgorithm):
    """The unified adaptive index+bound algorithm (Algorithm 1)."""

    name = "unik"
    refinement = "none"

    def __init__(
        self,
        *,
        index: str = "ball-tree",
        capacity: int = 30,
        traversal: str = "adaptive",
        t: Optional[int] = None,
        block_filter: bool = False,
        group_seed: int = 0,
        tree: Optional[MetricTree] = None,
    ) -> None:
        super().__init__()
        if traversal not in _TRAVERSALS:
            raise ConfigurationError(
                f"traversal must be one of {_TRAVERSALS}, got {traversal!r}"
            )
        self.index_name = index.lower()
        if self.index_name not in INDEX_CLASSES and tree is None:
            known = ", ".join(sorted(INDEX_CLASSES))
            raise ConfigurationError(f"unknown index {index!r}; known: {known}")
        self.capacity = int(capacity)
        self.traversal = traversal
        self._t_param = t
        self.block_filter = bool(block_filter)
        self._group_seed = group_seed
        self.tree = tree
        self._mode = traversal  # resolved mode after the adaptive probe

    # ------------------------------------------------------------------
    # Setup.
    # ------------------------------------------------------------------

    def _setup(self) -> None:
        if self.tree is None or self.tree.X is not self.X:
            cls = INDEX_CLASSES[self.index_name]
            kwargs = {}
            if self.index_name != "cover-tree":
                kwargs["capacity"] = self.capacity
            self.tree = cls(self.X, **kwargs)
        self._t = self._t_param if self._t_param is not None else default_group_count(self.k)
        self._t = max(1, min(int(self._t), self.k))
        self._leaf_psi: Dict[int, np.ndarray] = {}
        for leaf in self.tree.leaves():
            # Per-leaf point-to-pivot gaps feed the group filter bounds;
            # they are real d-dimensional evaluations, charged as setup cost.
            self._leaf_psi[id(leaf)] = one_to_many_distances(
                # repro: ignore[R003] — setup-phase gather; the distances are charged, accesses are setup cost
                leaf.pivot, self.X[leaf.point_indices], self.counters
            )
        if self.block_filter:
            self._xblocks = block_norms(self.X, 2)
            # repro: ignore[R001] — norm table (Section 4.3), charged as bound updates
            self._xnorm_sq = np.einsum("ij,ij->i", self.X, self.X)
        self._objects: List[_Obj] = []
        self._mode = self.traversal
        self._assign_times: List[float] = []
        self.counters.record_footprint(
            self.tree.space_cost_floats() + len(self.X) * (self._t + 1)
        )

    # ------------------------------------------------------------------
    # Assignment dispatch.
    # ------------------------------------------------------------------

    def _assign(self, iteration: int) -> None:
        begin = time.perf_counter()
        if self.block_filter:
            self._cblocks = block_norms(self._centroids, 2)
            # repro: ignore[R001] — norm table (Section 4.3), charged as bound updates
            self._cnorm_sq = np.einsum("ij,ij->i", self._centroids, self._centroids)
            self.counters.add_bound_updates(3 * self.k)
        if iteration == 0:
            self.groups = GroupView(
                group_centroids_kmeans(self._centroids, self._t, seed=self._group_seed)
            )
            self._group_decay = np.zeros(self.groups.t)
            self._last_drifts = np.zeros(self.k)
            self._root_pass()
        elif self._mode == "multiple" and self.traversal != "adaptive":
            self._root_pass()
        elif self.traversal == "adaptive" and iteration == 1:
            self._list_pass()
        elif self.traversal == "adaptive" and iteration == 2 and len(self._assign_times) >= 2:
            # The adaptive switch: keep whichever first-iteration style won.
            if self._assign_times[0] < self._assign_times[1]:
                self._mode = "multiple"
                self._root_pass()
            else:
                self._mode = "single"
                self._list_pass()
        elif self._mode == "multiple":
            self._root_pass()
        else:
            self._list_pass()
        self._assign_times.append(time.perf_counter() - begin)

    # ------------------------------------------------------------------
    # Root traversal (iteration 0 and index-multiple mode).
    # ------------------------------------------------------------------

    def _root_pass(self) -> None:
        self._sums.fill(0.0)
        self._counts.fill(0)
        self._objects = []
        self._fresh_descend(self.tree.root, None, np.inf, None)

    def _fresh_descend(
        self,
        node: TreeNode,
        anchor: Optional[int],
        ub: float,
        glb: Optional[np.ndarray],
    ) -> None:
        """Descend with inherited bounds; assign, or split and recurse."""
        self.counters.add_node_accesses(1)
        best, d1, d2_lower, new_glb = self._scan(node.pivot, node.radius, anchor, ub, glb)
        if d2_lower - d1 > 2.0 * node.radius:
            self._install_node(node, best, d1, new_glb)
            return
        if node.is_leaf:
            self._dissolve_leaf(node, best, d1, new_glb)
            return
        for child in node.children:
            child_glb = new_glb - child.psi
            self.counters.add_bound_updates(self.groups.t + 1)
            self._fresh_descend(child, best, d1 + child.psi, child_glb)

    def _install_node(self, node: TreeNode, cluster: int, d1: float, glb: np.ndarray) -> None:
        self._sums[cluster] += node.sv
        self._counts[cluster] += node.num
        self._labels[node.subtree_point_indices()] = cluster
        self._objects.append(_Obj(node, -1, cluster, d1, glb))

    def _dissolve_leaf(
        self, node: TreeNode, anchor: int, d1: float, glb: np.ndarray
    ) -> None:
        """A leaf that cannot assign in batch dissolves into point objects."""
        psis = self._leaf_psi[id(node)]
        for pos, i in enumerate(node.point_indices):
            i = int(i)
            psi = float(psis[pos])
            self.counters.add_bound_updates(self.groups.t + 1)
            point_glb = glb - psi
            best, dist, _, new_glb = self._scan(
                self.X[i], 0.0, anchor, d1 + psi, point_glb,
                is_point=True, point_index=i,
            )
            # repro: ignore[R003] — _scan charges its own accesses; sum upkeep is refinement-"none" (uncounted by design)
            self._sums[best] += self.X[i]
            self._counts[best] += 1
            self._labels[i] = best
            self._objects.append(_Obj(None, i, best, dist, new_glb))

    # ------------------------------------------------------------------
    # Object-list traversal (index-single steady state).
    # ------------------------------------------------------------------

    def _list_pass(self) -> None:
        objects = self._objects
        self._objects = []
        for obj in objects:
            if obj.node is not None:
                self._process_node_obj(obj)
            else:
                self._process_point_obj(obj)

    def _process_node_obj(self, obj: _Obj) -> None:
        node = obj.node
        self.counters.add_node_accesses(1)
        r = node.radius
        self.counters.add_bound_accesses(self.groups.t + 1)
        if float(obj.glb.min()) - r > obj.ub + r:  # Eq. 10: whole node stays
            self._objects.append(obj)
            return
        best, d1, d2_lower, new_glb = self._scan(node.pivot, r, obj.a, obj.ub, obj.glb)
        if d2_lower - d1 > 2.0 * r:
            if best != obj.a:
                self._sums[obj.a] -= node.sv
                self._counts[obj.a] -= node.num
                self._sums[best] += node.sv
                self._counts[best] += node.num
                self._labels[node.subtree_point_indices()] = best
            obj.a = best
            obj.ub = d1
            obj.glb = new_glb
            self._objects.append(obj)
            return
        # Split: the node leaves its cluster; children re-enter the pipeline
        # with inherited bounds (Eq. 12) and are assigned immediately.
        self._sums[obj.a] -= node.sv
        self._counts[obj.a] -= node.num
        if node.is_leaf:
            self._dissolve_leaf(node, best, d1, new_glb)
        else:
            for child in node.children:
                child_glb = new_glb - child.psi
                self.counters.add_bound_updates(self.groups.t + 1)
                self._fresh_descend(child, best, d1 + child.psi, child_glb)

    def _process_point_obj(self, obj: _Obj) -> None:
        i = obj.point
        self.counters.add_bound_accesses(self.groups.t + 1)
        if float(obj.glb.min()) > obj.ub:  # global stay test, r = 0
            self._objects.append(obj)
            return
        best, d1, _, new_glb = self._scan(
            # repro: ignore[R003] — _scan charges its own accesses; sum upkeep is refinement-"none" (uncounted by design)
            self.X[i], 0.0, obj.a, obj.ub, obj.glb,
            is_point=True, point_index=i,
        )
        if best != obj.a:
            self._sums[obj.a] -= self.X[i]
            self._counts[obj.a] -= 1
            self._sums[best] += self.X[i]
            self._counts[best] += 1
            self._labels[i] = best
        obj.a = best
        obj.ub = d1
        obj.glb = new_glb
        self._objects.append(obj)

    # ------------------------------------------------------------------
    # The shared scan: global tighten + group pruning + local scan.
    # ------------------------------------------------------------------

    def _scan(
        self,
        vec: np.ndarray,
        r: float,
        anchor: Optional[int],
        ub: float,
        glb: Optional[np.ndarray],
        *,
        is_point: bool = False,
        point_index: int = -1,
    ) -> Tuple[int, float, float, np.ndarray]:
        """Find the nearest centroid for ``vec`` using the bound pipeline.

        Returns ``(best, d1, d2_lower, new_glb)`` where ``d2_lower`` is a
        lower bound on the second-nearest distance (exact when every group
        is scanned) and ``new_glb`` the refreshed per-group bounds.
        """
        counters = self.counters
        groups = self.groups
        if glb is None:
            glb = np.full(groups.t, -np.inf)
        if anchor is not None:
            da = self._object_distance(vec, anchor, is_point)
            best, d1 = anchor, da
            ub = min(ub, da)
        else:
            da = np.inf
            best, d1 = -1, np.inf
        second = np.inf
        scanned: List[int] = []
        computed: List[Tuple[int, float]] = []
        skip_bounds: Dict[int, float] = {}
        for g, members in enumerate(groups.members):
            counters.add_bound_accesses(1)
            if glb[g] - r > min(ub, d1) + r:  # group pruning (Eq. 11 with r)
                second = min(second, float(glb[g]))
                continue
            scanned.append(g)
            others = members[members != anchor] if anchor is not None else members
            if len(others) == 0:
                continue
            if is_point and self.block_filter and point_index >= 0 and np.isfinite(d1):
                # Vectorized block-vector pre-filter: members whose block
                # bound already exceeds the current best cannot win; their
                # bound is a valid lower bound for the group refresh.
                counters.add_bound_accesses(len(others))
                bbs = self._block_bounds(point_index, others)
                mask = bbs < d1
                if not mask.all():
                    skipped_min = float(bbs[~mask].min())
                    skip_bounds[g] = min(skip_bounds.get(g, np.inf), skipped_min)
                    second = min(second, skipped_min)
                others = others[mask]
                if len(others) == 0:
                    continue
            dists = self._object_distances(vec, others, is_point)
            for pos, j in enumerate(others):
                dij = float(dists[pos])
                computed.append((int(j), dij))
                if dij < d1:
                    d1 = dij
                    best = int(j)
        # Assemble refreshed group bounds from the scan evidence; attaching
        # each exact distance to its own group keeps bounds sound even when
        # the running best hops between groups mid-scan.
        new_glb = glb.copy()
        group_min = dict(skip_bounds)
        for j, dij in computed:
            if j == best:
                continue
            second = min(second, dij)
            g = int(groups.group_of[j])
            group_min[g] = min(group_min.get(g, np.inf), dij)
        for g in scanned:
            value = group_min.get(g, np.inf)
            if np.isfinite(value):
                new_glb[g] = value
                counters.add_bound_updates(1)
        if anchor is not None and best != anchor:
            g_old = int(groups.group_of[anchor])
            new_glb[g_old] = min(new_glb[g_old], da)
            second = min(second, da)
            counters.add_bound_updates(1)
        return best, d1, second, new_glb

    def _object_distance(self, vec: np.ndarray, j: int, is_point: bool) -> float:
        if is_point:
            self.counters.point_accesses += 1
        return euclidean(vec, self._centroids[j], self.counters)

    def _object_distances(
        self, vec: np.ndarray, centroid_idx: np.ndarray, is_point: bool
    ) -> np.ndarray:
        if is_point:
            self.counters.point_accesses += len(centroid_idx)
        return one_to_many_distances(
            vec, self._centroids[centroid_idx], self.counters
        )

    def _block_bounds(self, i: int, centroid_idx: np.ndarray) -> np.ndarray:
        """Vectorized block-vector lower bounds from point ``i`` to centroids."""
        xb = self._xblocks[i]
        sq = (
            float(self._xnorm_sq[i])
            + self._cnorm_sq[centroid_idx]
            - 2.0 * (self._cblocks[centroid_idx] @ xb)
        )
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq)

    def _block_bound(self, i: int, j: int) -> float:
        """Block-vector lower bound on the distance from point ``i`` to ``c_j``.

        Uses the per-point and per-centroid block norms cached in
        :meth:`_setup` / :meth:`_assign` (Cauchy-Schwarz per block).
        """
        xb = self._xblocks[i]
        cb = self._cblocks[j]
        sq = float(self._xnorm_sq[i]) + float(self._cnorm_sq[j]) - 2.0 * float(xb @ cb)
        return float(np.sqrt(sq)) if sq > 0.0 else 0.0

    # ------------------------------------------------------------------
    # Drift maintenance.
    # ------------------------------------------------------------------

    def _update_bounds(self, drifts: np.ndarray) -> None:
        self._last_drifts = drifts.copy()
        decay = self.groups.max_drift_per_group(drifts)
        self._group_decay = decay
        for obj in self._objects:
            obj.ub += float(drifts[obj.a])
            obj.glb -= decay
        self.counters.add_bound_updates(len(self._objects) * (self.groups.t + 1))

    def _extras(self) -> dict:
        node_objects = sum(1 for o in self._objects if o.node is not None)
        return {
            "index": self.tree.name,
            "traversal": self.traversal,
            "resolved_mode": self._mode,
            "objects": len(self._objects),
            "node_objects": node_objects,
            "point_objects": len(self._objects) - node_objects,
            "groups": self.groups.t,
        }
