"""Pre-assignment Search (Broder et al. 2014) — Section 3.2.

Each iteration first runs a similarity search around every centroid: points
within ``0.5 * min_{j'} d(c_j, c_j')`` of ``c_j`` are provably closer to
``c_j`` than to any other centroid and are assigned directly, served in
batch by a Ball-tree range query.  The half-minimum-separation balls are
disjoint, so no point is claimed twice.  Remaining points fall back to a
Lloyd full scan — which is why the paper finds Search uncompetitive (its
range queries cost nearly as much as they save) and drops it from the
selection pool; this implementation reproduces that cost profile.
"""

from __future__ import annotations

import numpy as np

from repro.common.distance import chunked_sq_distances
from repro.core.base import KMeansAlgorithm
from repro.core.pruning import centroid_separations
from repro.indexes.ball_tree import BallTree


class SearchKMeans(KMeansAlgorithm):
    """Broder et al.'s ranked-retrieval pre-assignment."""

    name = "search"

    def __init__(self, capacity: int = 30) -> None:
        super().__init__()
        self.capacity = int(capacity)
        self.tree: BallTree | None = None

    def _setup(self) -> None:
        self.tree = BallTree(self.X, capacity=self.capacity)
        self.counters.record_footprint(self.tree.space_cost_floats())
        self.index_build_distances = self.tree.counters.distance_computations

    def _assign(self, iteration: int) -> None:
        _, s = centroid_separations(self._centroids, self.counters)
        n = len(self.X)
        assigned = np.zeros(n, dtype=bool)
        for j in range(self.k):
            if not np.isfinite(s[j]):
                continue
            hits = self.tree.range_search(self._centroids[j], float(s[j]), self.counters)
            self._labels[hits] = j
            assigned[hits] = True
        rest = np.flatnonzero(~assigned)
        if len(rest):
            sq = chunked_sq_distances(self.X[rest], self._centroids, self.counters)
            self.counters.add_point_accesses(sq.size)
            self._labels[rest] = np.argmin(sq, axis=1).astype(np.intp)

    def _extras(self) -> dict:
        return {"index_build_distances": self.index_build_distances}
