"""Exponion algorithm (Newling & Fleuret 2016) — Section 4.3.2.

Extends Hamerly by replacing the full rescan with a ball around the
*assigned centroid*: after tightening ``ub`` to the exact distance, only
centroids with

    d(c_j, c_a)  <=  2 * ub(i) + d(c_a, nn(c_a))                   (Eq. 6)

can be the nearest or second-nearest, where ``nn(c_a)`` is ``c_a``'s closest
other centroid.  (Proof: the second-nearest distance is at most
``ub + d(c_a, nn)``; any first/second candidate ``c_j`` then satisfies
``d(c_j, c_a) <= d(x, c_j) + d(x, c_a) <= 2 ub + d(c_a, nn)``.)

Candidates are located by binary search in per-centroid sorted rows of the
inter-centroid distance matrix, which is recomputed (and each needed row
sorted, cached per iteration) — the O(k^2) bookkeeping the method spends to
shrink the annulus of Annular into a local ball.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.base import KMeansAlgorithm
from repro.core.pruning import centroid_separations, second_max, two_smallest


class ExponionKMeans(KMeansAlgorithm):
    """Hamerly plus the exponion centroid-ball filter."""

    name = "exponion"

    def __init__(self) -> None:
        super().__init__()
        self._ub: np.ndarray | None = None
        self._lb: np.ndarray | None = None

    def _setup(self) -> None:
        self.counters.record_footprint(2 * len(self.X) + self.k * self.k)

    def _assign(self, iteration: int) -> None:
        if iteration == 0:
            dists = self._full_scan_assign()
            n = len(self.X)
            idx = np.arange(n)
            self._ub = dists[idx, self._labels].copy()
            masked = dists.copy()
            masked[idx, self._labels] = np.inf
            self._lb = masked.min(axis=1) if self.k > 1 else np.full(n, np.inf)
            self.counters.add_bound_updates(2 * n)
            return

        cc, s = centroid_separations(self._centroids, self.counters)
        sorted_rows: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        counters = self.counters
        # Vectorized global test; survivors go pointwise.
        thresholds = np.maximum(self._lb, s[self._labels])
        counters.add_bound_accesses(2 * len(self.X))
        for i in np.flatnonzero(self._ub > thresholds):
            i = int(i)
            a = int(self._labels[i])
            threshold = float(thresholds[i])
            da = self._point_centroid_distance(i, a)
            self._ub[i] = da
            counters.add_bound_updates(1)
            if da <= threshold:
                continue
            # Exponion ball (Eq. 6): 2*ub + distance from c_a to its nearest
            # other centroid (which equals 2*s(a)).
            radius = 2.0 * da + 2.0 * float(s[a])
            if a not in sorted_rows:
                order = np.argsort(cc[a], kind="stable")
                sorted_rows[a] = (order, cc[a][order])
            order, row = sorted_rows[a]
            hi = int(np.searchsorted(row, radius, side="right"))
            candidates = order[:hi]
            dists = self._point_distances(i, candidates)
            pos, d1, d2 = two_smallest(dists)
            self._labels[i] = int(candidates[pos])
            self._ub[i] = d1
            self._lb[i] = d2
            counters.add_bound_updates(2)

    def _update_bounds(self, drifts: np.ndarray) -> None:
        top_j, top, second = second_max(drifts)
        self._ub += drifts[self._labels]
        decay = np.where(self._labels == top_j, second, top)
        self._lb -= decay
        self.counters.add_bound_updates(2 * len(self.X))
