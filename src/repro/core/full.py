"""The ``Full`` configuration (Figure 1): every bound knob enabled.

UniK with per-centroid groups (``t = k``, Elkan-strength local bounds), the
block-vector pre-distance filter, and index-based batch pruning.  It
achieves the highest pruning ratio of all methods — and, exactly as the
paper observes, is often the *slowest*, because bound accesses and updates
dominate the saved distance computations.
"""

from __future__ import annotations

from repro.core.unik import UniKKMeans


class FullKMeans(UniKKMeans):
    """All pruning mechanisms enabled at once."""

    name = "full"

    def __init__(self, *, index: str = "ball-tree", capacity: int = 30) -> None:
        super().__init__(
            index=index,
            capacity=capacity,
            traversal="single",
            t=None,  # resolved to k in _setup
            block_filter=True,
        )

    def _setup(self) -> None:
        self._t_param = self.k  # per-centroid bounds: the maximal configuration
        super()._setup()
