"""Sphere — a discovered hybrid configuration (Section A.5 realized).

The paper's future-work section argues that untested knob combinations
"will form new algorithms that can be potentially fast for a certain group
of clustering tasks".  Sphere is such a combination, found while exploring
the space with :mod:`repro.tuning.knob_search`: **Hamerly's two global
bounds** for the stay test plus **Pami20's cluster-radius ball** as the
candidate set on rescan.

Mechanics per failed point (assigned to ``a``):

* tighten ``ub`` with the exact distance ``da``; re-test;
* scan only centroids with ``d(c_a, c_j) / 2 <= ra(a)`` — sound because
  ``d(x, c_a) <= ub <= ra(a)``, so anything farther cannot win ``x``;
* refresh Hamerly's second-nearest bound as the min of the in-ball
  runner-up and ``min_j (d(c_a, c_j) - da)`` over out-of-ball centroids
  (triangle inequality), keeping the global bound sound.

State: ``2n + k`` floats — Hamerly's memory plus Pami20's radii.  On
well-clustered data it prunes more than either parent at the same
footprint (see ``examples/custom_algorithm.py`` for the head-to-head).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import KMeansAlgorithm
from repro.core.pruning import centroid_separations, second_max, two_smallest


class SphereKMeans(KMeansAlgorithm):
    """Hamerly bounds + cluster-radius candidate balls."""

    name = "sphere"

    def __init__(self) -> None:
        super().__init__()
        self._ub: np.ndarray | None = None
        self._lb: np.ndarray | None = None
        self._radii: np.ndarray | None = None

    def _setup(self) -> None:
        self.counters.record_footprint(2 * len(self.X) + self.k)

    def _assign(self, iteration: int) -> None:
        if iteration == 0:
            dists = self._full_scan_assign()
            idx = np.arange(len(self.X))
            self._ub = dists[idx, self._labels].copy()
            masked = dists.copy()
            masked[idx, self._labels] = np.inf
            self._lb = masked.min(axis=1) if self.k > 1 else np.full(len(self.X), np.inf)
            self._radii = np.zeros(self.k)
            np.maximum.at(self._radii, self._labels, self._ub)
            self.counters.add_bound_updates(2 * len(self.X) + self.k)
            return

        cc, s = centroid_separations(self._centroids, self.counters)
        counters = self.counters
        thresholds = np.maximum(self._lb, s[self._labels])
        counters.add_bound_accesses(2 * len(self.X))
        for i in np.flatnonzero(self._ub > thresholds):
            i = int(i)
            a = int(self._labels[i])
            da = self._point_centroid_distance(i, a)
            self._ub[i] = da
            counters.add_bound_updates(1)
            if da <= thresholds[i]:
                continue
            # Radius-ball candidate set (Pami20 argument).
            counters.add_bound_accesses(self.k)
            in_ball = 0.5 * cc[a] <= self._radii[a]
            cand = np.flatnonzero(in_ball)
            dists = self._point_distances(i, cand)
            pos, d1, d2 = two_smallest(dists)
            # Out-of-ball centroids are at least cc[a, j] - da away.
            if in_ball.all():
                lb_out = np.inf
            else:
                lb_out = float((cc[a, ~in_ball] - da).min())
            self._labels[i] = int(cand[pos])
            self._ub[i] = d1
            self._lb[i] = min(d2, lb_out)
            counters.add_bound_updates(2)
        # Exact radii from the refreshed upper bounds.
        new_radii = np.zeros(self.k)
        np.maximum.at(new_radii, self._labels, self._ub)
        self._radii = new_radii
        self.counters.add_bound_updates(self.k)

    def _update_bounds(self, drifts: np.ndarray) -> None:
        top_j, top, second = second_max(drifts)
        self._ub += drifts[self._labels]
        self._lb -= np.where(self._labels == top_j, second, top)
        self._radii += drifts
        self.counters.add_bound_updates(2 * len(self.X) + self.k)
