"""Shared pruning primitives used by the sequential algorithms.

Everything in Section 4 builds from a few ingredients: the half inter-
centroid separation ``s(j)`` (Elkan's inter-bound), per-cluster centroid
drifts, and — for the Yinyang family — a grouping of the ``k`` centroids.
They are factored out here so every algorithm computes them identically and
charges the same counters.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.common.distance import centroid_pairwise_distances, chunked_sq_distances
from repro.common.rng import SeedLike, ensure_rng
from repro.instrumentation.counters import OpCounters


def half_min_separation(
    cc: np.ndarray, *, work: Optional[np.ndarray] = None
) -> np.ndarray:
    """``s(j) = 0.5 * min_{j' != j} d(c_j, c_j')`` from a distance matrix.

    ``work`` optionally supplies a reusable ``(k, k)`` buffer for the
    diagonal-masked copy (the vectorized backend preallocates it once per
    fit instead of copying ``cc`` every iteration); values are identical
    either way.
    """
    if cc.shape[0] == 1:
        return np.full(1, np.inf)
    if work is None:
        masked = cc.copy()
    else:
        masked = work
        np.copyto(masked, cc)
    np.fill_diagonal(masked, np.inf)
    return 0.5 * masked.min(axis=1)


def two_smallest(values: np.ndarray) -> Tuple[int, float, float]:
    """Index of the minimum plus the two smallest values of ``values``.

    Ties break toward the lower index, matching ``np.argmin``.
    """
    best = int(np.argmin(values))
    best_val = float(values[best])
    if len(values) == 1:
        return best, best_val, np.inf
    rest = np.delete(values, best)
    return best, best_val, float(rest.min())


def second_max(values: np.ndarray) -> Tuple[int, float, float]:
    """Argmax, max and second-max of ``values`` (for Hamerly's lb update)."""
    top = int(np.argmax(values))
    top_val = float(values[top])
    if len(values) == 1:
        return top, top_val, 0.0
    rest = np.delete(values, top)
    return top, top_val, float(rest.max())


def default_group_count(k: int) -> int:
    """Yinyang's default number of groups, ``t = ceil(k / 10)``."""
    return max(1, -(-k // 10))


def group_centroids_kmeans(
    centroids: np.ndarray,
    t: int,
    seed: SeedLike = 0,
    iterations: int = 5,
) -> np.ndarray:
    """Group ``k`` centroids into ``t`` groups with a small k-means run.

    This is Yinyang's first-iteration grouping (Section 4.2.3).  The run is
    uncounted: the paper treats grouping as setup overhead measured by
    wall-clock, not as part of the pruning-power accounting.
    """
    k = len(centroids)
    t = min(t, k)
    if t <= 1:
        return np.zeros(k, dtype=np.intp)
    rng = ensure_rng(seed)
    seeds = rng.choice(k, size=t, replace=False)
    means = centroids[seeds].copy()
    labels = np.zeros(k, dtype=np.intp)
    for _ in range(iterations):
        # Uncounted by design (see docstring): kernel invoked without counters.
        sq = chunked_sq_distances(centroids, means)
        labels = np.argmin(sq, axis=1).astype(np.intp)
        for g in range(t):
            members = centroids[labels == g]
            if len(members):
                means[g] = members.mean(axis=0)
    return _compact_groups(labels, t)


def group_centroids_by_drift(drifts: np.ndarray, t: int) -> np.ndarray:
    """Regroup centroids by drift magnitude (Kwedlo's modification).

    Sorting by drift and chunking keeps each group's maximum drift close to
    its members' drifts, so the per-group bound decays slowly for stable
    groups — the tightening Regroup gets over Yinyang.
    """
    k = len(drifts)
    t = min(max(1, t), k)
    order = np.argsort(drifts, kind="stable")
    labels = np.empty(k, dtype=np.intp)
    for g, chunk in enumerate(np.array_split(order, t)):
        labels[chunk] = g
    return labels


def _compact_groups(labels: np.ndarray, t: int) -> np.ndarray:
    """Renumber group labels so they are consecutive starting at zero."""
    used = np.unique(labels)
    mapping = {int(old): new for new, old in enumerate(used)}
    return np.asarray([mapping[int(g)] for g in labels], dtype=np.intp)


class GroupView:
    """Precomputed membership lists for a centroid grouping."""

    def __init__(self, group_of: np.ndarray) -> None:
        self.group_of = np.asarray(group_of, dtype=np.intp)
        self.t = int(self.group_of.max()) + 1 if len(self.group_of) else 0
        self.members: List[np.ndarray] = [
            np.flatnonzero(self.group_of == g) for g in range(self.t)
        ]

    def max_drift_per_group(self, drifts: np.ndarray) -> np.ndarray:
        """Per-group maximum centroid drift (the group bound decay)."""
        out = np.zeros(self.t)
        for g, idx in enumerate(self.members):
            if len(idx):
                out[g] = float(drifts[idx].max())
        return out


def centroid_separations(
    centroids: np.ndarray,
    counters: Optional[OpCounters] = None,
    *,
    scratch: Optional[np.ndarray] = None,
    work: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Centroid distance matrix and the derived ``s(j)`` vector.

    ``scratch`` (a ``(2, k, k)`` buffer) and ``work`` (a ``(k, k)`` buffer)
    let per-iteration callers reuse allocations; results are bitwise
    independent of whether buffers are supplied.  When ``scratch`` is given
    the returned ``cc`` aliases ``scratch[1]`` and is only valid until the
    next call with the same buffer.
    """
    cc = centroid_pairwise_distances(centroids, counters, scratch=scratch)
    return cc, half_min_separation(cc, work=work)
