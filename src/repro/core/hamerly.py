"""Hamerly's algorithm (Hamerly 2010) — one global lower bound (Section 4.2.1).

Instead of Elkan's ``n * k`` bounds, each point stores only ``ub(i)`` and a
single ``lb(i)``: a lower bound on the distance to the *second-closest*
centroid.  The global test ``max(lb(i), s(a)) >= ub(i)`` keeps the point in
place; on failure the upper bound is tightened and re-tested; only then does
a full scan over all ``k`` centroids happen, refreshing both bounds exactly.

Space drops from O(nk) to O(n) and so does the bound-update cost — the
trade-off that puts Hame on the paper's leaderboard (Figure 12).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import KMeansAlgorithm
from repro.core.pruning import centroid_separations, second_max, two_smallest


class HamerlyKMeans(KMeansAlgorithm):
    """Hamerly's k-means with global upper/lower bounds."""

    name = "hamerly"

    def __init__(self) -> None:
        super().__init__()
        self._ub: np.ndarray | None = None
        self._lb: np.ndarray | None = None

    def _setup(self) -> None:
        self.counters.record_footprint(2 * len(self.X))

    def _initial_scan(self) -> None:
        """First-iteration full scan seeding ``ub`` and ``lb``.

        Shared with the vectorized backend (both backends take this exact
        path, so iteration 0 is trivially identical between them).
        """
        dists = self._full_scan_assign()
        n = len(self.X)
        idx = np.arange(n)
        self._ub = dists[idx, self._labels].copy()
        masked = dists.copy()
        masked[idx, self._labels] = np.inf
        self._lb = masked.min(axis=1) if self.k > 1 else np.full(n, np.inf)
        self.counters.add_bound_updates(2 * n)

    def _assign(self, iteration: int) -> None:
        if iteration == 0:
            self._initial_scan()
            return
        _, s = centroid_separations(self._centroids, self.counters)
        labels = self._labels
        ub = self._ub
        lb = self._lb
        counters = self.counters
        # Global test, vectorized over all points (2n bound reads either way);
        # only survivors enter the pointwise tighten-and-rescan loop.
        thresholds = np.maximum(lb, s[labels])
        counters.add_bound_accesses(2 * len(self.X))
        for i in np.flatnonzero(ub > thresholds):
            i = int(i)
            a = int(labels[i])
            threshold = float(thresholds[i])
            # Tighten the upper bound with one exact distance, re-test.
            da = self._point_centroid_distance(i, a)
            ub[i] = da
            counters.add_bound_updates(1)
            if da <= threshold:
                continue
            self._rescan_point(i)

    def _rescan_point(self, i: int) -> None:
        """Full scan of all centroids; refresh labels and both bounds."""
        dists = self._point_distances(i, np.arange(self.k))
        best, d1, d2 = two_smallest(dists)
        self._labels[i] = best
        self._ub[i] = d1
        self._lb[i] = d2
        self.counters.add_bound_updates(2)

    def _update_bounds(self, drifts: np.ndarray) -> None:
        top_j, top, second = second_max(drifts)
        self._ub += drifts[self._labels]
        decay = np.where(self._labels == top_j, second, top)
        self._lb -= decay
        self.counters.add_bound_updates(2 * len(self.X))
