"""Result types shared by every k-means algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.instrumentation.counters import CounterSnapshot


@dataclass(frozen=True)
class IterationStats:
    """Per-iteration breakdown backing Figures 11/13 and Tables 3/8/9."""

    iteration: int
    assignment_time: float
    refinement_time: float
    distance_computations: int
    point_accesses: int
    node_accesses: int
    bound_accesses: int
    bound_updates: int
    changed: int
    #: per-iteration SSE, filled only when fit(record_sse=True)
    sse: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "iteration": self.iteration,
            "assignment_time": self.assignment_time,
            "refinement_time": self.refinement_time,
            "distance_computations": self.distance_computations,
            "point_accesses": self.point_accesses,
            "node_accesses": self.node_accesses,
            "bound_accesses": self.bound_accesses,
            "bound_updates": self.bound_updates,
            "changed": self.changed,
            "sse": self.sse,
        }


@dataclass
class KMeansResult:
    """Outcome of one clustering run with the full metric breakdown.

    ``labels`` and ``centroids`` are the clustering itself; everything else
    is the instrumentation the paper's evaluation framework reports: phase
    times, per-iteration stats, operation counters, and the memory footprint
    of the method's auxiliary structures.
    """

    algorithm: str
    n: int
    d: int
    k: int
    labels: np.ndarray
    centroids: np.ndarray
    n_iter: int
    converged: bool
    sse: float
    counters: CounterSnapshot
    footprint_floats: int
    assignment_time: float
    refinement_time: float
    setup_time: float
    init_time: float
    iteration_stats: List[IterationStats] = field(default_factory=list)
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        """Clustering time: assignment + refinement (paper's main metric).

        Index construction (``setup_time``) and centroid initialization
        (``init_time``) are reported separately, matching Table 2 and
        Figure 7 which single out construction cost.
        """
        return self.assignment_time + self.refinement_time

    @property
    def pruning_ratio(self) -> float:
        """Fraction of Lloyd's assignment distances avoided (pruning power).

        Lloyd computes ``n * k`` distances per iteration; the ratio compares
        the method's *total* distance computations over the same number of
        iterations.  Methods whose bound upkeep costs extra distances (e.g.
        Elkan's inter-centroid matrix) can in principle go negative; the
        value is clamped at 0 like the paper's percentage columns.
        """
        baseline = self.n * self.k * max(self.n_iter, 1)
        if baseline == 0:
            return 0.0
        ratio = 1.0 - self.counters.distance_computations / baseline
        return max(0.0, ratio)

    @property
    def modeled_cost(self) -> float:
        """Hardware/language-independent cost model (in float-op units).

        Wall-clock in pure Python over-penalizes pointwise loops relative
        to the paper's Java, so cross-method comparisons also use this
        model: a d-dimensional distance costs ``d`` units, bound reads and
        writes cost 1, a node poll costs 4 (metadata reads), and each point
        access costs 1 on top of its distance arithmetic.
        """
        return (
            self.counters.distance_computations * self.d
            + self.counters.bound_accesses
            + self.counters.bound_updates
            + self.counters.node_accesses * 4
            + self.counters.point_accesses
        )

    def summary(self) -> Dict[str, Any]:
        """Flat record suitable for evaluation logs (JSON-serializable)."""
        record: Dict[str, Any] = {
            "algorithm": self.algorithm,
            "n": self.n,
            "d": self.d,
            "k": self.k,
            "n_iter": self.n_iter,
            "converged": self.converged,
            "sse": self.sse,
            "total_time": self.total_time,
            "assignment_time": self.assignment_time,
            "refinement_time": self.refinement_time,
            "setup_time": self.setup_time,
            "init_time": self.init_time,
            "pruning_ratio": self.pruning_ratio,
            "modeled_cost": self.modeled_cost,
            "footprint_floats": self.footprint_floats,
        }
        record.update(self.counters.as_dict())
        return record
