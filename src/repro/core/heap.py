"""Heap k-means (Hamerly & Drake 2015) — bound gaps in per-cluster heaps
(Section 4.2.4).

Instead of arrays of bounds, each cluster keeps a min-heap keyed by the gap
``lu(i) = lb(i) - ub(i)``.  A point whose gap is still non-negative cannot
change cluster and is *never even visited* — the heap top bounds the whole
remainder — which gives Heap the smallest bound-access count of all methods
(paper Figure 11) at the cost of a full k-centroid rescan for every popped
point.

Lazy decay trick: rather than rewriting every key each iteration, each
cluster accumulates ``decay(j) += drift(j) + max_other_drift`` — the largest
possible per-iteration shrink of any member's gap — and a key is effectively
``key_at_insert - decay_since_insert``.  Keys are stored shifted by the
decay at insert time so a single subtraction recovers the effective gap.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np

from repro.core.base import KMeansAlgorithm
from repro.core.pruning import second_max, two_smallest


class HeapKMeans(KMeansAlgorithm):
    """Heap-based k-means with lazily decayed bound gaps."""

    name = "heap"

    def __init__(self) -> None:
        super().__init__()
        self._heaps: List[List[Tuple[float, int]]] = []
        self._decay: np.ndarray | None = None

    def _setup(self) -> None:
        # One (key, point) pair per point plus k decay accumulators.
        self.counters.record_footprint(2 * len(self.X) + self.k)

    def _assign(self, iteration: int) -> None:
        if iteration == 0:
            dists = self._full_scan_assign()
            n = len(self.X)
            idx = np.arange(n)
            ub = dists[idx, self._labels]
            masked = dists.copy()
            masked[idx, self._labels] = np.inf
            lb = masked.min(axis=1) if self.k > 1 else np.full(n, np.inf)
            self._decay = np.zeros(self.k)
            self._heaps = [[] for _ in range(self.k)]
            for i in range(n):
                self._heaps[self._labels[i]].append((float(lb[i] - ub[i]), i))
            for heap in self._heaps:
                heapq.heapify(heap)
            self.counters.add_bound_updates(n)
            return

        counters = self.counters
        # Pop every point whose effective gap may have gone negative; the
        # rest of each heap is pruned without being visited at all.
        reinserts: List[Tuple[int, float, int]] = []  # (cluster, key, point)
        for j in range(self.k):
            heap = self._heaps[j]
            decay = float(self._decay[j])
            while heap:
                counters.bound_accesses += 1
                key, i = heap[0]
                if key - decay >= 0.0:
                    break
                heapq.heappop(heap)
                dists = self._point_distances(i, np.arange(self.k))
                best, d1, d2 = two_smallest(dists)
                self._labels[i] = best
                reinserts.append((best, (d2 - d1) + float(self._decay[best]), i))
        for cluster, key, i in reinserts:
            heapq.heappush(self._heaps[cluster], (key, i))
            counters.add_bound_updates(1)

    def _update_bounds(self, drifts: np.ndarray) -> None:
        top_j, top, second = second_max(drifts)
        others = np.where(np.arange(self.k) == top_j, second, top)
        self._decay += drifts + others
        self.counters.add_bound_updates(self.k)
