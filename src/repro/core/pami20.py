"""Pami20 (Xia et al. 2020) — centroid distances only, no per-point bounds
(Section 4.2.5).

The only state is one radius per cluster: ``ra(j)`` upper-bounds the
distance from ``c_j`` to its farthest member.  A centroid ``j'`` is a
candidate for the points of cluster ``j`` only when

    d(c_j, c_j') / 2  <=  ra(j)                                     (Eq. 4)

because otherwise every member (within ``ra`` of ``c_j``) is provably closer
to ``c_j``.  Each point then scans just its cluster's candidate set.

Radii are collected exactly during assignment (each point's distance to its
new centroid is computed there) and inflated by the centroid drift before
reuse, which keeps them sound across refinements.  Space cost: ``k`` floats
— the "laptop-friendly" footprint the paper's Table 4 credits Pami20 with.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.common.distance import chunked_sq_distances
from repro.core.base import KMeansAlgorithm
from repro.core.pruning import centroid_separations


class Pami20KMeans(KMeansAlgorithm):
    """Xia et al.'s bound-free adaptive k-means."""

    name = "pami20"

    def __init__(self) -> None:
        super().__init__()
        self._radii: np.ndarray | None = None

    def _setup(self) -> None:
        self.counters.record_footprint(self.k)

    def _assign(self, iteration: int) -> None:
        if iteration == 0:
            dists = self._full_scan_assign()
            n = len(self.X)
            own = dists[np.arange(n), self._labels]
            self._radii = np.zeros(self.k)
            np.maximum.at(self._radii, self._labels, own)
            self.counters.add_bound_updates(self.k)
            return

        cc, _ = centroid_separations(self._centroids, self.counters)
        counters = self.counters
        # Candidate sets per cluster (Eq. 4), one bound test per pair.
        candidates: List[np.ndarray] = []
        for j in range(self.k):
            counters.bound_accesses += self.k
            candidates.append(np.flatnonzero(0.5 * cc[j] <= self._radii[j]))
        new_radii = np.zeros(self.k)
        labels = self._labels
        # All points of a cluster share one candidate set, so the whole
        # cluster is assigned with a single vectorized distance block —
        # the batch structure Xia et al.'s method is built around.
        previous = labels.copy()
        for a in range(self.k):
            members = np.flatnonzero(previous == a)
            if len(members) == 0:
                continue
            cand = candidates[a]
            counters.add_point_accesses(len(members) * len(cand))
            dists = np.sqrt(
                chunked_sq_distances(self.X[members], self._centroids[cand], counters)
            )
            positions = np.argmin(dists, axis=1)
            winners = cand[positions]
            labels[members] = winners
            best_d = dists[np.arange(len(members)), positions]
            np.maximum.at(new_radii, winners, best_d)
        self._radii = new_radii
        self.counters.add_bound_updates(self.k)

    def _update_bounds(self, drifts: np.ndarray) -> None:
        # Members were within ra of the pre-refinement centroid, hence within
        # ra + drift of the new one.
        self._radii += drifts
        self.counters.add_bound_updates(self.k)
