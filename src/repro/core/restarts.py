"""Multi-restart driver: run any algorithm from several initializations and
keep the lowest-SSE solution.

Lloyd's algorithm only finds a local optimum; the standard practice (and
what downstream users expect from a k-means library) is ``n_init``
restarts.  The driver composes with every registered algorithm, aggregates
instrumentation across restarts, and reports per-restart SSEs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.common.exceptions import ConfigurationError
from repro.common.rng import SeedLike, ensure_rng
from repro.core import make_algorithm
from repro.core.base import DEFAULT_MAX_ITER
from repro.core.result import KMeansResult
from repro.instrumentation.counters import OpCounters


@dataclass
class RestartReport:
    """Best result plus the per-restart history."""

    best: KMeansResult
    best_restart: int
    sse_history: List[float] = field(default_factory=list)
    total_counters: OpCounters = field(default_factory=OpCounters)

    @property
    def n_restarts(self) -> int:
        return len(self.sse_history)


def fit_with_restarts(
    X: np.ndarray,
    k: int,
    *,
    algorithm: str = "unik",
    n_init: int = 5,
    init: str = "k-means++",
    max_iter: int = DEFAULT_MAX_ITER,
    tol: float = 0.0,
    seed: SeedLike = None,
    **algorithm_kwargs,
) -> RestartReport:
    """Cluster with ``n_init`` restarts; return the lowest-SSE solution.

    Restarts draw independent initialization seeds from ``seed``'s stream,
    so a fixed ``seed`` makes the whole ensemble reproducible.
    """
    if n_init < 1:
        raise ConfigurationError(f"n_init must be >= 1, got {n_init}")
    rng = ensure_rng(seed)
    best: Optional[KMeansResult] = None
    best_restart = -1
    history: List[float] = []
    totals = OpCounters()
    for restart in range(n_init):
        runner = make_algorithm(algorithm, **algorithm_kwargs)
        result = runner.fit(
            X, k, init=init, max_iter=max_iter, tol=tol,
            seed=int(rng.integers(0, 2**63 - 1)),
        )
        history.append(result.sse)
        totals.merge(runner.counters)
        if best is None or result.sse < best.sse:
            best = result
            best_restart = restart
    assert best is not None
    return RestartReport(
        best=best,
        best_restart=best_restart,
        sse_history=history,
        total_counters=totals,
    )
