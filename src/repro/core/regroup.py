"""Regroup (Kwedlo 2017) — Yinyang with per-iteration regrouping
(Section 4.2.3).

Where Yinyang fixes the centroid groups in the first iteration, Regroup
reforms them every iteration using a cheap drift-based grouping: centroids
are sorted by drift magnitude and chunked, so each group's maximum drift —
the amount every group bound must decay by — stays close to its members'
actual drifts.  Stable centroids no longer pay for one fast-moving
group-mate, which keeps the group bounds tight as iterations proceed.

Regrouping invalidates the stored per-group bounds; they are remapped
soundly: the bound of a new group is the minimum over the (drift-corrected)
bounds of every old group that contributes a member.  Because membership
changes, the per-centroid local filter inside a group scan is disabled (its
reconstruction needs a stable group history), matching the simpler inner
loop Kwedlo describes.
"""

from __future__ import annotations

import numpy as np

from repro.core.pruning import GroupView, group_centroids_by_drift
from repro.core.yinyang import YinyangKMeans


class RegroupKMeans(YinyangKMeans):
    """Yinyang variant that regroups centroids by drift every iteration."""

    name = "regroup"

    def _scan_groups(self, i: int, da: float) -> None:
        """Group scan without the per-centroid local filter (see module doc).

        Bounds are assembled per group after the scan (see the same-named
        method in :class:`YinyangKMeans` for why).
        """
        counters = self.counters
        old_a = int(self._labels[i])
        best = old_a
        best_d = da
        scanned: list[int] = []
        computed: list[tuple[int, float]] = []
        for g, members in enumerate(self.groups.members):
            counters.bound_accesses += 1
            if self._glb[i, g] >= best_d:
                continue
            scanned.append(g)
            others = members[members != old_a]
            if len(others) == 0:
                continue
            dists = self._point_distances(i, others)
            for pos, j in enumerate(others):
                dij = float(dists[pos])
                computed.append((int(j), dij))
                if dij < best_d:
                    best_d = dij
                    best = int(j)
        group_min: dict[int, float] = {}
        for j, dij in computed:
            if j == best:
                continue
            g = int(self.groups.group_of[j])
            group_min[g] = min(group_min.get(g, np.inf), dij)
        for g in scanned:
            value = group_min.get(g, np.inf)
            if np.isfinite(value):
                self._glb[i, g] = value
                counters.add_bound_updates(1)
        if best != old_a:
            self._labels[i] = best
            self._ub[i] = best_d
            counters.add_bound_updates(1)
            g_old = int(self.groups.group_of[old_a])
            self._glb[i, g_old] = min(self._glb[i, g_old], da)
            counters.add_bound_updates(1)

    def _update_bounds(self, drifts: np.ndarray) -> None:
        super()._update_bounds(drifts)
        # Re-form groups by drift magnitude and remap the stored bounds:
        # new bound = min over contributing old groups' bounds.
        new_groups = GroupView(group_centroids_by_drift(drifts, self._t))
        old_group_of = self.groups.group_of
        remapped = np.empty((len(self.X), new_groups.t))
        for g_new, members in enumerate(new_groups.members):
            sources = np.unique(old_group_of[members])
            # repro: ignore[R003] — drift bookkeeping (base.py's drift convention), charged as bound_updates
            remapped[:, g_new] = self._glb[:, sources].min(axis=1)
        self._glb = remapped
        self.groups = new_groups
        self.counters.add_bound_updates(remapped.size)
