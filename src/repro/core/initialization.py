"""Centroid initialization: random and k-means++ (Arthur & Vassilvitskii).

The paper uses k-means++ by default and shows in its appendix (Figure 16)
that the *relative* speedups of the accelerated methods are insensitive to
the initialization choice; both options are provided so that experiment can
be reproduced.

Backends and seeding parity
---------------------------
Like the clustering algorithms, k-means++ exists in both execution
backends (``docs/backends.md``):

``reference``
    The pointwise scalar loop — one :func:`~repro.common.distance.sq_euclidean`
    call per point per D² update, the ground truth for counter semantics.
``vectorized``
    One :func:`~repro.common.distance.paired_sq_distances` call per D²
    update.  That kernel is bit-identical per row to ``sq_euclidean``, so
    the ``closest_sq`` array — and therefore the sampling probability
    vector handed to the RNG — carries the exact same 64-bit floats as the
    scalar path.  Both backends make the *same RNG calls in the same
    order* (one ``integers`` for the first pick, one ``choice``/``integers``
    per subsequent pick), so under the same seed they select identical
    centroid rows: the seeding-parity contract enforced by
    ``tests/test_backend_conformance.py``.

Counter totals are backend-independent (``n`` distances + ``n`` point
accesses per D² update), per the backend doctrine that counters measure the
paper's cost model, never BLAS calls.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.distance import paired_sq_distances, sq_euclidean
from repro.common.exceptions import ConfigurationError
from repro.common.rng import SeedLike, ensure_rng
from repro.common.validation import check_data_matrix, check_k
from repro.instrumentation.counters import OpCounters


def init_random(
    X: np.ndarray,
    k: int,
    seed: SeedLike = None,
    counters: Optional[OpCounters] = None,
    backend: str = "reference",
) -> np.ndarray:
    """Choose ``k`` distinct data points uniformly at random as centroids.

    ``backend`` is accepted for dispatch uniformity; random seeding has no
    distance computations to vectorize, so both backends share this code.
    """
    _check_backend(backend)
    X = check_data_matrix(X)
    k = check_k(k, len(X))
    rng = ensure_rng(seed)
    chosen = rng.choice(len(X), size=k, replace=False)
    if counters is not None:
        counters.add_point_accesses(k)
    return X[chosen].copy()


def init_kmeans_plus_plus(
    X: np.ndarray,
    k: int,
    seed: SeedLike = None,
    counters: Optional[OpCounters] = None,
    backend: str = "reference",
) -> np.ndarray:
    """k-means++ seeding: each next centroid sampled ∝ squared distance.

    This is the exact (non-greedy) k-means++ of Arthur & Vassilvitskii.
    ``backend="vectorized"`` batches each D² update into one row-paired
    kernel call; picks, centroids and counter totals are identical to the
    reference under the same seed (see module docstring).
    """
    _check_backend(backend)
    X = check_data_matrix(X)
    k = check_k(k, len(X))
    rng = ensure_rng(seed)
    n = len(X)
    centroids = np.empty((k, X.shape[1]))
    first = int(rng.integers(0, n))
    centroids[0] = X[first]
    update = (
        _update_closest_sq_vectorized
        if backend == "vectorized"
        else _update_closest_sq_reference
    )
    closest_sq = np.full(n, np.inf)
    update(X, centroids[0], closest_sq, counters)
    for j in range(1, k):
        total = float(closest_sq.sum())
        if total <= 0.0:
            # All remaining points coincide with chosen centroids; fall back
            # to uniform choice among the rest.
            pick = int(rng.integers(0, n))
        else:
            pick = int(rng.choice(n, p=closest_sq / total))
        centroids[j] = X[pick]
        update(X, centroids[j], closest_sq, counters)
    return centroids


def _update_closest_sq_reference(
    X: np.ndarray,
    centroid: np.ndarray,
    closest_sq: np.ndarray,
    counters: Optional[OpCounters],
) -> None:
    """Pointwise D² update: one scalar distance per point (``n`` charged)."""
    if counters is not None:
        counters.add_point_accesses(len(X))
    for i in range(len(X)):
        new_sq = sq_euclidean(X[i], centroid, counters)
        if new_sq < closest_sq[i]:
            closest_sq[i] = new_sq


def _update_closest_sq_vectorized(
    X: np.ndarray,
    centroid: np.ndarray,
    closest_sq: np.ndarray,
    counters: Optional[OpCounters],
) -> None:
    """Batched D² update, bit-identical per row to the reference loop.

    ``paired_sq_distances`` reduces each row with the same dot kernel as
    ``sq_euclidean``, and ``np.minimum`` applies the same strict-< keep
    rule, so ``closest_sq`` stays bitwise equal to the scalar path's —
    which is what makes the subsequent RNG draw pick the same index.
    """
    if counters is not None:
        counters.add_point_accesses(len(X))
    new_sq = paired_sq_distances(X, centroid, counters)
    np.minimum(closest_sq, new_sq, out=closest_sq)


_INIT_METHODS = {
    "random": init_random,
    "k-means++": init_kmeans_plus_plus,
    "kmeans++": init_kmeans_plus_plus,
}


def _check_backend(backend: str) -> None:
    if backend not in ("reference", "vectorized"):
        raise ConfigurationError(
            f"unknown backend {backend!r}; known backends: reference, vectorized"
        )


def initialize_centroids(
    X: np.ndarray,
    k: int,
    method: str = "k-means++",
    seed: SeedLike = None,
    counters: Optional[OpCounters] = None,
    backend: str = "reference",
) -> np.ndarray:
    """Dispatch to an initialization method by name."""
    try:
        func = _INIT_METHODS[method.lower()]
    except KeyError:
        known = ", ".join(sorted(set(_INIT_METHODS)))
        raise ConfigurationError(
            f"unknown initialization {method!r}; known methods: {known}"
        ) from None
    return func(X, k, seed=seed, counters=counters, backend=backend)
