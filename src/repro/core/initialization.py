"""Centroid initialization: random and k-means++ (Arthur & Vassilvitskii).

The paper uses k-means++ by default and shows in its appendix (Figure 16)
that the *relative* speedups of the accelerated methods are insensitive to
the initialization choice; both options are provided so that experiment can
be reproduced.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.distance import pairwise_sq_distances
from repro.common.exceptions import ConfigurationError
from repro.common.rng import SeedLike, ensure_rng
from repro.common.validation import check_data_matrix, check_k
from repro.instrumentation.counters import OpCounters


def init_random(
    X: np.ndarray,
    k: int,
    seed: SeedLike = None,
    counters: Optional[OpCounters] = None,
) -> np.ndarray:
    """Choose ``k`` distinct data points uniformly at random as centroids."""
    X = check_data_matrix(X)
    k = check_k(k, len(X))
    rng = ensure_rng(seed)
    chosen = rng.choice(len(X), size=k, replace=False)
    if counters is not None:
        counters.add_point_accesses(k)
    return X[chosen].copy()


def init_kmeans_plus_plus(
    X: np.ndarray,
    k: int,
    seed: SeedLike = None,
    counters: Optional[OpCounters] = None,
) -> np.ndarray:
    """k-means++ seeding: each next centroid sampled ∝ squared distance.

    This is the exact (non-greedy) k-means++ of Arthur & Vassilvitskii.
    """
    X = check_data_matrix(X)
    k = check_k(k, len(X))
    rng = ensure_rng(seed)
    n = len(X)
    centroids = np.empty((k, X.shape[1]))
    first = int(rng.integers(0, n))
    centroids[0] = X[first]
    closest_sq = pairwise_sq_distances(X, centroids[0:1], counters).ravel()
    if counters is not None:
        counters.add_point_accesses(n)
    for j in range(1, k):
        total = float(closest_sq.sum())
        if total <= 0.0:
            # All remaining points coincide with chosen centroids; fall back
            # to uniform choice among the rest.
            pick = int(rng.integers(0, n))
        else:
            pick = int(rng.choice(n, p=closest_sq / total))
        centroids[j] = X[pick]
        new_sq = pairwise_sq_distances(X, centroids[j : j + 1], counters).ravel()
        if counters is not None:
            counters.add_point_accesses(n)
        np.minimum(closest_sq, new_sq, out=closest_sq)
    return centroids


_INIT_METHODS = {
    "random": init_random,
    "k-means++": init_kmeans_plus_plus,
    "kmeans++": init_kmeans_plus_plus,
}


def initialize_centroids(
    X: np.ndarray,
    k: int,
    method: str = "k-means++",
    seed: SeedLike = None,
    counters: Optional[OpCounters] = None,
) -> np.ndarray:
    """Dispatch to an initialization method by name."""
    try:
        func = _INIT_METHODS[method.lower()]
    except KeyError:
        known = ", ".join(sorted(set(_INIT_METHODS)))
        raise ConfigurationError(
            f"unknown initialization {method!r}; known methods: {known}"
        ) from None
    return func(X, k, seed=seed, counters=counters)
