"""Core clustering algorithms: Lloyd, all accelerated variants, and UniK.

The :data:`ALGORITHMS` registry maps names to classes; :func:`make_algorithm`
builds instances by name, and :class:`KMeans` is the user-facing facade.

Two execution backends exist (see ``docs/backends.md``): ``"reference"``
(the pointwise scalar implementations, ground truth for counter semantics)
and ``"vectorized"`` (NumPy-batched replacements — the sequential
bound-based trio, Lloyd, index-based k-means, and k-means++ seeding — that
reproduce the reference labels, centroids, iteration counts and counter
totals exactly — enforced by ``tests/test_backend_conformance.py``).
Select with ``make_algorithm(name, backend="vectorized")`` or
``KMeans(..., backend="vectorized")``.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

import numpy as np

from repro.common.distance import chunked_sq_distances
from repro.common.exceptions import ConfigurationError
from repro.core.annular import AnnularKMeans
from repro.core.base import DEFAULT_MAX_ITER, KMeansAlgorithm, compute_sse
from repro.core.drake import DrakeKMeans
from repro.core.drift import DriftKMeans
from repro.core.elkan import ElkanKMeans
from repro.core.exponion import ExponionKMeans
from repro.core.full import FullKMeans
from repro.core.hamerly import HamerlyKMeans
from repro.core.heap import HeapKMeans
from repro.core.index_kmeans import IndexKMeans
from repro.core.initialization import (
    init_kmeans_plus_plus,
    init_random,
    initialize_centroids,
)
from repro.core.knobs import (
    BOUND_KNOBS,
    INDEX_KNOBS,
    SELECTION_POOL,
    KnobConfig,
    build_algorithm,
    configuration_pool,
)
from repro.core.lloyd import LloydKMeans
from repro.core.minibatch import MiniBatchKMeans, SampledKMeans
from repro.core.pami20 import Pami20KMeans
from repro.core.regroup import RegroupKMeans
from repro.core.result import IterationStats, KMeansResult
from repro.core.search import SearchKMeans
from repro.core.sphere import SphereKMeans
from repro.core.unik import UniKKMeans
from repro.core.vector import VectorKMeans
from repro.core.vectorized import (
    VECTORIZED_ALGORITHMS,
    VectorizedElkanKMeans,
    VectorizedHamerlyKMeans,
    VectorizedIndexKMeans,
    VectorizedLloydKMeans,
    VectorizedYinyangKMeans,
)
from repro.core.yinyang import YinyangKMeans

ALGORITHMS: Dict[str, Type[KMeansAlgorithm]] = {
    "lloyd": LloydKMeans,
    "elkan": ElkanKMeans,
    "hamerly": HamerlyKMeans,
    "drake": DrakeKMeans,
    "yinyang": YinyangKMeans,
    "regroup": RegroupKMeans,
    "heap": HeapKMeans,
    "annular": AnnularKMeans,
    "exponion": ExponionKMeans,
    "drift": DriftKMeans,
    "vector": VectorKMeans,
    "pami20": Pami20KMeans,
    "search": SearchKMeans,
    "index": IndexKMeans,
    "unik": UniKKMeans,
    "full": FullKMeans,
    # Discovered hybrid configuration (Section A.5); exact.
    "sphere": SphereKMeans,
    # Approximate accelerations (Section 2.2 taxonomy) — not exact Lloyd.
    "minibatch": MiniBatchKMeans,
    "sampled": SampledKMeans,
}

#: algorithms guaranteed to reproduce Lloyd's trajectory exactly
EXACT_ALGORITHMS = tuple(
    name for name in ALGORITHMS if name not in ("minibatch", "sampled")
)

#: the selectable execution backends
BACKENDS = ("reference", "vectorized")

#: algorithms whose vectorized implementations support accelerator array
#: backends (torch / torch-cuda / cupy); the index traversal's replay
#: bookkeeping is host-bound and stays numpy-only for now
ACCELERATED_ALGORITHMS = ("lloyd", "elkan", "hamerly", "yinyang")


def _check_array_backend(
    array_backend: str, name: str, backend: str, shards: int, shard_policy
) -> None:
    """Validate the array-backend knob at construction time.

    Unknown names and unavailable optional backends raise immediately
    (classified ``ConfigurationError`` / ``BackendUnavailableError``), so
    a fit never discovers mid-iteration that its backend cannot run.
    """
    from repro.backend import backend_manager

    backend_manager.get(array_backend)
    if array_backend == "numpy":
        return
    if int(shards) > 1 or shard_policy is not None:
        raise ConfigurationError(
            "sharded execution requires array_backend='numpy': shard workers "
            "are separate processes whose merge contract is the numpy "
            f"backend's bit-identity (got array_backend={array_backend!r})"
        )
    if backend != "vectorized":
        raise ConfigurationError(
            "accelerator array backends require backend='vectorized' (the "
            "reference scalar loops have no managed batch math to offload); "
            f"got backend={backend!r}"
        )
    if name not in ACCELERATED_ALGORITHMS:
        supported = ", ".join(ACCELERATED_ALGORITHMS)
        raise ConfigurationError(
            f"algorithm {name!r} does not support accelerator array "
            f"backends; supported: {supported}"
        )


def make_algorithm(
    name: str, *, backend: str = "reference", array_backend: str = "numpy",
    shards: int = 1, shard_policy=None, shard_runner: str = "auto", **kwargs
) -> KMeansAlgorithm:
    """Instantiate an algorithm by registry name.

    ``backend`` selects the execution backend: ``"reference"`` (default;
    every algorithm) or ``"vectorized"`` (NumPy-batched, currently
    :data:`VECTORIZED_ALGORITHMS`; exact — same labels, centroids,
    iteration counts and counter totals as the reference).  Extra keyword
    arguments go to the algorithm constructor, e.g.
    ``make_algorithm("index", index="kd-tree")`` or
    ``make_algorithm("elkan", backend="vectorized", use_inter=False)``.

    ``shards > 1`` selects the fault-tolerant sharded execution engine
    (``repro.exec.sharded``): the assignment phase fans out across
    supervised worker processes with deterministic rank-order merging —
    bit-identical to the single-process vectorized backend.  Requires
    ``backend="vectorized"`` (the shard kernels *are* the vectorized
    kernels) and an algorithm with a sharded implementation;
    ``shard_policy`` picks the failure policy (``strict`` / ``recompute``
    / ``degrade``), ``shard_runner`` picks the execution data plane
    (``auto`` / ``process`` / ``inline``; docs/sharding.md), and further
    engine knobs (``execution``, ``fault_plan``, ``checkpoint``) pass
    through ``kwargs``.

    ``array_backend`` selects the array backend for the managed math of
    the hot kernels (``repro.backend``; docs/array_backends.md):
    ``"numpy"`` (default, bit-identical) or an accelerator backend
    (``"torch"`` / ``"torch-cuda"`` / ``"cupy"``; tolerance tier).
    Accelerator backends require ``backend="vectorized"``, an algorithm in
    :data:`ACCELERATED_ALGORITHMS`, and ``shards == 1``.
    """
    key = name.lower()
    if key not in ALGORITHMS:
        known = ", ".join(sorted(ALGORITHMS))
        raise ConfigurationError(
            f"unknown algorithm {name!r}; known algorithms: {known}"
        )
    _check_array_backend(array_backend, key, backend, shards, shard_policy)
    if int(shards) > 1 or shard_policy is not None:
        if backend != "vectorized":
            raise ConfigurationError(
                "sharded execution requires backend='vectorized' (the shard "
                f"kernels are the vectorized kernels); got backend={backend!r}"
            )
        # Imported lazily: repro.exec.sharded itself imports this package's
        # vectorized module, and most callers never shard.
        from repro.exec.sharded import make_sharded_algorithm

        kwargs.setdefault("runner", shard_runner)
        return make_sharded_algorithm(
            key, shards=max(1, int(shards)),
            shard_policy=shard_policy if shard_policy is not None else "strict",
            **kwargs,
        )
    if backend == "reference":
        cls = ALGORITHMS[key]
    elif backend == "vectorized":
        if key not in VECTORIZED_ALGORITHMS:
            available = ", ".join(sorted(VECTORIZED_ALGORITHMS))
            raise ConfigurationError(
                f"algorithm {name!r} has no vectorized implementation; "
                f"vectorized backends exist for: {available}"
            )
        cls = VECTORIZED_ALGORITHMS[key]
    else:
        raise ConfigurationError(
            f"unknown backend {backend!r}; known backends: {', '.join(BACKENDS)}"
        )
    algorithm = cls(**kwargs)
    algorithm.array_backend = array_backend
    return algorithm


class KMeans:
    """User-facing facade over the algorithm registry.

    Example
    -------
    >>> from repro.core import KMeans
    >>> model = KMeans(k=10, algorithm="unik", seed=0)
    >>> result = model.fit(X)
    >>> result.labels, result.centroids, result.sse  # doctest: +SKIP
    """

    def __init__(
        self,
        k: int,
        *,
        algorithm: str = "unik",
        backend: str = "reference",
        array_backend: str = "numpy",
        shards: int = 1,
        shard_policy=None,
        init: str = "k-means++",
        max_iter: int = DEFAULT_MAX_ITER,
        tol: float = 0.0,
        seed: Optional[int] = None,
        **algorithm_kwargs,
    ) -> None:
        self.k = int(k)
        self.algorithm_name = algorithm
        self.backend = backend
        self.array_backend = array_backend
        self.shards = int(shards)
        self.shard_policy = shard_policy
        self.init = init
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.seed = seed
        self.algorithm_kwargs = algorithm_kwargs
        self.result_: Optional[KMeansResult] = None

    def fit(self, X: np.ndarray, initial_centroids: Optional[np.ndarray] = None) -> KMeansResult:
        """Cluster ``X``; returns (and stores in ``result_``) the result."""
        algorithm = make_algorithm(
            self.algorithm_name,
            backend=self.backend,
            array_backend=self.array_backend,
            shards=self.shards,
            shard_policy=self.shard_policy,
            **self.algorithm_kwargs,
        )
        self.result_ = algorithm.fit(
            X,
            self.k,
            init=self.init,
            initial_centroids=initial_centroids,
            max_iter=self.max_iter,
            tol=self.tol,
            seed=self.seed,
        )
        return self.result_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Assign new points to the fitted centroids (nearest centroid)."""
        if self.result_ is None:
            raise ConfigurationError("predict called before fit")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        # Serving-path convenience; uncounted by design (kernel without counters).
        sq = chunked_sq_distances(X, self.result_.centroids)
        return np.argmin(sq, axis=1)


__all__ = [
    "ACCELERATED_ALGORITHMS",
    "ALGORITHMS",
    "BACKENDS",
    "EXACT_ALGORITHMS",
    "VECTORIZED_ALGORITHMS",
    "BOUND_KNOBS",
    "DEFAULT_MAX_ITER",
    "INDEX_KNOBS",
    "SELECTION_POOL",
    "IterationStats",
    "KMeans",
    "KMeansAlgorithm",
    "KMeansResult",
    "KnobConfig",
    "build_algorithm",
    "compute_sse",
    "configuration_pool",
    "init_kmeans_plus_plus",
    "init_random",
    "initialize_centroids",
    "make_algorithm",
    "LloydKMeans",
    "ElkanKMeans",
    "HamerlyKMeans",
    "DrakeKMeans",
    "YinyangKMeans",
    "RegroupKMeans",
    "HeapKMeans",
    "AnnularKMeans",
    "ExponionKMeans",
    "DriftKMeans",
    "VectorKMeans",
    "Pami20KMeans",
    "SearchKMeans",
    "IndexKMeans",
    "UniKKMeans",
    "FullKMeans",
    "VectorizedElkanKMeans",
    "VectorizedHamerlyKMeans",
    "VectorizedIndexKMeans",
    "VectorizedLloydKMeans",
    "VectorizedYinyangKMeans",
    "SphereKMeans",
    "MiniBatchKMeans",
    "SampledKMeans",
]
