"""Algorithm base class: the shared iterate/refine/instrument skeleton.

Every exact accelerated k-means method implements the same contract
(:meth:`KMeansAlgorithm._assign` plus optional hooks), and the base class
owns everything the evaluation framework needs to be *fair*: one
initialization path, one convergence rule, one refinement implementation,
one instrumentation scheme.  This mirrors the paper's UniK framework design
goal — "existing methods fit into a unified pipeline so the comparison is
apples-to-apples" (Section 5).

Refinement modes (Section 5.1.2):

``rescan``
    Traditional refinement — re-read every point each iteration
    (``n`` point accesses).
``delta``
    Ding et al.'s optimization — update sums with only the points that
    changed cluster (point accesses = number of moved points).
``none``
    The algorithm maintains cluster sum vectors itself during assignment
    (UniK's incremental refinement; zero extra accesses).
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional

import numpy as np

from repro.backend import backend_manager
from repro.common.distance import chunked_sq_distances, euclidean, one_to_many_distances
from repro.common.exceptions import ConfigurationError
from repro.common.rng import SeedLike, ensure_rng
from repro.common.validation import check_data_matrix, check_k
from repro.core.initialization import initialize_centroids
from repro.core.refinement import accumulate_cluster_sums, centroid_drifts
from repro.core.result import IterationStats, KMeansResult
from repro.instrumentation.counters import OpCounters
from repro.instrumentation.timers import PhaseTimer

#: iteration cap used across the paper's measurements ("the running time of
#: the first ten iterations", Section 7.1)
DEFAULT_MAX_ITER = 50


def compute_sse(X: np.ndarray, labels: np.ndarray, centroids: np.ndarray) -> float:
    """Sum of squared errors (Equation 1).  Not charged to any counter."""
    diff = X - centroids[labels]
    # repro: ignore[R001] — SSE is a quality metric, deliberately uncounted
    return float(np.einsum("ij,ij->", diff, diff))


class KMeansAlgorithm(abc.ABC):
    """Template for exact accelerated Lloyd's algorithms.

    Subclasses implement :meth:`_assign` (one assignment pass over the data
    given ``self._centroids``, writing ``self._labels``) and may override
    :meth:`_setup` (precomputation: index build, norm tables, ...),
    :meth:`_update_bounds` (drift-correct stored bounds after refinement)
    and :meth:`_refine` (only UniK replaces it, for sum-vector refinement).
    """

    #: registry name, overridden by subclasses
    name: str = "base"
    #: execution backend: "reference" (pointwise scalar loops, the ground
    #: truth for OpCounters semantics) or "vectorized" (NumPy-batched,
    #: counter- and trajectory-identical; see repro.core.vectorized and
    #: docs/backends.md)
    backend: str = "reference"
    #: array backend for the managed math of the hot kernels: "numpy"
    #: (default; bit-identical ground truth) or a registered accelerator
    #: backend ("torch", "torch-cuda", "cupy"; tolerance tier — see
    #: repro.backend and docs/array_backends.md).  Set by make_algorithm.
    array_backend: str = "numpy"
    #: refinement mode: "rescan", "delta" or "none" (see module docstring)
    refinement: str = "delta"

    def __init__(self) -> None:
        self.X: Optional[np.ndarray] = None
        self.k: int = 0
        self.counters = OpCounters()
        self._centroids: Optional[np.ndarray] = None
        self._labels: Optional[np.ndarray] = None
        self._sums: Optional[np.ndarray] = None
        self._counts: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        k: int,
        *,
        init: str = "k-means++",
        initial_centroids: Optional[np.ndarray] = None,
        max_iter: int = DEFAULT_MAX_ITER,
        tol: float = 0.0,
        seed: SeedLike = None,
        record_sse: bool = False,
    ) -> KMeansResult:
        """Cluster ``X`` into ``k`` clusters.

        Parameters
        ----------
        X:
            Data matrix of shape ``(n, d)``.
        k:
            Number of clusters.
        init:
            ``"k-means++"`` (default) or ``"random"``; ignored when
            ``initial_centroids`` is given.
        initial_centroids:
            Explicit ``(k, d)`` starting centroids — the evaluation harness
            passes the same array to every algorithm so runs are comparable.
        max_iter:
            Iteration cap.  The paper measures the first ten iterations;
            the harness passes ``max_iter=10`` for timing experiments.
        tol:
            Centroid-drift threshold for convergence.  The default ``0.0``
            requires exact convergence (no centroid moved), which is
            reached in finitely many iterations because refinement from
            identical memberships reproduces identical centroids.
        seed:
            Seed controlling initialization.
        record_sse:
            Record the SSE after every iteration in ``iteration_stats``
            (one uncounted full pass per iteration; off by default).
        """
        self.X = check_data_matrix(X)
        n, d = self.X.shape
        self.k = check_k(k, n)
        if max_iter < 1:
            raise ConfigurationError(f"max_iter must be >= 1, got {max_iter}")
        rng = ensure_rng(seed)
        self.counters = OpCounters()
        timer = PhaseTimer()

        # The iteration phases (setup / assign / refine) run under the
        # selected array backend; the init phase deliberately does NOT —
        # seeding stays on the default numpy backend so the RNG pick
        # sequence, and therefore the starting centroids, are identical for
        # every array backend (docs/array_backends.md, "seeding parity").
        array_ctx = backend_manager.use(self.array_backend)

        with timer.phase("setup"), array_ctx:
            self._setup()

        with timer.phase("init"):
            if initial_centroids is not None:
                centroids = check_data_matrix(initial_centroids, copy=True)
                if centroids.shape != (self.k, d):
                    raise ConfigurationError(
                        f"initial_centroids must have shape ({self.k}, {d}), "
                        f"got {centroids.shape}"
                    )
            else:
                # Seeding runs on the algorithm's own backend; the vectorized
                # initializer is bit-identical under the same RNG stream
                # (docs/backends.md, "seeding parity"), so both backends
                # still start from the same centroids.
                centroids = initialize_centroids(
                    self.X, self.k, init, seed=rng, backend=self.backend
                )
        self._centroids = centroids
        self._labels = np.full(n, -1, dtype=np.intp)
        self._sums = np.zeros((self.k, d))
        self._counts = np.zeros(self.k, dtype=np.intp)

        iteration_stats: List[IterationStats] = []
        converged = False
        n_iter = 0
        for t in range(max_iter):
            timer.start_iteration()
            before = self.counters.snapshot()
            previous_labels = self._labels.copy()
            with timer.phase("assignment"), array_ctx:
                self._assign(t)
            with timer.phase("refinement"), array_ctx:
                new_centroids = self._refine(t, previous_labels)
            drifts = centroid_drifts(new_centroids, self._centroids)
            self._centroids = new_centroids
            n_iter = t + 1
            changed = int(np.count_nonzero(previous_labels != self._labels))
            delta = self.counters.snapshot() - before
            iteration_stats.append(
                IterationStats(
                    iteration=t,
                    assignment_time=timer.iterations[t].get("assignment", 0.0),
                    refinement_time=timer.iterations[t].get("refinement", 0.0),
                    distance_computations=delta.distance_computations,
                    point_accesses=delta.point_accesses,
                    node_accesses=delta.node_accesses,
                    bound_accesses=delta.bound_accesses,
                    bound_updates=delta.bound_updates,
                    changed=changed,
                    sse=(
                        compute_sse(self.X, self._labels, self._centroids)
                        if record_sse
                        else None
                    ),
                )
            )
            if float(drifts.max(initial=0.0)) <= tol:
                converged = True
                break
            self._update_bounds(drifts)

        result = KMeansResult(
            algorithm=self.name,
            n=n,
            d=d,
            k=self.k,
            labels=self._labels.copy(),
            centroids=self._centroids.copy(),
            n_iter=n_iter,
            converged=converged,
            sse=compute_sse(self.X, self._labels, self._centroids),
            counters=self.counters.snapshot(),
            footprint_floats=self.counters.footprint_floats,
            assignment_time=timer.total("assignment"),
            refinement_time=timer.total("refinement"),
            setup_time=timer.total("setup"),
            init_time=timer.total("init"),
            iteration_stats=iteration_stats,
            extras={
                "backend": self.backend,
                "array_backend": self.array_backend,
                **self._extras(),
            },
        )
        return result

    # ------------------------------------------------------------------
    # Hooks for subclasses.
    # ------------------------------------------------------------------

    def _setup(self) -> None:
        """Pre-clustering work: index construction, norm tables, bounds."""

    @abc.abstractmethod
    def _assign(self, iteration: int) -> None:
        """One assignment pass: update ``self._labels`` in place."""

    def _update_bounds(self, drifts: np.ndarray) -> None:
        """Drift-correct stored bounds after centroids moved."""

    def _extras(self) -> Dict[str, Any]:
        """Algorithm-specific result annotations."""
        return {}

    # ------------------------------------------------------------------
    # Refinement.
    # ------------------------------------------------------------------

    def _refine(self, iteration: int, previous_labels: np.ndarray) -> np.ndarray:
        """Compute new centroids according to the refinement mode."""
        if self.refinement == "rescan":
            # Zero-base scatter-add: bincount is bitwise-identical to the
            # previous fill(0) + np.add.at and ~3x faster (repro.core.refinement).
            self._sums[:] = accumulate_cluster_sums(self.X, self._labels, self.k)
            self._counts = np.bincount(self._labels, minlength=self.k).astype(np.intp)
            self.counters.add_point_accesses(len(self.X))
        elif self.refinement == "delta":
            # Accumulates into non-zero sums, where bincount's partial-sum
            # rounding would differ from add.at's — see repro.core.refinement.
            moved = np.flatnonzero(previous_labels != self._labels)
            if len(moved):
                moved_points = self.X[moved]
                new = self._labels[moved]
                np.add.at(self._sums, new, moved_points)
                self._counts += np.bincount(new, minlength=self.k)
                old = previous_labels[moved]
                valid = old >= 0
                if valid.any():
                    np.subtract.at(self._sums, old[valid], moved_points[valid])
                    self._counts -= np.bincount(old[valid], minlength=self.k)
            self.counters.add_point_accesses(len(moved))
        elif self.refinement == "none":
            pass  # the algorithm maintained self._sums/_counts during _assign
        else:  # pragma: no cover - guarded by constructor conventions
            raise ConfigurationError(f"unknown refinement mode {self.refinement!r}")
        new_centroids = self._centroids.copy()
        nonempty = self._counts > 0
        new_centroids[nonempty] = self._sums[nonempty] / self._counts[nonempty, None]
        return new_centroids

    # ------------------------------------------------------------------
    # Shared helpers for subclasses.
    # ------------------------------------------------------------------

    def _full_scan_assign(self) -> np.ndarray:
        """Vectorized Lloyd assignment pass; returns the distance matrix.

        Charges ``n * k`` distances and ``n * k`` point accesses (the
        paper's Table 3 convention: each distance touches its point).
        """
        sq = chunked_sq_distances(self.X, self._centroids, self.counters)
        self.counters.add_point_accesses(sq.size)
        self._labels = np.argmin(sq, axis=1).astype(np.intp)
        return np.sqrt(sq)

    def _point_centroid_distance(self, i: int, j: int) -> float:
        """Counted distance from point ``i`` to centroid ``j``."""
        self.counters.point_accesses += 1
        return euclidean(self.X[i], self._centroids[j], self.counters)

    def _point_distances(self, i: int, centroid_idx: np.ndarray) -> np.ndarray:
        """Counted distances from point ``i`` to a set of centroids."""
        self.counters.point_accesses += len(centroid_idx)
        return one_to_many_distances(
            self.X[i], self._centroids[centroid_idx], self.counters
        )
