"""Elkan's algorithm (Elkan 2003) — inter-bound plus drift-bound (Section 4.1).

State per point: an upper bound ``ub(i)`` on the distance to its assigned
centroid and a lower bound ``lb(i, j)`` for every centroid.  Pruning tests:

* global: ``ub(i) <= s(a(i))`` where ``s(j)`` is half the distance from
  ``c_j`` to its closest other centroid — the point cannot leave its cluster;
* local (per candidate ``j``): ``lb(i, j) >= ub(i)`` or
  ``0.5 * d(c_a, c_j) >= ub(i)``.

After refinement, ``ub`` grows by the assigned centroid's drift and every
``lb(i, j)`` shrinks by ``c_j``'s drift — the ``n * k`` bound updates that
make Elkan memory- and update-heavy, which the paper's Figures 10/11 call
out and this implementation's counters reproduce.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import KMeansAlgorithm
from repro.core.pruning import centroid_separations


class ElkanKMeans(KMeansAlgorithm):
    """Elkan's triangle-inequality k-means with full per-centroid bounds.

    The two bound families of Section 4.1 can be ablated independently:

    ``use_inter``
        The inter-centroid bounds — the global test ``ub <= s(a)`` and the
        local test ``0.5 * d(c_a, c_j) >= ub`` (costs k(k-1)/2 distances
        per iteration).
    ``use_drift``
        The drift-maintained lower-bound matrix ``lb(i, j)`` (costs n*k
        bound updates per iteration).

    Both default on (the paper's Elka); turning one off reproduces the
    ablation of which mechanism carries the pruning on a given dataset.
    """

    name = "elkan"

    def __init__(self, *, use_inter: bool = True, use_drift: bool = True) -> None:
        super().__init__()
        if not use_inter and not use_drift:
            from repro.common.exceptions import ConfigurationError

            raise ConfigurationError(
                "at least one of use_inter/use_drift must be enabled"
            )
        self.use_inter = bool(use_inter)
        self.use_drift = bool(use_drift)
        self._ub: np.ndarray | None = None
        self._lb: np.ndarray | None = None

    def _setup(self) -> None:
        n = len(self.X)
        self.counters.record_footprint(n * self.k + n)

    def _initial_scan(self) -> None:
        """First-iteration full scan seeding ``ub`` and the ``lb`` matrix.

        Shared with the vectorized backend (both backends take this exact
        path, so iteration 0 is trivially identical between them).
        """
        dists = self._full_scan_assign()
        self._lb = dists
        self._ub = dists[np.arange(len(self.X)), self._labels].copy()
        self.counters.add_bound_updates(dists.size + len(self.X))

    def _assign(self, iteration: int) -> None:
        if iteration == 0:
            self._initial_scan()
            return

        if self.use_inter:
            cc, s = centroid_separations(self._centroids, self.counters)
        else:
            cc = None
            s = np.zeros(self.k)  # never prunes
        n = len(self.X)
        labels = self._labels
        ub = self._ub
        lb = self._lb
        counters = self.counters
        # Global test, vectorized (n bound reads); survivors go pointwise.
        counters.add_bound_accesses(n)
        for i in np.flatnonzero(ub > s[labels]):
            i = int(i)
            a = int(labels[i])
            u = float(ub[i])
            # Candidate filter: both Elkan conditions over all j != a.
            row = lb[i]
            counters.bound_accesses += self.k
            mask = row < u
            if cc is not None:
                mask &= 0.5 * cc[a] < u
            mask[a] = False
            candidates = np.flatnonzero(mask)
            if len(candidates) == 0:
                continue
            # Tighten ub to the exact distance, then re-test.
            da = self._point_centroid_distance(i, a)
            ub[i] = da
            lb[i, a] = da
            counters.add_bound_updates(2)
            u = da
            for j in candidates:
                counters.bound_accesses += 2
                if lb[i, j] >= u or (
                    cc is not None and 0.5 * cc[int(labels[i]), j] >= u
                ):
                    continue
                dij = self._point_centroid_distance(i, int(j))
                lb[i, j] = dij
                counters.add_bound_updates(1)
                if dij < u:
                    labels[i] = j
                    ub[i] = dij
                    counters.add_bound_updates(1)
                    u = dij

    def _update_bounds(self, drifts: np.ndarray) -> None:
        if self.use_drift:
            self._lb -= drifts[None, :]
            np.maximum(self._lb, 0.0, out=self._lb)
            self.counters.add_bound_updates(self._lb.size)
        else:
            # Ablation: without drift maintenance the matrix is invalid
            # after refinement; zero is the only sound lower bound.
            self._lb.fill(0.0)
        self._ub += drifts[self._labels]
        self.counters.add_bound_updates(len(self._ub))
