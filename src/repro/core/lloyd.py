"""Lloyd's algorithm (Lloyd 1982) — the baseline every method accelerates.

The assignment computes all ``n * k`` distances; refinement follows the
configured mode (``rescan`` reproduces the textbook algorithm; the harness
also runs a ``delta`` variant to isolate the refinement optimization of
Figure 9).
"""

from __future__ import annotations

from repro.core.base import KMeansAlgorithm


class LloydKMeans(KMeansAlgorithm):
    """Textbook Lloyd's algorithm with a vectorized full scan."""

    name = "lloyd"
    refinement = "rescan"

    def __init__(self, *, refinement: str = "rescan") -> None:
        super().__init__()
        self.refinement = refinement

    def _assign(self, iteration: int) -> None:
        self._full_scan_assign()
