"""Shared vectorized refinement step: scatter-add centroid update + drift.

Every algorithm funnels refinement through :meth:`KMeansAlgorithm._refine`;
this module holds the two kernels that step is built from so both execution
backends (and UniK's incremental variant) share one implementation:

* :func:`accumulate_cluster_sums` — per-cluster point sums via a flattened
  ``np.bincount`` scatter-add;
* :func:`centroid_drifts` — per-centroid movement after refinement (the
  quantity every bound-update rule of Section 4 consumes).

Bit-identity
------------
``np.bincount`` with weights and ``np.add.at`` both accumulate their
operands *sequentially in element order* into the output bucket, so from a
zero base the two produce bitwise-identical sums — ``bincount`` is simply
~3x faster because it runs one fused C loop over a contiguous weights
array instead of ufunc inner-loop dispatch per row.  That equivalence is
regression-tested in ``tests/test_backend_conformance.py``
(``test_scatter_add_matches_add_at``); it does **not** hold when
accumulating into a non-zero base (the partial sum would be formed before
the base is added, changing the rounding sequence), which is why the
``delta`` refinement mode in :mod:`repro.core.base` keeps ``np.add.at``.

Counter semantics: neither kernel charges counters itself — refinement
point-access charges are mode-dependent (``rescan`` re-reads every point,
``delta`` only the movers, ``none`` nothing) and stay with the caller.
"""

from __future__ import annotations

import numpy as np

#: Opts this module into R008 (backend-purity): any distance arithmetic
#: here must go through the counted kernels in ``repro.common.distance``.
BACKEND_ROUTED = True


def accumulate_cluster_sums(
    X: np.ndarray, labels: np.ndarray, k: int
) -> np.ndarray:
    """Per-cluster sums of the rows of ``X``, grouped by ``labels``.

    Returns a fresh ``(k, d)`` array; entry ``j`` is the sum of every row
    with ``labels == j``, accumulated in ascending row order — bitwise
    identical to ``out = zeros((k, d)); np.add.at(out, labels, X)``.
    """
    n, d = X.shape
    flat_idx = (labels[:, None] * d + np.arange(d)).ravel()
    flat = np.bincount(flat_idx, weights=X.ravel(), minlength=k * d)
    return flat.reshape(k, d)


def centroid_drifts(new_centroids: np.ndarray, old_centroids: np.ndarray) -> np.ndarray:
    """Per-centroid Euclidean drift after one refinement step.

    NOT charged to distance_computations: drift is convergence/bound-
    maintenance bookkeeping computed once per iteration for every algorithm
    by the shared skeleton, so the Table 3 counters isolate assignment-phase
    pruning work (Lloyd's baseline stays exactly ``n * k`` per iteration).
    See docs/static_analysis.md ("the drift convention").
    """
    # repro: ignore[R001] — uncounted by the drift convention documented above
    return np.linalg.norm(new_centroids - old_centroids, axis=1)
