"""Shared vectorized refinement step: scatter-add centroid update + drift.

Every algorithm funnels refinement through :meth:`KMeansAlgorithm._refine`;
this module holds the two kernels that step is built from so both execution
backends (and UniK's incremental variant) share one implementation:

* :func:`accumulate_cluster_sums` — per-cluster point sums via a flattened
  ``np.bincount`` scatter-add;
* :func:`centroid_drifts` — per-centroid movement after refinement (the
  quantity every bound-update rule of Section 4 consumes).

Bit-identity
------------
``np.bincount`` with weights and ``np.add.at`` both accumulate their
operands *sequentially in element order* into the output bucket, so from a
zero base the two produce bitwise-identical sums — ``bincount`` is simply
~3x faster because it runs one fused C loop over a contiguous weights
array instead of ufunc inner-loop dispatch per row.  That equivalence is
regression-tested in ``tests/test_backend_conformance.py``
(``test_scatter_add_matches_add_at``); it does **not** hold when
accumulating into a non-zero base (the partial sum would be formed before
the base is added, changing the rounding sequence), which is why the
``delta`` refinement mode in :mod:`repro.core.base` keeps ``np.add.at``.

Counter semantics: neither kernel charges counters itself — refinement
point-access charges are mode-dependent (``rescan`` re-reads every point,
``delta`` only the movers, ``none`` nothing) and stay with the caller.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.backend import backend_manager as bm

#: Opts this module into R008 (backend-purity): any distance arithmetic
#: here must go through the counted kernels in ``repro.common.distance``,
#: and any managed array math through the backend manager (``bm``).
BACKEND_ROUTED = True


def accumulate_cluster_sums(
    X: np.ndarray, labels: np.ndarray, k: int
) -> np.ndarray:
    """Per-cluster sums of the rows of ``X``, grouped by ``labels``.

    Returns a fresh ``(k, d)`` array; entry ``j`` is the sum of every row
    with ``labels == j``, accumulated in ascending row order — bitwise
    identical to ``out = zeros((k, d)); np.add.at(out, labels, X)``.
    """
    n, d = X.shape
    flat_idx = (labels[:, None] * d + np.arange(d)).ravel()
    flat = bm.bincount(flat_idx, weights=X.ravel(), minlength=k * d)
    return flat.reshape(k, d)


def merge_shard_assignments(
    X: np.ndarray,
    k: int,
    shard_labels: Sequence[np.ndarray],
    shard_ranges: Sequence[Tuple[int, int]],
    *,
    lost: Sequence[int] = (),
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fold per-shard assignment outputs into ``(labels, sums, counts)``.

    The sharded engine's merge step: shard ``r`` covers the contiguous row
    range ``shard_ranges[r] = (lo, hi)`` of ``X`` and contributes the label
    slice ``shard_labels[r]``.  Shards are folded **in shard-rank order**
    regardless of worker completion order, and the centroid sums come from
    one :func:`accumulate_cluster_sums` scatter-add over the concatenated
    rows — so with every shard present the result is *bitwise* equal to the
    unsharded ``accumulate_cluster_sums(X, labels, k)``.

    That replay discipline is load-bearing: summing per-shard *partial*
    ``(k, d)`` sums would associate the float additions differently (e.g.
    rows ``[1.0, 1.0, 1e16]`` split ``[1.0] | [1.0, 1e16]`` — the full fold
    yields ``1.0000000000000002e16``, the partial-sum merge ``1e16``), and
    bit-identity to the single-process backend is the engine's contract
    (R011 lints exactly this ordering discipline; see docs/sharding.md).

    ``lost`` names shard ranks with no usable labels (``degrade`` policy):
    their rows are excluded from the fold and keep label ``-1`` in the
    returned full-length label vector.  Counts are integer bincounts over
    the surviving rows (integer addition is associative, so per-shard
    count merging and a global bincount agree exactly).
    """
    n, d = X.shape
    if len(shard_labels) != len(shard_ranges):
        raise ValueError(
            f"{len(shard_labels)} label slices but {len(shard_ranges)} ranges"
        )
    labels = np.full(n, -1, dtype=np.intp)
    lost_set = frozenset(int(r) for r in lost)
    expected = 0
    survivors = []
    for rank, (lo, hi) in enumerate(shard_ranges):
        if lo != expected or hi < lo:
            raise ValueError(
                f"shard ranges must partition [0, {n}) contiguously; "
                f"shard {rank} covers [{lo}, {hi}) after {expected}"
            )
        expected = hi
        if rank in lost_set:
            continue
        slice_labels = shard_labels[rank]
        if slice_labels is None or len(slice_labels) != hi - lo:
            raise ValueError(
                f"shard {rank} labels cover {0 if slice_labels is None else len(slice_labels)} "
                f"rows, range is [{lo}, {hi})"
            )
        labels[lo:hi] = slice_labels
        survivors.append(rank)
    if expected != n:
        raise ValueError(f"shard ranges cover [0, {expected}), data has {n} rows")
    if len(survivors) == len(shard_ranges):
        # No loss: one scatter-add over the full matrix, bit-identical to
        # the unsharded refinement fold.
        sums = accumulate_cluster_sums(X, labels, k)
        counts = bm.bincount(labels, minlength=k).astype(np.intp)
        return labels, sums, counts
    if survivors:
        rows = np.concatenate([np.arange(*shard_ranges[r]) for r in survivors])
        sums = accumulate_cluster_sums(X[rows], labels[rows], k)
        counts = bm.bincount(labels[rows], minlength=k).astype(np.intp)
    else:
        sums = np.zeros((k, d))
        counts = np.zeros(k, dtype=np.intp)
    return labels, sums, counts


def centroid_drifts(new_centroids: np.ndarray, old_centroids: np.ndarray) -> np.ndarray:
    """Per-centroid Euclidean drift after one refinement step.

    NOT charged to distance_computations: drift is convergence/bound-
    maintenance bookkeeping computed once per iteration for every algorithm
    by the shared skeleton, so the Table 3 counters isolate assignment-phase
    pruning work (Lloyd's baseline stays exactly ``n * k`` per iteration).
    See docs/static_analysis.md ("the drift convention").
    """
    # repro: ignore[R001] — uncounted by the drift convention documented above
    return np.linalg.norm(new_centroids - old_centroids, axis=1)
