"""Annular algorithm (Drake 2013; Hamerly & Drake 2015) — Section 4.3.1.

Extends Hamerly with a norm-based candidate filter: centroid norms are
sorted once per iteration, and when a point's bounds fail, only centroids in
the annulus

    | ||c_j|| - ||x_i|| |  <=  max(ub(i), d(x_i, c_second))        (Eq. 5)

are scanned, located by binary search over the sorted norms.  Soundness:
both the nearest and second-nearest centroid lie within that radius of
``x_i``, and the norm difference lower-bounds the distance, so everything
outside the annulus can affect neither the assignment nor the second-nearest
lower bound.

The second-nearest centroid's identity is tracked so its distance upper
bound ``ub2`` can be drift-maintained, exactly as Drake's implementation
does.
"""

from __future__ import annotations

import numpy as np

from repro.common.distance import norms
from repro.core.base import KMeansAlgorithm
from repro.core.pruning import centroid_separations, second_max, two_smallest


class AnnularKMeans(KMeansAlgorithm):
    """Hamerly plus the norm-annulus centroid filter."""

    name = "annular"

    def __init__(self) -> None:
        super().__init__()
        self._ub: np.ndarray | None = None
        self._lb: np.ndarray | None = None
        self._second: np.ndarray | None = None  # second-nearest centroid index
        self._ub2: np.ndarray | None = None  # upper bound on its distance
        self._xnorms: np.ndarray | None = None

    def _setup(self) -> None:
        self._xnorms = norms(self.X)
        self.counters.record_footprint(5 * len(self.X) + self.k)

    def _assign(self, iteration: int) -> None:
        if iteration == 0:
            dists = self._full_scan_assign()
            n = len(self.X)
            idx = np.arange(n)
            self._ub = dists[idx, self._labels].copy()
            masked = dists.copy()
            masked[idx, self._labels] = np.inf
            if self.k > 1:
                self._second = np.argmin(masked, axis=1).astype(np.intp)
                self._lb = masked[idx, self._second].copy()
            else:
                self._second = np.zeros(n, dtype=np.intp)
                self._lb = np.full(n, np.inf)
            self._ub2 = self._lb.copy()
            self.counters.add_bound_updates(4 * n)
            return

        _, s = centroid_separations(self._centroids, self.counters)
        cnorms = norms(self._centroids)
        norm_order = np.argsort(cnorms, kind="stable")
        sorted_norms = cnorms[norm_order]
        counters = self.counters
        # Vectorized global test; survivors go pointwise.
        thresholds = np.maximum(self._lb, s[self._labels])
        counters.add_bound_accesses(2 * len(self.X))
        for i in np.flatnonzero(self._ub > thresholds):
            i = int(i)
            a = int(self._labels[i])
            threshold = float(thresholds[i])
            da = self._point_centroid_distance(i, a)
            self._ub[i] = da
            counters.add_bound_updates(1)
            if da <= threshold:
                continue
            # Annulus scan (Eq. 5).
            counters.bound_accesses += 1
            radius = max(da, float(self._ub2[i]))
            xn = float(self._xnorms[i])
            lo = np.searchsorted(sorted_norms, xn - radius, side="left")
            hi = np.searchsorted(sorted_norms, xn + radius, side="right")
            candidates = norm_order[lo:hi]
            dists = self._point_distances(i, candidates)
            pos, d1, d2 = two_smallest(dists)
            best = int(candidates[pos])
            self._labels[i] = best
            self._ub[i] = d1
            self._lb[i] = d2
            if len(candidates) > 1:
                masked = dists.copy()
                masked[pos] = np.inf
                self._second[i] = int(candidates[int(np.argmin(masked))])
            self._ub2[i] = d2
            counters.add_bound_updates(4)

    def _update_bounds(self, drifts: np.ndarray) -> None:
        top_j, top, second = second_max(drifts)
        self._ub += drifts[self._labels]
        decay = np.where(self._labels == top_j, second, top)
        self._lb -= decay
        self._ub2 += drifts[self._second]
        self.counters.add_bound_updates(3 * len(self.X))
