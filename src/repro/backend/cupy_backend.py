"""CuPy array backend: registered only when a CUDA device is usable.

Mirrors the Torch adapter's registration contract: if ``cupy`` is not
importable, or imports but cannot allocate on a device, the manager
records the reason and ``backend_manager.get("cupy")`` raises a
classified :class:`~repro.common.exceptions.BackendUnavailableError` —
which the conformance suite reports as an explicit SKIP (the CI
``backend-matrix`` job asserts those cells are skipped, never silently
passed).  Held to the tolerance tier; see docs/array_backends.md.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

try:  # pragma: no cover - exercised only where cupy is installed
    import cupy
except Exception as _exc:
    cupy = None
    _IMPORT_REASON = f"cupy is not importable ({type(_exc).__name__})"
else:
    _IMPORT_REASON = ""


def register(manager) -> None:
    """Register ``cupy`` or record why it cannot run here."""
    if cupy is None:
        manager.mark_unavailable("cupy", _IMPORT_REASON)
        return
    try:  # pragma: no cover - requires a CUDA device
        probe = cupy.zeros(1, dtype=cupy.float64)
        float(probe.sum())
    except Exception as exc:
        manager.mark_unavailable(
            "cupy", f"cupy imported but no usable CUDA device ({exc})"
        )
        return
    manager.register("cupy", CupyBackend())  # pragma: no cover


class CupyBackend:  # pragma: no cover - requires a CUDA device
    """Managed ops over ``cupy`` device arrays, NumPy in / NumPy out."""

    name = "cupy"
    device = "cuda"

    # -- creation / conversion -----------------------------------------

    def asarray(self, x, dtype=None):
        return cupy.asarray(x, dtype=dtype)

    def to_numpy(self, x) -> np.ndarray:
        if isinstance(x, cupy.ndarray):
            return cupy.asnumpy(x)
        return np.asarray(x)

    def zeros(self, shape: Union[int, Tuple[int, ...]], dtype=np.float64) -> np.ndarray:
        return cupy.asnumpy(cupy.zeros(shape, dtype=dtype))

    def arange(self, n: int) -> np.ndarray:
        return cupy.asnumpy(cupy.arange(n))

    # -- managed math ---------------------------------------------------

    def matmul(self, a, b) -> np.ndarray:
        return cupy.asnumpy(cupy.matmul(cupy.asarray(a), cupy.asarray(b)))

    def einsum(self, subscripts: str, *operands) -> np.ndarray:
        arrays = [cupy.asarray(op) for op in operands]
        return cupy.asnumpy(cupy.einsum(subscripts, *arrays))

    def argmin(self, x, axis: Optional[int] = None) -> np.ndarray:
        # Same explicit first-index tie-break as the Torch adapter: CUDA
        # reduction order must not decide ties.
        t = cupy.asarray(x)
        if axis is None:
            t = t.reshape(-1)
            axis = 0
        size = t.shape[axis]
        mins = t.min(axis=axis, keepdims=True)
        shape = [1] * t.ndim
        shape[axis] = size
        idx = cupy.arange(size).reshape(shape)
        masked = cupy.where(t == mins, idx, size)
        return cupy.asnumpy(masked.min(axis=axis)).astype(np.intp)

    def partition(self, x, kth: int, axis: int = -1) -> np.ndarray:
        return cupy.asnumpy(cupy.partition(cupy.asarray(x), kth, axis=axis))

    def bincount(self, idx, weights=None, minlength: int = 0) -> np.ndarray:
        t_idx = cupy.asarray(np.asarray(idx, dtype=np.int64))
        t_w = None if weights is None else cupy.asarray(weights)
        return cupy.asnumpy(cupy.bincount(t_idx, weights=t_w, minlength=minlength))

    def sq_norms(self, X) -> np.ndarray:
        t = cupy.asarray(X)
        return cupy.asnumpy(cupy.einsum("ij,ij->i", t, t))

    def take(self, x, idx, axis: int = 0) -> np.ndarray:
        t_idx = cupy.asarray(np.asarray(idx, dtype=np.int64))
        return cupy.asnumpy(cupy.take(cupy.asarray(x), t_idx, axis=axis))

    def where(self, cond, a, b) -> np.ndarray:
        return cupy.asnumpy(
            cupy.where(cupy.asarray(cond), cupy.asarray(a), cupy.asarray(b))
        )
