"""Torch array backend (CPU, plus ``torch-cuda`` when a device exists).

Registers itself with the manager only if ``torch`` imports and passes a
small usability probe; on hosts without Torch the module records the
reason instead, so ``backend_manager.get("torch")`` raises a classified
:class:`~repro.common.exceptions.BackendUnavailableError` and the
conformance suite skips with that reason (never silently passes).

Ops take and return NumPy arrays (the manager's op-boundary contract).
On CPU, ``torch.from_numpy`` / ``Tensor.numpy()`` share memory with the
float64 source, so the round-trip adds no copies; the ``torch-cuda``
variant pays one host↔device transfer per op, which is the conventional
price for kernel-boundary offload.  This backend is held to the
*tolerance* tier: Torch's reduction order differs from NumPy's dot
kernel, so results are close (labels identical, centroids within rtol)
but not bitwise — see docs/array_backends.md for the contract and bands.

Determinism note: ``argmin`` implements first-index tie-breaking
explicitly (smallest index among positions equal to the row minimum)
rather than relying on ``torch.argmin``, whose tie behavior is not
guaranteed across devices.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

try:  # pragma: no cover - exercised only where torch is installed
    import torch
except Exception as _exc:
    torch = None
    _IMPORT_REASON = f"torch is not importable ({type(_exc).__name__})"
else:
    _IMPORT_REASON = ""


def register(manager) -> None:
    """Register ``torch`` (and ``torch-cuda``) or record why not."""
    if torch is None:
        manager.mark_unavailable("torch", _IMPORT_REASON)
        manager.mark_unavailable("torch-cuda", _IMPORT_REASON)
        return
    try:
        probe = torch.zeros(1, dtype=torch.float64)
        float(probe.sum())
    except Exception as exc:  # pragma: no cover - defensive
        reason = f"torch import succeeded but is unusable ({exc})"
        manager.mark_unavailable("torch", reason)
        manager.mark_unavailable("torch-cuda", reason)
        return
    manager.register("torch", TorchBackend(device="cpu"))
    try:
        has_cuda = bool(torch.cuda.is_available())
    except Exception:  # pragma: no cover - defensive
        has_cuda = False
    if has_cuda:  # pragma: no cover - CI runners are CPU-only
        manager.register("torch-cuda", TorchBackend(device="cuda"))
    else:
        manager.mark_unavailable("torch-cuda", "no CUDA device visible to torch")


class TorchBackend:
    """Managed ops over ``torch`` tensors, NumPy in / NumPy out."""

    name = "torch"

    def __init__(self, device: str = "cpu") -> None:
        self.device = device
        if device != "cpu":
            self.name = f"torch-{device}"

    # -- creation / conversion -----------------------------------------

    def _tensor(self, x) -> "torch.Tensor":
        if isinstance(x, torch.Tensor):
            return x.to(self.device)
        arr = np.ascontiguousarray(x)
        return torch.from_numpy(arr).to(self.device)

    def asarray(self, x, dtype=None):
        if dtype is not None:
            x = np.asarray(x, dtype=dtype)
        return self._tensor(x)

    def to_numpy(self, x) -> np.ndarray:
        if isinstance(x, torch.Tensor):
            return x.cpu().numpy()
        return np.asarray(x)

    def zeros(self, shape: Union[int, Tuple[int, ...]], dtype=np.float64) -> np.ndarray:
        t = torch.zeros(shape, dtype=torch.from_numpy(np.empty(0, dtype=dtype)).dtype)
        return t.cpu().numpy()

    def arange(self, n: int) -> np.ndarray:
        return torch.arange(n, device=self.device).cpu().numpy()

    # -- managed math ---------------------------------------------------

    def matmul(self, a, b) -> np.ndarray:
        return self.to_numpy(torch.matmul(self._tensor(a), self._tensor(b)))

    def einsum(self, subscripts: str, *operands) -> np.ndarray:
        tensors = [self._tensor(op) for op in operands]
        return self.to_numpy(torch.einsum(subscripts, *tensors))

    def argmin(self, x, axis: Optional[int] = None) -> np.ndarray:
        t = self._tensor(x)
        if axis is None:
            t = t.reshape(-1)
            axis = 0
        # Explicit first-index tie-break: positions not equal to the row
        # minimum get sentinel index `size`, then the min index wins.
        size = t.shape[axis]
        mins = t.min(dim=axis, keepdim=True).values
        shape = [1] * t.dim()
        shape[axis] = size
        idx = torch.arange(size, device=t.device).reshape(shape)
        masked = torch.where(t == mins, idx, torch.full_like(idx, size))
        out = masked.min(dim=axis).values
        return self.to_numpy(out).astype(np.intp)

    def partition(self, x, kth: int, axis: int = -1) -> np.ndarray:
        # torch has no partial sort; a full sort satisfies the partition
        # postcondition (positions 0..kth hold the kth+1 smallest, ordered).
        values, _ = torch.sort(self._tensor(x), dim=axis)
        return self.to_numpy(values)

    def bincount(self, idx, weights=None, minlength: int = 0) -> np.ndarray:
        t_idx = self._tensor(np.asarray(idx, dtype=np.int64))
        t_w = None if weights is None else self._tensor(np.asarray(weights))
        out = torch.bincount(t_idx, weights=t_w, minlength=minlength)
        return self.to_numpy(out)

    def sq_norms(self, X) -> np.ndarray:
        t = self._tensor(X)
        return self.to_numpy((t * t).sum(dim=1))

    def take(self, x, idx, axis: int = 0) -> np.ndarray:
        t = self._tensor(x)
        t_idx = self._tensor(np.asarray(idx, dtype=np.int64))
        return self.to_numpy(torch.index_select(t, axis, t_idx))

    def where(self, cond, a, b) -> np.ndarray:
        return self.to_numpy(
            torch.where(self._tensor(np.asarray(cond)), self._tensor(a), self._tensor(b))
        )
