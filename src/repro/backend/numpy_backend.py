"""NumPy array backend: the default, and the bit-identity ground truth.

Every op delegates to the *exact* NumPy call the routed kernels made
before the manager existed — same function, same arguments — so routing
through the manager is bit-invisible: golden traces, per-iteration
counter totals and every pruning branch replay unchanged
(``tests/test_golden_traces.py`` / ``tests/test_backend_conformance.py``
enforce this, and the two-tier contract in docs/array_backends.md
documents it).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np


class NumpyBackend:
    """Managed ops implemented by direct delegation to NumPy."""

    name = "numpy"
    device = "cpu"

    # -- creation / conversion -----------------------------------------

    def asarray(self, x, dtype=None) -> np.ndarray:
        return np.asarray(x, dtype=dtype)

    def to_numpy(self, x) -> np.ndarray:
        return np.asarray(x)

    def zeros(self, shape: Union[int, Tuple[int, ...]], dtype=np.float64) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    def arange(self, n: int) -> np.ndarray:
        return np.arange(n)

    # -- managed math ---------------------------------------------------

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.matmul(a, b)

    def einsum(self, subscripts: str, *operands: np.ndarray) -> np.ndarray:
        return np.einsum(subscripts, *operands)

    def argmin(self, x: np.ndarray, axis: Optional[int] = None) -> np.ndarray:
        # np.argmin documents first-index tie-breaking; the batch kernels'
        # exactness contract leans on it (docs/backends.md).
        return np.argmin(x, axis=axis)

    def partition(self, x: np.ndarray, kth: int, axis: int = -1) -> np.ndarray:
        return np.partition(x, kth, axis=axis)

    def bincount(
        self,
        idx: np.ndarray,
        weights: Optional[np.ndarray] = None,
        minlength: int = 0,
    ) -> np.ndarray:
        # Sequential element-order accumulation — the scatter-add whose
        # rounding sequence the sharded merge replays (repro.core.refinement).
        return np.bincount(idx, weights=weights, minlength=minlength)

    def sq_norms(self, X: np.ndarray) -> np.ndarray:
        return np.einsum("ij,ij->i", X, X)

    def take(self, x: np.ndarray, idx: np.ndarray, axis: int = 0) -> np.ndarray:
        return np.take(x, idx, axis=axis)

    def where(self, cond: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.where(cond, a, b)
