"""The array-backend manager: one switchable namespace for managed math.

Modules that participate in backend routing never import ``torch`` or
``cupy`` — they call ``bm.<op>(...)`` on the singleton
:data:`backend_manager` (the fealpy ``backend_manager`` idiom) and the
active backend supplies the implementation.  Every op takes and returns
**NumPy arrays**: the adapter owns the native-array round-trip at the op
boundary, which keeps the kernel code in :mod:`repro.common.distance` /
:mod:`repro.core` backend-agnostic and keeps all control flow (masking,
pruning tests, counter charges) in float64 NumPy on the host.

Correctness tiers (docs/array_backends.md):

* ``numpy`` — the default and the ground truth.  Its ops delegate to the
  *same* NumPy calls the kernels used before routing, so golden traces,
  counter totals and every pruning branch are **bit-identical**.
* accelerator backends (``torch``, ``torch-cuda``, ``cupy``) — registered
  only when importable and usable; held to the tolerance tier (labels
  identical, centroids within a per-dtype rtol, SSE gap bounded) by the
  backend-parameterized conformance suite.

The manager is deliberately process-local, like NumPy's error state: the
sharded engine's worker processes each start with the default ``numpy``
backend, which is exactly what the merge contract requires
(``array_backend="numpy"`` is the only backend sharding accepts).

Implementation notes for the static analyzer: all mutable state lives on
the singleton instance (never module globals, so the R007 parallel-safety
rule sees no ``MUTATES_GLOBAL`` effect anywhere reachable from the shard
kernels), and :meth:`BackendManager.use` returns a plain context object
instead of a ``@contextmanager`` generator (no closures to flag).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.exceptions import BackendUnavailableError, ConfigurationError

#: Names probed by :meth:`BackendManager._discover`, in registration order.
OPTIONAL_BACKENDS = ("torch", "torch-cuda", "cupy")

#: The accelerator tolerance tier (docs/array_backends.md): final labels
#: must equal the numpy backend's exactly; final centroids must match
#: within this per-dtype relative tolerance; the relative SSE gap is
#: bounded by the float64 band.  The conformance suite and the hypothesis
#: tolerance properties assert against these exact constants so code,
#: tests, and the docs tolerance table cannot drift apart.
TOLERANCE_RTOL = {"float64": 1e-9, "float32": 1e-4}

#: Ops every backend must provide (the managed-math surface; the R008
#: array-math check enforces that routed modules reach these *names* only
#: through the manager).
MANAGED_OPS = (
    "asarray",
    "to_numpy",
    "zeros",
    "arange",
    "matmul",
    "einsum",
    "argmin",
    "partition",
    "bincount",
    "sq_norms",
    "take",
    "where",
)


class _BackendContext:
    """Plain enter/exit object returned by :meth:`BackendManager.use`."""

    def __init__(self, manager: "BackendManager", name: str) -> None:
        self._manager = manager
        self._name = name
        self._previous: Optional[str] = None

    def __enter__(self):
        self._previous = self._manager._active_name
        self._manager._activate(self._name)
        return self._manager

    def __exit__(self, exc_type, exc, tb) -> None:
        self._manager._activate(self._previous)
        return None


class BackendManager:
    """Registry + active-backend switch for the managed array ops.

    Attribute access for any name in :data:`MANAGED_OPS` forwards to the
    active backend, so call sites read ``bm.argmin(...)`` regardless of
    which backend is active.  ``numpy`` is registered eagerly and is
    always available; optional adapters register themselves on first
    discovery only if their library imports and passes a usability probe.
    """

    def __init__(self) -> None:
        self._backends: Dict[str, object] = {}
        self._unavailable: Dict[str, str] = {}
        self._active_name = "numpy"
        self._discovered = False
        from repro.backend.numpy_backend import NumpyBackend

        self.register("numpy", NumpyBackend())

    # -- registry -------------------------------------------------------

    def register(self, name: str, backend: object) -> None:
        """Register ``backend`` under ``name`` (last registration wins)."""
        self._backends[name] = backend
        self._unavailable.pop(name, None)

    def mark_unavailable(self, name: str, reason: str) -> None:
        """Record why an optional backend could not register."""
        if name not in self._backends:
            self._unavailable[name] = reason

    def _discover(self) -> None:
        """Probe the optional adapters once; absence is recorded, not raised."""
        if self._discovered:
            return
        self._discovered = True
        from repro.backend import cupy_backend, torch_backend

        torch_backend.register(self)
        cupy_backend.register(self)

    def available_backends(self) -> List[str]:
        """Names of every backend usable in this process, ``numpy`` first."""
        self._discover()
        names = sorted(self._backends)
        names.remove("numpy")
        return ["numpy"] + names

    def unavailable_reason(self, name: str) -> Optional[str]:
        """Why ``name`` is not usable here (None if it is, or is unknown)."""
        self._discover()
        return self._unavailable.get(name)

    def get(self, name: str) -> object:
        """Resolve a backend by name, with a classified error otherwise.

        Unknown names raise :class:`ConfigurationError`; names that exist
        as adapters but cannot run in this process (library missing, no
        device) raise :class:`BackendUnavailableError` carrying the reason
        — the conformance suite turns that reason into a pytest skip.
        """
        self._discover()
        backend = self._backends.get(name)
        if backend is not None:
            return backend
        if name in self._unavailable or name in OPTIONAL_BACKENDS:
            reason = self._unavailable.get(name, "not importable")
            raise BackendUnavailableError(
                f"array backend {name!r} is not available: {reason}",
                backend=name,
                reason=reason,
            )
        known = ", ".join(self.available_backends())
        raise ConfigurationError(
            f"unknown array backend {name!r}; registered backends: {known}"
        )

    # -- active backend -------------------------------------------------

    def _activate(self, name: str) -> None:
        self.get(name)
        self._active_name = name

    def use(self, name: str) -> _BackendContext:
        """Context manager activating ``name`` for the enclosed block.

        Validates eagerly (so a fit fails at entry, not mid-iteration) and
        restores the previous backend on exit, even on error.
        """
        self.get(name)
        return _BackendContext(self, name)

    def active_name(self) -> str:
        """Name of the currently active backend."""
        return self._active_name

    def active(self) -> object:
        """The currently active backend object."""
        return self._backends[self._active_name]

    def __getattr__(self, op: str):
        # Only reached for attributes not found normally: forward managed
        # ops to the active backend, keep everything else an error.
        if op in MANAGED_OPS:
            return getattr(self._backends[self._active_name], op)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {op!r}"
        )


#: The process-wide singleton; import as
#: ``from repro.backend import backend_manager as bm``.
backend_manager = BackendManager()
