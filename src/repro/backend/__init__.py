"""Pluggable array backends for the managed math of the hot kernels.

Usage (the fealpy ``backend_manager`` idiom)::

    from repro.backend import backend_manager as bm

    labels = bm.argmin(distances, axis=1)          # active backend decides
    with bm.use("torch"):                          # raises if unavailable
        ...                                        # ops run through torch

``numpy`` is always registered and is the default; ``torch`` /
``torch-cuda`` / ``cupy`` register themselves only when importable and
usable, otherwise :func:`unavailable_reason` explains why and
``bm.get(name)`` raises :class:`BackendUnavailableError`.  The two-tier
correctness contract (bit-identical for numpy, tolerance-banded for
accelerators) is documented in docs/array_backends.md and enforced by
``tests/test_backend_manager.py`` plus the backend-parameterized cells of
the conformance suite.
"""

from repro.backend.manager import (
    MANAGED_OPS,
    OPTIONAL_BACKENDS,
    TOLERANCE_RTOL,
    BackendManager,
    backend_manager,
)
from repro.common.exceptions import BackendUnavailableError


def available_backends():
    """Names of every array backend usable in this process."""
    return backend_manager.available_backends()


def active_backend() -> str:
    """Name of the currently active array backend."""
    return backend_manager.active_name()


def unavailable_reason(name: str):
    """Why ``name`` cannot run here (None when it can, or is unknown)."""
    return backend_manager.unavailable_reason(name)


def register_backend(name: str, backend) -> None:
    """Register a custom backend object (see docs/array_backends.md)."""
    backend_manager.register(name, backend)


__all__ = [
    "MANAGED_OPS",
    "OPTIONAL_BACKENDS",
    "TOLERANCE_RTOL",
    "BackendManager",
    "BackendUnavailableError",
    "active_backend",
    "available_backends",
    "backend_manager",
    "register_backend",
    "unavailable_reason",
]
