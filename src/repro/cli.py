"""Command-line interface: ``python -m repro <command>``.

Mirrors the original artifact's terminal workflow (paper Section A.4):
run clustering tasks from the terminal, watch the per-method results, and
write machine-readable logs for later analysis.

Commands
--------
``datasets``
    List the surrogate dataset registry (Table 2).
``cluster``
    Run one algorithm on one dataset and print the instrumented summary.
``compare``
    Run several algorithms under a shared initialization and print the
    speedup/pruning table (the Figure 8 view).
``tune``
    Generate ground truth over the registry, train UTune, report MRR
    against the BDT baseline, and print per-task predictions.
``bench``
    Run a fault-tolerant benchmark campaign over datasets × k values ×
    algorithms with per-run timeouts, transient-failure retries,
    checkpoint/resume against a JSONL log, and an optional deterministic
    chaos mode (``--inject-faults``); failed cells are recorded, not
    fatal (see docs/robustness.md).
``lint``
    Run the repo-contract static analyzer (R001–R006) over source trees
    and fail on any non-baselined finding (see docs/static_analysis.md).
``registry``
    Manage the on-disk model registry: ``save`` (fit + persist), ``list``,
    ``show``, and ``verify`` (re-digest payloads; a flipped byte exits
    non-zero with the classified error).  See docs/serving.md.
``serve``
    Serve batched nearest-centroid assignment from a saved model through
    the micro-batching front end (docs/serving.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.core import ALGORITHMS, BACKENDS, VECTORIZED_ALGORITHMS, make_algorithm
from repro.datasets import dataset_names, get_dataset_spec, load_dataset
from repro.datasets.loaders import append_jsonl, load_points_csv
from repro.eval import compare_algorithms, format_table, speedup_table
from repro.eval.tables import format_speedup_rows


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", default="reference", choices=list(BACKENDS),
                        help="execution backend; 'vectorized' is NumPy-batched "
                             "and counter/trajectory-identical to 'reference' "
                             "(see docs/backends.md)")


def _add_array_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--array-backend", default="numpy",
                        help="array backend for the managed kernel math: "
                             "'numpy' (default, bit-identical) or a "
                             "registered accelerator backend such as "
                             "'torch'/'torch-cuda'/'cupy' (tolerance tier; "
                             "requires --backend vectorized, see "
                             "docs/array_backends.md)")


def _add_shard_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--shards", type=int, default=1,
                        help="split the assignment phase across this many "
                             "supervised worker processes; requires "
                             "--backend vectorized and results stay "
                             "bit-identical (see docs/sharding.md)")
    parser.add_argument("--shard-policy", default="strict",
                        choices=["strict", "recompute", "degrade"],
                        help="what to do when a shard fails terminally: "
                             "raise, re-run it inline (bit-identical), or "
                             "finish from survivors with a DegradedIteration "
                             "record")
    parser.add_argument("--shard-runner", default="auto",
                        choices=["auto", "process", "inline"],
                        help="how shard commands execute: 'process' uses the "
                             "persistent worker pool over the shared-memory "
                             "data plane, 'inline' runs them sequentially "
                             "in-process, 'auto' (default) picks 'process' "
                             "unless forking is unavailable "
                             "(see docs/sharding.md)")


def _check_array_backend_argument(
    args: argparse.Namespace, names
) -> Optional[str]:
    """Validate --array-backend against availability, backend and shards."""
    if args.array_backend == "numpy":
        return None
    from repro.backend import backend_manager
    from repro.common.exceptions import ConfigurationError
    from repro.core import ACCELERATED_ALGORITHMS

    try:
        backend_manager.get(args.array_backend)
    except ConfigurationError as exc:  # includes BackendUnavailableError
        return str(exc)
    if args.backend != "vectorized":
        return "--array-backend requires --backend vectorized"
    if getattr(args, "shards", 1) > 1:
        return ("--shards requires --array-backend numpy (shard merge "
                "bit-identity is the numpy backend's contract)")
    unsupported = [n for n in names if n not in ACCELERATED_ALGORITHMS]
    if unsupported:
        return (f"no accelerator array-backend support for: {unsupported}; "
                f"supported: {list(ACCELERATED_ALGORITHMS)}")
    return None


def _check_shard_arguments(args: argparse.Namespace, names) -> Optional[str]:
    """Validate --shards/--shard-policy against backend + algorithms."""
    if args.shards <= 1:
        return None
    if args.backend != "vectorized":
        return ("--shards requires --backend vectorized (the shard kernels "
                "are the vectorized kernels)")
    from repro.exec.sharded import SHARDED_ALGORITHMS

    unsupported = [name for name in names if name not in SHARDED_ALGORITHMS]
    if unsupported:
        return (f"no sharded implementation for: {unsupported}; sharded "
                f"execution supports: {sorted(SHARDED_ALGORITHMS)}")
    return None


def _add_data_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="BigCross",
                        help="registry dataset name, or a CSV path with --csv")
    parser.add_argument("--csv", action="store_true",
                        help="treat --dataset as a CSV file of points")
    parser.add_argument("--n", type=int, default=None,
                        help="surrogate point count (registry datasets only)")
    parser.add_argument("--seed", type=int, default=0)


def _load(args: argparse.Namespace):
    if args.csv:
        return load_points_csv(args.dataset)
    return load_dataset(args.dataset, n=args.n, seed=args.seed)


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in dataset_names():
        spec = get_dataset_spec(name)
        rows.append([name, f"{spec.n_paper:,}", spec.d, spec.kind,
                     spec.default_n(), spec.description])
    print(format_table(
        ["name", "n(paper)", "d", "kind", "n(default)", "description"], rows,
        title="Surrogate dataset registry (paper Table 2)",
    ))
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    error = (_check_shard_arguments(args, [args.algorithm])
             or _check_array_backend_argument(args, [args.algorithm]))
    if error:
        print(error, file=sys.stderr)
        return 2
    X = _load(args)
    algorithm = make_algorithm(
        args.algorithm, backend=args.backend, array_backend=args.array_backend,
        shards=args.shards, shard_policy=args.shard_policy if args.shards > 1 else None,
        shard_runner=args.shard_runner,
    )
    result = algorithm.fit(X, args.k, max_iter=args.max_iter, seed=args.seed)
    summary = result.summary()
    if args.save_model:
        from repro.serve import ModelRegistry

        key = ModelRegistry(args.save_model).save_model(
            result, dataset=args.dataset, backend=args.backend,
            array_backend=args.array_backend, shards=args.shards,
            seed=args.seed,
        )
        summary["model_key"] = key
        summary["model_registry"] = args.save_model
        print(f"saved model {key} to {args.save_model}", file=sys.stderr)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        rows = [[key, value] for key, value in summary.items()]
        print(format_table(["metric", "value"], rows,
                           title=f"{args.algorithm} on {args.dataset}"))
    if args.log:
        append_jsonl(args.log, [summary])
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    X = _load(args)
    names = [name.strip() for name in args.algorithms.split(",") if name.strip()]
    unknown = [name for name in names if name not in ALGORITHMS]
    if unknown:
        print(f"unknown algorithms: {unknown}; known: {sorted(ALGORITHMS)}",
              file=sys.stderr)
        return 2
    if args.backend != "reference":
        unsupported = [name for name in names if name not in VECTORIZED_ALGORITHMS]
        if unsupported:
            print(
                f"no {args.backend!r} implementation for: {unsupported}; "
                f"vectorized backends exist for: {sorted(VECTORIZED_ALGORITHMS)}",
                file=sys.stderr,
            )
            return 2
    if "lloyd" not in names:
        # speedup_table needs the Lloyd baseline; it runs on the selected
        # backend like everything else, so vectorized comparisons measure
        # speedups against vectorized Lloyd, not the scalar reference.
        names.insert(0, "lloyd")
    error = (_check_shard_arguments(args, names)
             or _check_array_backend_argument(args, names))
    if error:
        print(error, file=sys.stderr)
        return 2
    records = compare_algorithms(
        names, X, args.k,
        repeats=args.repeats, max_iter=args.max_iter,
        seed=args.seed, backend=args.backend,
        array_backend=args.array_backend,
        shards=args.shards,
        shard_policy=args.shard_policy if args.shards > 1 else None,
        shard_runner=args.shard_runner,
    )
    table = speedup_table(records)
    rows = format_speedup_rows(table, order=names)
    print(format_table(
        ["method", "time_x", "assign_x", "refine_x", "work_x", "pruned"],
        rows,
        title=(
            f"{args.dataset}: n={len(X)}, d={X.shape[1]}, k={args.k}, "
            f"backend={args.backend}"
        ),
    ))
    if args.log:
        append_jsonl(args.log, [record.as_dict() for record in records])
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.tuning import UTune, evaluate_bdt, generate_ground_truth

    names = (
        [name.strip() for name in args.datasets.split(",")]
        if args.datasets
        else dataset_names()[:6]
    )
    ks = [int(k) for k in args.ks.split(",")]
    tasks = []
    for name in names:
        X = load_dataset(name, n=args.n, seed=args.seed)
        for k in ks:
            tasks.append((name, X, k))
    print(f"labeling {len(tasks)} tasks (selective={not args.full}) ...")
    records = generate_ground_truth(
        tasks, selective=not args.full, max_iter=args.max_iter,
        metric=args.metric,
    )
    tuner = UTune(model=args.model).fit(records)
    learned = tuner.evaluate(records)
    rules = evaluate_bdt(records)
    if args.save_selector:
        from repro.serve import ModelRegistry

        key = ModelRegistry(args.save_selector).save_selector(
            tuner,
            meta={"records": len(records), "metric": args.metric,
                  "datasets": ",".join(names)},
        )
        print(f"saved selector {key} to {args.save_selector}", file=sys.stderr)
    print(format_table(
        ["selector", "Bound@MRR", "Index@MRR"],
        [
            [args.model, round(learned["bound_mrr"], 3), round(learned["index_mrr"], 3)],
            ["BDT", round(rules["bound_mrr"], 3), round(rules["index_mrr"], 3)],
        ],
        title=f"UTune training report ({len(records)} records)",
    ))
    rows = [
        [record.dataset, record.k, record.best_bound, record.best_index]
        for record in records
    ]
    print(format_table(["dataset", "k", "best bound", "best index"], rows,
                       title="ground-truth winners"))
    if args.log:
        append_jsonl(args.log, [record.as_dict() for record in records])
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.common.exceptions import ReproError
    from repro.eval.faults import FaultPlan, corrupt_jsonl_tail
    from repro.eval.logdb import EvaluationLog
    from repro.eval.parallel import parallel_compare
    from repro.eval.runtime import is_failed_record

    names = [name.strip() for name in args.algorithms.split(",") if name.strip()]
    unknown = [name for name in names if name not in ALGORITHMS]
    if unknown:
        print(f"unknown algorithms: {unknown}; known: {sorted(ALGORITHMS)}",
              file=sys.stderr)
        return 2
    if args.resume and not args.log:
        print("--resume requires --log (the checkpoint to resume from)",
              file=sys.stderr)
        return 2
    error = (_check_shard_arguments(args, names)
             or _check_array_backend_argument(args, names))
    if error:
        print(error, file=sys.stderr)
        return 2
    try:
        plan = FaultPlan.parse(args.inject_faults) if args.inject_faults else None
        datasets = [d.strip() for d in args.datasets.split(",") if d.strip()]
        ks = [int(k) for k in args.ks.split(",")]
    except (ReproError, ValueError) as exc:
        print(f"bad arguments: {exc}", file=sys.stderr)
        return 2
    log = EvaluationLog(args.log) if args.log else EvaluationLog()
    rows = []
    ok_count = failed_count = resumed_count = 0
    for dataset in datasets:
        X = load_dataset(dataset, n=args.n, seed=args.seed)
        for k in ks:
            records = parallel_compare(
                names, X, k,
                repeats=args.repeats, max_iter=args.max_iter, seed=args.seed,
                max_workers=args.max_workers, timeout=args.timeout,
                retries=args.retries, dataset=dataset, log=log,
                resume=args.resume, fault_plan=plan, backend=args.backend,
                array_backend=args.array_backend,
                shards=args.shards,
                shard_policy=args.shard_policy if args.shards > 1 else None,
                shard_runner=args.shard_runner,
                save_model=args.save_model,
            )
            for record in records:
                if is_failed_record(record):
                    failed_count += 1
                    rows.append([
                        dataset, k, record.key.algorithm, "FAILED",
                        f"{record.error_type} x{record.attempts}",
                    ])
                else:
                    resumed = bool(record.extras.get("resumed"))
                    ok_count += 1
                    resumed_count += resumed
                    rows.append([
                        dataset, k, record.algorithm,
                        "resumed" if resumed else "ok",
                        round(record.total_time, 4),
                    ])
    if plan is not None and plan.wants_log_corruption() and log.path is not None:
        # Log-level chaos: truncate the tail like a crash mid-append would,
        # to exercise the quarantine/recovery path on the next load.
        corrupt_jsonl_tail(log.path)
        print(f"injected log corruption: truncated tail of {log.path}",
              file=sys.stderr)
    print(format_table(
        ["dataset", "k", "algorithm", "status", "time/error"], rows,
        title=(f"bench: {ok_count} ok ({resumed_count} resumed), "
               f"{failed_count} failed"),
    ))
    if failed_count and args.log:
        print(f"{failed_count} cell(s) failed; rerun with --resume --log "
              f"{args.log} to retry only those", file=sys.stderr)
    return 1 if (args.strict and failed_count) else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        analyze_paths,
        format_findings_json,
        format_findings_sarif,
        format_findings_text,
        get_rules,
        load_baseline,
        migrate_baseline,
        write_baseline,
    )
    from repro.analysis.baseline import DEFAULT_BASELINE_NAME

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE_NAME)
    if args.migrate_baseline:
        if migrate_baseline(baseline_path):
            print(f"migrated {baseline_path} to the hash-keyed v2 format")
        else:
            print(f"{baseline_path} already current (or absent); nothing to do")
        return 0
    paths = [Path(p) for p in (args.paths or ["src"])]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"no such path(s): {missing}", file=sys.stderr)
        return 2
    rules = None
    if args.rules:
        try:
            rules = get_rules([r.strip() for r in args.rules.split(",") if r.strip()])
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    if args.graph:
        from repro.analysis import load_project_from_paths
        from repro.analysis.graph import to_dot

        project, graph, direct, transitive = load_project_from_paths(
            paths, root=Path.cwd()
        )
        print(to_dot(project, graph, transitive))
        return 0
    baseline = None if args.no_baseline else load_baseline(baseline_path)
    cache_dir = Path(args.cache_dir) if args.cache_dir else None
    report = analyze_paths(
        paths, root=Path.cwd(), rules=rules, baseline=baseline, cache_dir=cache_dir
    )
    if args.write_baseline:
        write_baseline(baseline_path, report.findings)
        print(f"wrote {len(report.findings)} finding(s) to {baseline_path}")
        return 0
    if args.format == "sarif":
        print(format_findings_sarif(report))
    elif args.format == "json" or args.json:
        print(format_findings_json(report))
    else:
        print(format_findings_text(report))
    ok = report.strict_ok() if args.strict_suppressions else report.ok
    return 0 if ok else 1


def _cmd_registry(args: argparse.Namespace) -> int:
    from repro.common.exceptions import RegistryError
    from repro.serve import ModelRegistry

    registry = ModelRegistry(args.root)
    if args.registry_command == "save":
        error = (_check_shard_arguments(args, [args.algorithm])
                 or _check_array_backend_argument(args, [args.algorithm]))
        if error:
            print(error, file=sys.stderr)
            return 2
        X = _load(args)
        algorithm = make_algorithm(
            args.algorithm, backend=args.backend,
            array_backend=args.array_backend, shards=args.shards,
            shard_policy=args.shard_policy if args.shards > 1 else None,
            shard_runner=args.shard_runner,
        )
        result = algorithm.fit(X, args.k, max_iter=args.max_iter, seed=args.seed)
        key = registry.save_model(
            result, dataset=args.dataset, backend=args.backend,
            array_backend=args.array_backend, shards=args.shards,
            seed=args.seed,
        )
        print(key)
        return 0
    if args.registry_command == "list":
        rows = []
        for entry in registry.list_entries(
                kind=args.kind if args.kind != "all" else None):
            meta = entry.meta
            rows.append([
                entry.key, entry.kind,
                meta.get("algorithm") or meta.get("class") or "?",
                meta.get("k", ""), meta.get("dataset", ""),
                round(meta["sse"], 4) if isinstance(meta.get("sse"), float) else "",
            ])
        print(format_table(
            ["key", "kind", "algorithm", "k", "dataset", "sse"], rows,
            title=f"registry {args.root}: {len(rows)} entr(ies)",
        ))
        return 0
    if args.registry_command == "show":
        try:
            entry = registry.load(args.key)
        except RegistryError as exc:
            print(f"{type(exc).__name__}: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(entry.record, indent=2, sort_keys=True))
        return 0
    # verify: re-digest payloads; a tampered artifact exits non-zero with
    # the classified error class on stderr (the serving-smoke contract).
    try:
        checked = registry.verify(args.key)
    except RegistryError as exc:
        print(f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    scope = f"entry {args.key}" if args.key else "all entries"
    print(f"verified {scope}: {checked} payload(s) match their digests")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from repro.common.exceptions import RegistryError
    from repro.serve import MicroBatcher, ModelRegistry, Predictor

    registry = ModelRegistry(args.root)
    try:
        predictor = Predictor(registry, args.key)
    except RegistryError as exc:
        print(f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    if args.points:
        X = load_points_csv(args.points)
    else:
        X = _load(args)
    if X.shape[1] != predictor.d:
        print(f"query points have d={X.shape[1]}, model expects "
              f"d={predictor.d}", file=sys.stderr)
        return 2
    begin = time.perf_counter()
    failed = 0
    outputs = []
    with MicroBatcher(predictor, max_batch=args.batch,
                      max_wait=args.max_wait) as batcher:
        tickets = [
            batcher.submit(X[start:start + args.request_size],
                           deadline=args.deadline)
            for start in range(0, X.shape[0], args.request_size)
        ]
        for ticket in tickets:
            outcome = ticket.result(timeout=60.0)
            if isinstance(outcome, np.ndarray):
                outputs.append(outcome)
            else:
                failed += 1
                print(f"request {outcome.request_id} failed: "
                      f"{outcome.error_type}: {outcome.message}",
                      file=sys.stderr)
    elapsed = time.perf_counter() - begin
    labels = np.concatenate(outputs) if outputs else np.empty(0, dtype=np.int64)
    if args.output:
        with open(args.output, "w") as handle:
            handle.writelines(f"{int(label)}\n" for label in labels)
    summary = {
        "model_key": predictor.entry.key,
        "k": predictor.k,
        "d": predictor.d,
        "points": int(X.shape[0]),
        "served": int(labels.shape[0]),
        "requests": len(tickets),
        "failed_requests": failed,
        "batches": batcher.stats["batches"],
        "elapsed_s": round(elapsed, 5),
        "points_per_s": round(labels.shape[0] / elapsed, 1) if elapsed else 0.0,
    }
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(format_table(
            ["metric", "value"], [[k, v] for k, v in summary.items()],
            title=f"serve: model {predictor.entry.key} on {X.shape[0]} points",
        ))
    return 1 if (args.strict and failed) else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fast k-means evaluation framework (UniK + UTune reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the dataset registry")

    cluster = sub.add_parser("cluster", help="run one algorithm on one dataset")
    _add_data_arguments(cluster)
    cluster.add_argument("--algorithm", default="unik", choices=sorted(ALGORITHMS))
    _add_backend_argument(cluster)
    _add_array_backend_argument(cluster)
    _add_shard_arguments(cluster)
    cluster.add_argument("--k", type=int, default=10)
    cluster.add_argument("--max-iter", type=int, default=10)
    cluster.add_argument("--json", action="store_true", help="JSON output")
    cluster.add_argument("--log", default=None, help="append summary to a JSONL log")
    cluster.add_argument("--save-model", default=None, metavar="DIR",
                         help="persist the fitted model to this registry "
                              "directory (see docs/serving.md)")

    compare = sub.add_parser("compare", help="compare algorithms on one dataset")
    _add_data_arguments(compare)
    compare.add_argument("--algorithms", default="lloyd,yinyang,index,unik")
    _add_backend_argument(compare)
    _add_array_backend_argument(compare)
    _add_shard_arguments(compare)
    compare.add_argument("--k", type=int, default=10)
    compare.add_argument("--max-iter", type=int, default=10)
    compare.add_argument("--repeats", type=int, default=2)
    compare.add_argument("--log", default=None)

    tune = sub.add_parser("tune", help="train and evaluate the UTune selector")
    tune.add_argument("--datasets", default=None, help="comma-separated registry names")
    tune.add_argument("--ks", default="5,15")
    tune.add_argument("--n", type=int, default=600)
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument("--max-iter", type=int, default=5)
    tune.add_argument("--model", default="dt",
                      choices=["dt", "rf", "knn", "svm", "rc", "ranker"])
    tune.add_argument("--metric", default="total_time",
                      choices=["total_time", "modeled_cost"])
    tune.add_argument("--full", action="store_true",
                      help="full running instead of selective (Algorithm 2)")
    tune.add_argument("--log", default=None)
    tune.add_argument("--save-selector", default=None, metavar="DIR",
                      help="persist the trained UTune selector to this "
                           "registry directory (see docs/serving.md)")

    bench = sub.add_parser(
        "bench",
        help="fault-tolerant benchmark campaign (timeouts, retries, resume, chaos)",
    )
    bench.add_argument("--datasets", default="Skin",
                       help="comma-separated registry dataset names")
    bench.add_argument("--algorithms", default="lloyd,hamerly,yinyang")
    _add_backend_argument(bench)
    _add_array_backend_argument(bench)
    _add_shard_arguments(bench)
    bench.add_argument("--ks", default="4", help="comma-separated k values")
    bench.add_argument("--n", type=int, default=300,
                       help="surrogate point count per dataset")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--repeats", type=int, default=1)
    bench.add_argument("--max-iter", type=int, default=5)
    bench.add_argument("--timeout", type=float, default=None,
                       help="wall-clock seconds per run; hung workers are killed")
    bench.add_argument("--retries", type=int, default=0,
                       help="extra attempts for transient failures")
    bench.add_argument("--max-workers", type=int, default=None)
    bench.add_argument("--log", default=None,
                       help="JSONL evaluation log (checkpoint for --resume)")
    bench.add_argument("--resume", action="store_true",
                       help="skip cells already completed in --log")
    bench.add_argument("--inject-faults", default=None, metavar="PLAN",
                       help="deterministic chaos, e.g. "
                            "'transient:hamerly:1,hang:lloyd,kill:elkan'")
    bench.add_argument("--strict", action="store_true",
                       help="exit 1 when any cell failed (default: exit 0, "
                            "failures recorded)")
    bench.add_argument("--save-model", default=None, metavar="DIR",
                       help="persist each cell's first-repeat fitted model "
                            "to this registry directory")

    registry = sub.add_parser(
        "registry",
        help="manage the on-disk model registry (see docs/serving.md)",
    )
    registry_sub = registry.add_subparsers(dest="registry_command",
                                           required=True)
    reg_save = registry_sub.add_parser(
        "save", help="fit one algorithm and persist the model")
    reg_save.add_argument("root", help="registry directory")
    _add_data_arguments(reg_save)
    reg_save.add_argument("--algorithm", default="lloyd",
                          choices=sorted(ALGORITHMS))
    _add_backend_argument(reg_save)
    _add_array_backend_argument(reg_save)
    _add_shard_arguments(reg_save)
    reg_save.add_argument("--k", type=int, default=10)
    reg_save.add_argument("--max-iter", type=int, default=50)
    reg_list = registry_sub.add_parser("list", help="list stored entries")
    reg_list.add_argument("root", help="registry directory")
    reg_list.add_argument("--kind", default="all",
                          choices=["all", "model", "selector"])
    reg_show = registry_sub.add_parser(
        "show", help="print one entry's manifest record as JSON")
    reg_show.add_argument("root", help="registry directory")
    reg_show.add_argument("key", help="entry key")
    reg_verify = registry_sub.add_parser(
        "verify",
        help="re-digest stored payloads; tampering exits non-zero")
    reg_verify.add_argument("root", help="registry directory")
    reg_verify.add_argument("key", nargs="?", default=None,
                            help="verify one entry (default: all)")

    serve = sub.add_parser(
        "serve",
        help="serve batched assignment from a saved model (docs/serving.md)",
    )
    serve.add_argument("root", help="registry directory")
    serve.add_argument("--key", default=None,
                       help="model entry key (default: latest model)")
    _add_data_arguments(serve)
    serve.add_argument("--points", default=None, metavar="CSV",
                       help="CSV of query points (default: the --dataset "
                            "surrogate)")
    serve.add_argument("--request-size", type=int, default=64,
                       help="points per simulated client request")
    serve.add_argument("--batch", type=int, default=256,
                       help="max requests coalesced into one kernel call")
    serve.add_argument("--max-wait", type=float, default=0.002,
                       help="seconds the batcher lingers for batchmates")
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-request deadline in seconds (expired "
                            "requests degrade to FailedRequest)")
    serve.add_argument("--output", default=None, metavar="FILE",
                       help="write served labels here, one per line")
    serve.add_argument("--json", action="store_true", help="JSON summary")
    serve.add_argument("--strict", action="store_true",
                       help="exit 1 when any request failed")

    lint = sub.add_parser(
        "lint", help="run the repo-contract static analyzer (R001–R011)"
    )
    lint.add_argument("paths", nargs="*", default=None,
                      help="files or directories to analyze (default: src)")
    lint.add_argument("--json", action="store_true",
                      help="JSON output (alias for --format json)")
    lint.add_argument("--format", default="text",
                      choices=["text", "json", "sarif"],
                      help="report format (sarif for GitHub code scanning)")
    lint.add_argument("--rules", default=None,
                      help="comma-separated rule ids to run (default: all)")
    lint.add_argument("--baseline", default=None,
                      help="baseline file (default: analysis_baseline.json)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore the baseline and report every finding")
    lint.add_argument("--write-baseline", action="store_true",
                      help="write current findings as the new baseline and exit")
    lint.add_argument("--migrate-baseline", action="store_true",
                      help="rewrite a v1 baseline in the hash-keyed v2 format")
    lint.add_argument("--strict-suppressions", action="store_true",
                      help="also exit non-zero on unused suppression comments")
    lint.add_argument("--graph", action="store_true",
                      help="dump the call graph with inferred effects as DOT")
    lint.add_argument("--cache-dir", default=None,
                      help="cache whole-project analysis results here")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "cluster": _cmd_cluster,
        "compare": _cmd_compare,
        "tune": _cmd_tune,
        "bench": _cmd_bench,
        "lint": _cmd_lint,
        "registry": _cmd_registry,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
