"""Shared low-level utilities: validation, RNG handling, distance kernels.

These helpers are deliberately free of any clustering logic so that every
subsystem (indexes, sequential algorithms, the UniK pipeline, the tuning
stack) builds on one consistent foundation.
"""

from repro.common.exceptions import (
    ConfigurationError,
    DatasetError,
    NotFittedError,
    ReproError,
    RunTimeoutError,
    TransientError,
    ValidationError,
    WorkerCrashError,
)
from repro.common.rng import ensure_rng
from repro.common.validation import (
    check_data_matrix,
    check_k,
    check_positive,
    check_probability,
)

__all__ = [
    "ReproError",
    "ValidationError",
    "ConfigurationError",
    "DatasetError",
    "NotFittedError",
    "TransientError",
    "RunTimeoutError",
    "WorkerCrashError",
    "ensure_rng",
    "check_data_matrix",
    "check_k",
    "check_positive",
    "check_probability",
]
