"""Instrumented Euclidean distance kernels.

Two layers are provided:

* scalar helpers (:func:`euclidean`, :func:`sq_euclidean`) used by the
  pointwise pruning loops of the sequential algorithms, each charging one
  distance computation to the supplied :class:`OpCounters`;
* vectorized batch kernels (:func:`pairwise_sq_distances`,
  :func:`distances_to_centroids`) used by Lloyd's algorithm and by bulk
  phases, charging the number of row-pairs evaluated.

Both layers count identically: a "distance computation" is one full
``d``-dimensional evaluation, regardless of how the arithmetic is batched.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.instrumentation.counters import OpCounters


def sq_euclidean(a: np.ndarray, b: np.ndarray, counters: Optional[OpCounters] = None) -> float:
    """Squared Euclidean distance between two vectors (one counted distance)."""
    if counters is not None:
        counters.distance_computations += 1
    diff = a - b
    return float(diff @ diff)


def euclidean(a: np.ndarray, b: np.ndarray, counters: Optional[OpCounters] = None) -> float:
    """Euclidean distance between two vectors (one counted distance)."""
    return math.sqrt(sq_euclidean(a, b, counters))


def pairwise_sq_distances(
    A: np.ndarray, B: np.ndarray, counters: Optional[OpCounters] = None
) -> np.ndarray:
    """All-pairs squared distances between rows of ``A`` and rows of ``B``.

    Uses the expansion ``|a-b|^2 = |a|^2 + |b|^2 - 2 a.b`` and clamps tiny
    negative values produced by floating-point cancellation.
    """
    A = np.atleast_2d(A)
    B = np.atleast_2d(B)
    if counters is not None:
        counters.distance_computations += A.shape[0] * B.shape[0]
    aa = np.einsum("ij,ij->i", A, A)
    bb = np.einsum("ij,ij->i", B, B)
    sq = aa[:, None] + bb[None, :] - 2.0 * (A @ B.T)
    np.maximum(sq, 0.0, out=sq)
    return sq


def pairwise_distances(
    A: np.ndarray, B: np.ndarray, counters: Optional[OpCounters] = None
) -> np.ndarray:
    """All-pairs Euclidean distances between rows of ``A`` and rows of ``B``."""
    return np.sqrt(pairwise_sq_distances(A, B, counters))


def one_to_many_distances(
    x: np.ndarray, Y: np.ndarray, counters: Optional[OpCounters] = None
) -> np.ndarray:
    """Distances from one vector to every row of ``Y`` (counts ``len(Y)``).

    Direct differencing — bit-identical to the scalar helpers — so candidate
    loops, leaf scans and pivot-gap computations that switch to this kernel
    keep the exact tie-breaking of the code they replace.
    """
    if counters is not None:
        counters.distance_computations += Y.shape[0]
    diff = Y - x
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def distances_to_centroids(
    x: np.ndarray, centroids: np.ndarray, counters: Optional[OpCounters] = None
) -> np.ndarray:
    """Distances from one point to every centroid (counts ``k`` distances)."""
    return one_to_many_distances(x, centroids, counters)


def centroid_pairwise_distances(
    centroids: np.ndarray, counters: Optional[OpCounters] = None
) -> np.ndarray:
    """Symmetric centroid-to-centroid distance matrix.

    Charges ``k(k-1)/2`` distance computations — the cost the paper assigns
    to Elkan's inter-bound (Section 4.1).
    """
    k = centroids.shape[0]
    if counters is not None:
        counters.distance_computations += k * (k - 1) // 2
    aa = np.einsum("ij,ij->i", centroids, centroids)
    sq = aa[:, None] + aa[None, :] - 2.0 * (centroids @ centroids.T)
    np.maximum(sq, 0.0, out=sq)
    np.fill_diagonal(sq, 0.0)
    return np.sqrt(sq)


def chunked_sq_distances(
    A: np.ndarray,
    B: np.ndarray,
    counters: Optional[OpCounters] = None,
    *,
    chunk: int = 512,
) -> np.ndarray:
    """All-pairs squared distances via direct differencing, chunked.

    Slower than :func:`pairwise_sq_distances` but numerically identical to
    the per-point helpers (no cancellation), which keeps tie-breaking
    consistent between vectorized full scans and pointwise pruning loops.
    """
    A = np.atleast_2d(A)
    B = np.atleast_2d(B)
    if counters is not None:
        counters.distance_computations += A.shape[0] * B.shape[0]
    out = np.empty((A.shape[0], B.shape[0]))
    for start in range(0, A.shape[0], chunk):
        stop = min(start + chunk, A.shape[0])
        diff = A[start:stop, None, :] - B[None, :, :]
        out[start:stop] = np.einsum("ijk,ijk->ij", diff, diff)
    return out


def norms(X: np.ndarray) -> np.ndarray:
    """Row-wise L2 norms (used by the norm-based bounds of Section 4.3)."""
    return np.sqrt(np.einsum("ij,ij->i", np.atleast_2d(X), np.atleast_2d(X)))
