"""Instrumented Euclidean distance kernels.

Three layers are provided:

* scalar helpers (:func:`euclidean`, :func:`sq_euclidean`) used by the
  pointwise pruning loops of the sequential algorithms, each charging one
  distance computation to the supplied :class:`OpCounters`;
* row-wise batch kernels (:func:`one_to_many_distances`,
  :func:`paired_distances`, :func:`block_distances`) that evaluate many
  scalar distances in one NumPy call while staying **bit-identical** to the
  scalar helpers (see below) — these back the vectorized execution backend
  of :mod:`repro.core.vectorized`;
* bulk kernels (:func:`pairwise_sq_distances`, :func:`chunked_sq_distances`,
  :func:`distances_to_centroids`) used by Lloyd's algorithm and bulk
  phases, charging the number of row-pairs evaluated.

All layers count identically: a "distance computation" is one full
``d``-dimensional evaluation, regardless of how the arithmetic is batched.
That is the counter-semantics contract of ``docs/backends.md``: counters
measure the paper's cost model, never the number of BLAS calls.

Bit-identity
------------
The scalar helpers reduce ``diff @ diff`` with NumPy's 1-D dot.  The
row-wise batch kernels reduce each row through a batched matmul of shape
``(m, 1, d) @ (m, d, 1)``, which dispatches to the same per-row dot kernel
and therefore produces the *same 64-bit float* as the scalar path for every
row.  This is what lets the vectorized backend reproduce the reference
backend's labels, tie-breaking, and convergence trajectory exactly —
``tests/test_backend_conformance.py`` and the hypothesis parity properties
enforce it.  The expansion-based bulk kernels
(:func:`pairwise_sq_distances`, :func:`centroid_pairwise_distances`) trade
that identity for speed and are only used where both backends share the
same call site.

Array backends
--------------
The managed reductions of the bulk kernels — the expansion GEMM, the
row-wise dot matmul, the chunked einsum — go through the array-backend
manager (:mod:`repro.backend`): ``bm.<op>`` delegates to the active
backend, NumPy in / NumPy out.  Under the default ``numpy`` backend every
``bm`` call is the identical ``np`` call this module made before routing,
so the bit-identity contract above is untouched; accelerator backends
(Torch/CuPy) replace only these reductions and are held to the tolerance
tier of docs/array_backends.md.  Control flow, clamping, differencing and
the scalar helpers stay host-side NumPy, and
:func:`centroid_pairwise_distances` is deliberately *not* routed: the
``(k, k)`` centroid matrix is tiny, its buffered ``out=`` path needs
NumPy semantics, and keeping bound thresholds in host float64 means
pruning decisions never depend on the accelerator.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.backend import backend_manager as bm
from repro.instrumentation.counters import OpCounters


def sq_euclidean(a: np.ndarray, b: np.ndarray, counters: Optional[OpCounters] = None) -> float:
    """Squared Euclidean distance between two vectors (one counted distance)."""
    if counters is not None:
        counters.distance_computations += 1
    diff = a - b
    return float(diff @ diff)


def euclidean(a: np.ndarray, b: np.ndarray, counters: Optional[OpCounters] = None) -> float:
    """Euclidean distance between two vectors (one counted distance)."""
    return math.sqrt(sq_euclidean(a, b, counters))


def sq_norms(X: np.ndarray) -> np.ndarray:
    """Row-wise squared L2 norms (the ``|a|^2`` terms of the expansion trick).

    Factored out so callers that keep a matrix fixed across many expansion
    calls (the vectorized Lloyd assignment, k-means++ D² updates) can
    compute the norms once and pass them back via the ``a_sq``/``b_sq``
    hooks of :func:`pairwise_sq_distances`.  Uncounted: norms are reusable
    precomputation, not a distance evaluation.
    """
    X = np.atleast_2d(X)
    return bm.sq_norms(X)


def pairwise_sq_distances(
    A: np.ndarray,
    B: np.ndarray,
    counters: Optional[OpCounters] = None,
    *,
    a_sq: Optional[np.ndarray] = None,
    b_sq: Optional[np.ndarray] = None,
) -> np.ndarray:
    """All-pairs squared distances between rows of ``A`` and rows of ``B``.

    Uses the expansion ``|a-b|^2 = |a|^2 + |b|^2 - 2 a.b`` and clamps tiny
    negative values produced by floating-point cancellation.  ``a_sq`` /
    ``b_sq`` optionally supply precomputed row norms (:func:`sq_norms`);
    passing them is bit-invisible because the same einsum would have
    produced the same floats, and saves one full pass over the larger
    operand per call — the dominant cost when ``B`` is a handful of
    centroids and ``A`` is the whole dataset.
    """
    A = np.atleast_2d(A)
    B = np.atleast_2d(B)
    if counters is not None:
        counters.distance_computations += A.shape[0] * B.shape[0]
    aa = sq_norms(A) if a_sq is None else a_sq
    bb = sq_norms(B) if b_sq is None else b_sq
    # The GEMM is the managed (offloadable) part; the rank-one expansion
    # assembly and the cancellation clamp stay host-side.
    sq = aa[:, None] + bb[None, :] - 2.0 * bm.matmul(A, B.T)
    np.maximum(sq, 0.0, out=sq)
    return sq


def pairwise_distances(
    A: np.ndarray, B: np.ndarray, counters: Optional[OpCounters] = None
) -> np.ndarray:
    """All-pairs Euclidean distances between rows of ``A`` and rows of ``B``."""
    return np.sqrt(pairwise_sq_distances(A, B, counters))


def _rowwise_sq_norms(diff: np.ndarray) -> np.ndarray:
    """Per-row ``diff[i] @ diff[i]``, bit-identical to the scalar helpers.

    A batched matmul of shape ``(m, 1, d) @ (m, d, 1)`` runs the same dot
    reduction per row as ``sq_euclidean``'s 1-D ``diff @ diff``, so every
    output element equals the scalar result exactly (not just to rounding).
    A plain ``einsum("ij,ij->i", ...)`` does *not* have this property — its
    pairwise summation order differs from the dot kernel's.
    """
    diff = np.ascontiguousarray(diff)
    return bm.matmul(diff[:, None, :], diff[:, :, None])[:, 0, 0]


def one_to_many_distances(
    x: np.ndarray, Y: np.ndarray, counters: Optional[OpCounters] = None
) -> np.ndarray:
    """Distances from one vector to every row of ``Y`` (counts ``len(Y)``).

    Direct differencing with the row-wise dot reduction — bit-identical to
    the scalar helpers — so candidate loops, leaf scans and pivot-gap
    computations that switch to this kernel keep the exact tie-breaking of
    the code they replace.
    """
    if counters is not None:
        counters.distance_computations += Y.shape[0]
    return np.sqrt(_rowwise_sq_norms(Y - x))


def paired_sq_distances(
    A: np.ndarray, B: np.ndarray, counters: Optional[OpCounters] = None
) -> np.ndarray:
    """Row-paired squared distances ``|A[i] - B[i]|^2`` (counts ``len(A)``).

    ``B`` may be a single ``(d,)`` vector, broadcast against every row of
    ``A``.  Bit-identical to calling :func:`sq_euclidean` per row — the
    bound-tightening kernel of the vectorized backend (many points, each to
    its own assigned centroid).
    """
    A = np.atleast_2d(A)
    diff = A - B
    if counters is not None:
        counters.distance_computations += diff.shape[0]
    return _rowwise_sq_norms(diff)


def paired_distances(
    A: np.ndarray, B: np.ndarray, counters: Optional[OpCounters] = None
) -> np.ndarray:
    """Row-paired Euclidean distances, bit-identical to :func:`euclidean`."""
    return np.sqrt(paired_sq_distances(A, B, counters))


def block_sq_distances(
    A: np.ndarray, B: np.ndarray, counters: Optional[OpCounters] = None
) -> np.ndarray:
    """All-pairs squared distances with scalar-identical numerics.

    Returns the ``(len(A), len(B))`` block where entry ``(i, j)`` is
    bit-identical to ``sq_euclidean(A[i], B[j])``; charges one distance per
    entry.  Slower than :func:`pairwise_sq_distances` (no expansion trick)
    but exact — the rescan kernel of the vectorized backend, where every
    entry must reproduce the reference backend's pointwise loop.
    """
    A = np.atleast_2d(A)
    B = np.atleast_2d(B)
    if counters is not None:
        counters.distance_computations += A.shape[0] * B.shape[0]
    diff = A[:, None, :] - B[None, :, :]
    flat = _rowwise_sq_norms(diff.reshape(-1, diff.shape[-1]))
    return flat.reshape(A.shape[0], B.shape[0])


def block_distances(
    A: np.ndarray, B: np.ndarray, counters: Optional[OpCounters] = None
) -> np.ndarray:
    """All-pairs Euclidean distances, entry-identical to :func:`euclidean`."""
    return np.sqrt(block_sq_distances(A, B, counters))


def distances_to_centroids(
    x: np.ndarray, centroids: np.ndarray, counters: Optional[OpCounters] = None
) -> np.ndarray:
    """Distances from one point to every centroid (counts ``k`` distances)."""
    return one_to_many_distances(x, centroids, counters)


def centroid_pairwise_distances(
    centroids: np.ndarray,
    counters: Optional[OpCounters] = None,
    *,
    scratch: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Symmetric centroid-to-centroid distance matrix.

    Charges ``k(k-1)/2`` distance computations — the cost the paper assigns
    to Elkan's inter-bound (Section 4.1).

    ``scratch`` optionally supplies a reusable ``(2, k, k)`` float64 buffer
    (Gram matrix + result); per-iteration callers avoid two allocations and
    the returned matrix aliases ``scratch[1]``.  The buffered path runs the
    same operations in the same association order — ``(aa_i + aa_j)`` first,
    then subtract ``2 * gram`` — so every entry is bit-identical to the
    allocating path.
    """
    k = centroids.shape[0]
    if counters is not None:
        counters.distance_computations += k * (k - 1) // 2
    # Unrouted on purpose (see module docstring): the whole centroid-level
    # computation stays host NumPy so bound thresholds never depend on the
    # active array backend.
    aa = np.einsum("ij,ij->i", centroids, centroids)
    if scratch is None:
        sq = aa[:, None] + aa[None, :] - 2.0 * (centroids @ centroids.T)
    else:
        gram, sq = scratch[0], scratch[1]
        np.matmul(centroids, centroids.T, out=gram)
        np.add(aa[:, None], aa[None, :], out=sq)
        np.multiply(gram, 2.0, out=gram)
        np.subtract(sq, gram, out=sq)
    np.maximum(sq, 0.0, out=sq)
    np.fill_diagonal(sq, 0.0)
    return np.sqrt(sq, out=sq)


def chunked_sq_distances(
    A: np.ndarray,
    B: np.ndarray,
    counters: Optional[OpCounters] = None,
    *,
    chunk: int = 512,
) -> np.ndarray:
    """All-pairs squared distances via direct differencing, chunked.

    Slower than :func:`pairwise_sq_distances` but numerically identical to
    the per-point helpers (no cancellation), which keeps tie-breaking
    consistent between vectorized full scans and pointwise pruning loops.

    Counter parity: charges exactly one distance per row-pair, identical to
    :func:`pairwise_sq_distances`, regardless of ``chunk`` — the charge is
    taken once up front, never inside the chunk loop, so chunk size is a
    pure memory/throughput knob with no effect on any Table 3 metric
    (regression-tested in ``tests/test_common_distance.py``).
    """
    A = np.atleast_2d(A)
    B = np.atleast_2d(B)
    if counters is not None:
        counters.distance_computations += A.shape[0] * B.shape[0]
    out = np.empty((A.shape[0], B.shape[0]))
    for start in range(0, A.shape[0], chunk):
        stop = min(start + chunk, A.shape[0])
        diff = A[start:stop, None, :] - B[None, :, :]
        out[start:stop] = bm.einsum("ijk,ijk->ij", diff, diff)
    return out


def norms(X: np.ndarray) -> np.ndarray:
    """Row-wise L2 norms (used by the norm-based bounds of Section 4.3)."""
    return np.sqrt(sq_norms(X))
