"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries while tests can assert on the precise
subclass.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied data or parameters fail validation."""


class ConfigurationError(ReproError, ValueError):
    """Raised when an algorithm or knob configuration is inconsistent."""


class DatasetError(ReproError, ValueError):
    """Raised by the dataset registry for unknown or malformed datasets."""


class NotFittedError(ReproError, RuntimeError):
    """Raised when a model is used before ``fit`` has been called."""


class TransientError(ReproError, RuntimeError):
    """A failure expected to clear on retry (resource pressure, injected
    chaos, flaky I/O).  The evaluation runtime retries these with
    exponential backoff; every other :class:`ReproError` is treated as
    deterministic and fails the run immediately."""


class RunTimeoutError(ReproError, TimeoutError):
    """A harness run exceeded its wall-clock budget and was cancelled.

    Timeouts are *not* retried by default: a hang is almost always a
    config-dependent pathology (e.g. a degenerate index build) that would
    hang again, so the runtime records it and moves on."""


class WorkerCrashError(ReproError, RuntimeError):
    """A worker process died (signal, ``os._exit``, unpicklable result)
    before reporting a result.  The supervising pool survives and the
    remaining runs continue."""


class ShardFailedError(ReproError, RuntimeError):
    """A shard of the sharded execution engine failed terminally under the
    ``strict`` failure policy.  Carries the shard rank, the fit iteration,
    and the classified error type of the underlying failure so chaos tests
    (and operators) can attribute the loss precisely."""

    def __init__(
        self, message: str, *, shard: int = -1, iteration: int = -1,
        error_type: str = "",
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.iteration = iteration
        self.error_type = error_type


class BackendUnavailableError(ConfigurationError):
    """A registered-but-optional array backend cannot be used on this host
    (Torch/CuPy not importable, or no CUDA device).  Carries the backend
    name and the import-time reason so callers — and the conformance
    suite's skip messages — can report *why* instead of silently passing.
    """

    def __init__(self, message: str, *, backend: str = "", reason: str = "") -> None:
        super().__init__(message)
        self.backend = backend
        self.reason = reason


class CheckpointError(ReproError, RuntimeError):
    """A shard-state checkpoint could not be validated against the running
    fit (mismatched fit key, non-contiguous iteration records, or a
    centroid digest that disagrees with the replayed trajectory)."""
