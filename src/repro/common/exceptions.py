"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries while tests can assert on the precise
subclass.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied data or parameters fail validation."""


class ConfigurationError(ReproError, ValueError):
    """Raised when an algorithm or knob configuration is inconsistent."""


class DatasetError(ReproError, ValueError):
    """Raised by the dataset registry for unknown or malformed datasets."""


class NotFittedError(ReproError, RuntimeError):
    """Raised when a model is used before ``fit`` has been called."""


class TransientError(ReproError, RuntimeError):
    """A failure expected to clear on retry (resource pressure, injected
    chaos, flaky I/O).  The evaluation runtime retries these with
    exponential backoff; every other :class:`ReproError` is treated as
    deterministic and fails the run immediately."""


class RunTimeoutError(ReproError, TimeoutError):
    """A harness run exceeded its wall-clock budget and was cancelled.

    Timeouts are *not* retried by default: a hang is almost always a
    config-dependent pathology (e.g. a degenerate index build) that would
    hang again, so the runtime records it and moves on."""


class WorkerCrashError(ReproError, RuntimeError):
    """A worker process died (signal, ``os._exit``, unpicklable result)
    before reporting a result.  The supervising pool survives and the
    remaining runs continue."""


class ShardFailedError(ReproError, RuntimeError):
    """A shard of the sharded execution engine failed terminally under the
    ``strict`` failure policy.  Carries the shard rank, the fit iteration,
    and the classified error type of the underlying failure so chaos tests
    (and operators) can attribute the loss precisely."""

    def __init__(
        self, message: str, *, shard: int = -1, iteration: int = -1,
        error_type: str = "",
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.iteration = iteration
        self.error_type = error_type


class BackendUnavailableError(ConfigurationError):
    """A registered-but-optional array backend cannot be used on this host
    (Torch/CuPy not importable, or no CUDA device).  Carries the backend
    name and the import-time reason so callers — and the conformance
    suite's skip messages — can report *why* instead of silently passing.
    """

    def __init__(self, message: str, *, backend: str = "", reason: str = "") -> None:
        super().__init__(message)
        self.backend = backend
        self.reason = reason


class CheckpointError(ReproError, RuntimeError):
    """A shard-state checkpoint could not be validated against the running
    fit (mismatched fit key, non-contiguous iteration records, or a
    centroid digest that disagrees with the replayed trajectory)."""


class ShmIntegrityError(ReproError, RuntimeError):
    """A shared-memory data-plane segment failed header validation on
    attach (bad magic/version, mismatched dtype/shape, or a payload CRC
    that disagrees with the publisher's stamp).  Attaching to a segment
    the supervisor did not publish for this fit must fail loudly, never
    silently compute on foreign bytes."""


class RegistryError(ReproError, RuntimeError):
    """Base class for model-registry failures (``repro.serve.registry``):
    unknown keys, malformed manifests, unusable payload files."""


class RegistryVersionError(RegistryError):
    """A registry record carries a schema version this reader does not
    understand.  Version 1 records are migrated transparently on read
    (mirroring the analysis baseline's v1 -> v2 pattern); anything newer
    than the current writer raises this instead of misreading the
    payload.  Carries the offending version for test assertions."""

    def __init__(self, message: str, *, version: int = -1) -> None:
        super().__init__(message)
        self.version = version


class RegistryCorruptionError(RegistryError):
    """A registry artifact failed digest verification: the bytes on disk
    disagree with the digest recorded in the manifest at save time
    (a flipped bit, a hand-edited payload, a torn write).  ``repro
    registry verify`` converts this into a classified non-zero exit."""

    def __init__(self, message: str, *, key: str = "", artifact: str = "") -> None:
        super().__init__(message)
        self.key = key
        self.artifact = artifact


class ServeError(ReproError, RuntimeError):
    """Base class for serving-path failures (``repro.serve``)."""


class DeadlineExceededError(ServeError, TimeoutError):
    """A serving request's deadline passed before (or while) its batch
    executed; the micro-batcher degrades the request to a structured
    :class:`~repro.serve.batching.FailedRequest` carrying this class
    name as its ``error_type``."""
