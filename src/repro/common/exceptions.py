"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries while tests can assert on the precise
subclass.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied data or parameters fail validation."""


class ConfigurationError(ReproError, ValueError):
    """Raised when an algorithm or knob configuration is inconsistent."""


class DatasetError(ReproError, ValueError):
    """Raised by the dataset registry for unknown or malformed datasets."""


class NotFittedError(ReproError, RuntimeError):
    """Raised when a model is used before ``fit`` has been called."""
