"""Input validation helpers shared across the package."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.exceptions import ValidationError


def check_data_matrix(
    X: np.ndarray,
    *,
    name: str = "X",
    min_rows: int = 1,
    min_cols: int = 1,
    dtype: type = np.float64,
    copy: bool = False,
) -> np.ndarray:
    """Validate and normalize a 2-D data matrix.

    Returns a C-contiguous float64 array.  Raises :class:`ValidationError`
    on non-finite values, wrong dimensionality, or empty input.
    """
    arr = np.array(X, dtype=dtype, copy=copy, order="C") if copy else np.asarray(X, dtype=dtype)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-D, got ndim={arr.ndim}")
    n, d = arr.shape
    if n < min_rows:
        raise ValidationError(f"{name} needs at least {min_rows} rows, got {n}")
    if d < min_cols:
        raise ValidationError(f"{name} needs at least {min_cols} columns, got {d}")
    if not np.isfinite(arr).all():
        raise ValidationError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(arr)


def check_k(k: int, n: int) -> int:
    """Validate the number of clusters against the dataset size."""
    if not isinstance(k, (int, np.integer)):
        raise ValidationError(f"k must be an integer, got {type(k).__name__}")
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if k > n:
        raise ValidationError(f"k={k} exceeds the number of points n={n}")
    return int(k)


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative when not strict)."""
    if strict and value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return float(value)


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {value}")
    return float(value)


def check_labels(labels: np.ndarray, n: int, k: Optional[int] = None) -> np.ndarray:
    """Validate an assignment vector of length ``n`` with labels in [0, k)."""
    arr = np.asarray(labels)
    if arr.shape != (n,):
        raise ValidationError(f"labels must have shape ({n},), got {arr.shape}")
    if arr.size and (arr.min() < 0 or (k is not None and arr.max() >= k)):
        raise ValidationError("labels out of range")
    return arr.astype(np.intp)
