"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`.  :func:`ensure_rng` normalizes all three into
a ``Generator`` so downstream code never branches on the input type.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic seeding, an ``int`` for a reproducible
        stream, or an existing ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Used when a component needs its own stream (e.g. each tree in a random
    forest) without perturbing the parent's sequence.
    """
    return np.random.default_rng(rng.integers(0, 2**63 - 1))
