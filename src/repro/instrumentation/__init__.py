"""Operation counting and phase timing.

The paper's central methodological point is that *distance computations alone
do not predict running time* — data accesses, bound accesses, and bound
updates matter just as much (Section 7.2.2, Figure 11, Table 3).  Every
algorithm in this package therefore threads an :class:`OpCounters` instance
through its inner loops, and the harness reports the full breakdown.
"""

from repro.instrumentation.counters import (
    CounterSnapshot,
    OpCounters,
    TransportCounters,
)
from repro.instrumentation.timers import PhaseTimer

__all__ = ["OpCounters", "CounterSnapshot", "PhaseTimer", "TransportCounters"]
