"""Phase timing for the assignment/refinement breakdown (Tables 8 and 9)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List


class PhaseTimer:
    """Accumulates wall-clock time per named phase, per iteration.

    Usage::

        timer = PhaseTimer()
        timer.start_iteration()
        with timer.phase("assignment"):
            ...
        with timer.phase("refinement"):
            ...

    ``totals`` gives the per-phase sums; ``iterations`` gives the per-phase
    time for each iteration, which backs Figure 13 (running time per
    iteration).
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._iterations: List[Dict[str, float]] = []

    def start_iteration(self) -> None:
        self._iterations.append({})

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        begin = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - begin
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            if self._iterations:
                current = self._iterations[-1]
                current[name] = current.get(name, 0.0) + elapsed

    @property
    def totals(self) -> Dict[str, float]:
        return dict(self._totals)

    @property
    def iterations(self) -> List[Dict[str, float]]:
        return [dict(entry) for entry in self._iterations]

    def total(self, name: str) -> float:
        return self._totals.get(name, 0.0)

    def iteration_total(self, index: int) -> float:
        """Total time across phases for iteration ``index``."""
        return sum(self._iterations[index].values())

    def grand_total(self) -> float:
        return sum(self._totals.values())
