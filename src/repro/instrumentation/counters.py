"""Counters for the performance metrics evaluated in the paper.

The conventions follow Section 7.1 ("Measurement") and Table 3:

``distance_computations``
    Number of full ``d``-dimensional Euclidean distance evaluations,
    counting point-to-centroid, pivot-to-centroid, and centroid-to-centroid
    distances alike.
``point_accesses``
    Number of times a stored data-point vector is read (assignment scans and
    non-incremental refinement both read points).
``node_accesses``
    Number of index nodes polled or traversed.
``bound_accesses``
    Number of stored bounds read for a pruning test.
``bound_updates``
    Number of stored bounds written (tightened or drift-corrected).

Counters are plain integers on purpose: the inner loops of the sequential
algorithms bump them millions of times, so anything heavier (locks, getattr
indirection) would distort the very measurements the framework exists to
take.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class CounterSnapshot:
    """Immutable copy of counter values at a point in time."""

    distance_computations: int = 0
    point_accesses: int = 0
    node_accesses: int = 0
    bound_accesses: int = 0
    bound_updates: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "distance_computations": self.distance_computations,
            "point_accesses": self.point_accesses,
            "node_accesses": self.node_accesses,
            "bound_accesses": self.bound_accesses,
            "bound_updates": self.bound_updates,
        }

    def __sub__(self, other: "CounterSnapshot") -> "CounterSnapshot":
        return CounterSnapshot(
            self.distance_computations - other.distance_computations,
            self.point_accesses - other.point_accesses,
            self.node_accesses - other.node_accesses,
            self.bound_accesses - other.bound_accesses,
            self.bound_updates - other.bound_updates,
        )


@dataclass
class TransportCounters:
    """IPC traffic accounting for the sharded data plane (bytes, not ops).

    Deliberately separate from :class:`OpCounters`: the paper's cost model
    counts *algorithmic* work, and a sharded fit's op-counter totals must
    stay equal to the single-process pass (the bit-identity contract
    compares them directly).  Transport bytes are an engineering metric of
    the execution engine, so they live in their own structure and surface
    through result ``extras["ipc"]``, never through the op counters.
    """

    bytes_sent: int = 0
    bytes_received: int = 0
    messages: int = 0

    def add_sent(self, count: int) -> None:
        self.bytes_sent += count
        self.messages += 1

    def add_received(self, count: int) -> None:
        self.bytes_received += count

    def as_dict(self) -> Dict[str, int]:
        return {
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "messages": self.messages,
        }

    def merge(self, other: "TransportCounters") -> None:
        self.bytes_sent += other.bytes_sent
        self.bytes_received += other.bytes_received
        self.messages += other.messages


@dataclass
class OpCounters:
    """Mutable operation counters threaded through algorithm inner loops."""

    distance_computations: int = 0
    point_accesses: int = 0
    node_accesses: int = 0
    bound_accesses: int = 0
    bound_updates: int = 0
    footprint_floats: int = 0

    def add_distances(self, count: int = 1) -> None:
        self.distance_computations += count

    def add_point_accesses(self, count: int = 1) -> None:
        self.point_accesses += count

    def add_node_accesses(self, count: int = 1) -> None:
        self.node_accesses += count

    def add_bound_accesses(self, count: int = 1) -> None:
        self.bound_accesses += count

    def add_bound_updates(self, count: int = 1) -> None:
        self.bound_updates += count

    def record_footprint(self, floats: int) -> None:
        """Record the peak auxiliary memory (in float64 slots) of a method.

        The paper's Figure 10 compares the *extra* memory each method needs
        on top of the dataset itself: bound arrays for sequential methods,
        node storage for index-based methods.
        """
        self.footprint_floats = max(self.footprint_floats, int(floats))

    def reset(self) -> None:
        self.distance_computations = 0
        self.point_accesses = 0
        self.node_accesses = 0
        self.bound_accesses = 0
        self.bound_updates = 0
        self.footprint_floats = 0

    def snapshot(self) -> CounterSnapshot:
        return CounterSnapshot(
            self.distance_computations,
            self.point_accesses,
            self.node_accesses,
            self.bound_accesses,
            self.bound_updates,
        )

    def as_dict(self) -> Dict[str, int]:
        d = self.snapshot().as_dict()
        d["footprint_floats"] = self.footprint_floats
        return d

    def merge(self, other: "OpCounters") -> None:
        """Accumulate another counter set into this one."""
        self.distance_computations += other.distance_computations
        self.point_accesses += other.point_accesses
        self.node_accesses += other.node_accesses
        self.bound_accesses += other.bound_accesses
        self.bound_updates += other.bound_updates
        self.footprint_floats = max(self.footprint_floats, other.footprint_floats)
