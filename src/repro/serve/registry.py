"""Versioned on-disk model registry for fitted models and selectors.

The ROADMAP's clustering-as-a-service item needs fitted centroids and
trained UTune selectors to outlive the fitting process.  This module is
the persistence half: an append-only, fsync'd JSONL *manifest* (the
``repro.eval.logdb`` idiom — crash mid-append leaves at worst one
truncated final line, quarantined and repaired on the next load) plus a
content-addressed *object store* of ``.npy`` payload files, one directory
per entry key.

Layout
------
::

    <root>/
        manifest.jsonl            # one record per save (fsync'd appends)
        manifest.lock             # flock guard for concurrent writers
        objects/<key>/
            centroids.npy         # array payloads (atomic tmp+rename)
            labels.npy
            selector.pkl          # pickled selector artifact (if any)

Keying and tamper detection
---------------------------
An entry's ``key`` is the first 16 hex digits of the SHA-256 of the
canonical JSON of its kind, metadata, and per-array CRC32 digests
(:func:`repro.exec.checkpoint.array_crc`) — a *content hash*, so saving
the bit-identical model twice lands on the same key and a different model
can never collide into it silently.  Every payload's CRC (arrays) or
SHA-256 (pickled artifacts) is recorded in the manifest at save time;
:meth:`ModelRegistry.verify` re-reads the bytes and raises a classified
:class:`~repro.common.exceptions.RegistryCorruptionError` on any
disagreement — a flipped byte in ``centroids.npy`` is caught, exactly
like the centroid-digest check of ``repro.exec.checkpoint``.

Schema versioning
-----------------
The current writer emits ``registry_version`` 2 (payload files + an
``arrays`` spec dict).  Version 1 records — inline base64 centroids with
flat metadata fields — upgrade transparently on read, mirroring the
baseline v1→v2 migration of ``repro.analysis``; anything *newer* than the
current writer raises a classified
:class:`~repro.common.exceptions.RegistryVersionError` instead of
misreading the payload.  A committed v1 golden artifact pins the
migration (``tests/golden/registry_v1``).

Concurrency
-----------
``parallel_compare`` workers save from concurrent processes.  Payload
writes are naturally race-free (content-keyed paths, atomic
``os.replace``); manifest appends are serialized through ``flock`` on a
sidecar lock file where ``fcntl`` exists, and degrade to unguarded
appends elsewhere (JSONL appends of < PIPE_BUF bytes are atomic on POSIX
anyway).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.common.exceptions import (
    RegistryCorruptionError,
    RegistryError,
    RegistryVersionError,
)
from repro.datasets.loaders import append_jsonl, read_jsonl
from repro.exec.checkpoint import array_crc

try:  # POSIX-only; the registry degrades gracefully without it
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX hosts
    fcntl = None  # type: ignore[assignment]

PathLike = Union[str, Path]

#: schema version the current writer emits
REGISTRY_VERSION = 2

#: entry kinds the registry stores
MODEL_KIND = "model"
SELECTOR_KIND = "selector"
KINDS = (MODEL_KIND, SELECTOR_KIND)

#: length (hex digits) of the content-hashed entry key
KEY_LENGTH = 16


def content_key(kind: str, meta: Dict[str, Any], digests: Dict[str, int]) -> str:
    """Content-hashed entry key: SHA-256 over canonical kind+meta+digests.

    Equal fitted models (same metadata, same payload bytes) hash to the
    same key; any payload or metadata change produces a different key.
    """
    canonical = json.dumps(
        {"kind": kind, "meta": meta, "digests": digests}, sort_keys=True
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:KEY_LENGTH]


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


class RegistryEntry:
    """One manifest record with lazy, optionally memory-mapped payloads."""

    def __init__(self, registry: "ModelRegistry", record: Dict[str, Any]) -> None:
        self._registry = registry
        self.record = record

    @property
    def key(self) -> str:
        return str(self.record.get("key", ""))

    @property
    def kind(self) -> str:
        return str(self.record.get("kind", ""))

    @property
    def meta(self) -> Dict[str, Any]:
        return dict(self.record.get("meta", {}))

    @property
    def array_names(self) -> List[str]:
        return sorted(self.record.get("arrays", {}))

    def array(self, name: str, *, mmap_mode: Optional[str] = "r") -> np.ndarray:
        """Load one payload array (memory-mapped by default).

        The hot path deliberately does *not* re-digest the payload — that
        would read every byte and defeat the mmap; run
        :meth:`ModelRegistry.verify` for the integrity check.  Inline
        (v1-migrated) payloads are decoded and CRC-checked in place since
        the bytes are already in memory.
        """
        spec = self.record.get("arrays", {}).get(name)
        if spec is None:
            known = ", ".join(self.array_names) or "<none>"
            raise RegistryError(
                f"entry {self.key} has no array {name!r}; known: {known}"
            )
        if "inline" in spec:
            raw = base64.b64decode(spec["inline"].encode("ascii"))
            arr = np.frombuffer(raw, dtype=spec["dtype"]).reshape(spec["shape"])
            if array_crc(arr) != int(spec["crc"]):
                raise RegistryCorruptionError(
                    f"inline payload {name!r} of entry {self.key} fails its "
                    "CRC32 digest",
                    key=self.key, artifact=name,
                )
            return arr
        path = self._registry.object_dir(self.key) / spec["file"]
        if not path.exists():
            raise RegistryError(
                f"entry {self.key} references missing payload file {path}"
            )
        return np.load(path, mmap_mode=mmap_mode)

    def selector(self) -> Any:
        """Unpickle the selector artifact (digest-checked before load)."""
        spec = self.record.get("artifacts", {}).get("selector")
        if spec is None:
            raise RegistryError(f"entry {self.key} stores no selector artifact")
        path = self._registry.object_dir(self.key) / spec["file"]
        if not path.exists():
            raise RegistryError(
                f"entry {self.key} references missing artifact file {path}"
            )
        # Pickle runs code on load, so unlike the array hot path the digest
        # is always checked first.
        actual = _sha256_file(path)
        if actual != spec["sha256"]:
            raise RegistryCorruptionError(
                f"selector artifact of entry {self.key} fails its SHA-256 "
                f"digest ({actual[:12]}… != {spec['sha256'][:12]}…)",
                key=self.key, artifact="selector",
            )
        with path.open("rb") as handle:
            return pickle.load(handle)


class ModelRegistry:
    """Versioned, fsync'd store of fitted models and selector artifacts."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.jsonl"

    def object_dir(self, key: str) -> Path:
        return self.root / "objects" / key

    # ------------------------------------------------------------------
    # Saving.
    # ------------------------------------------------------------------

    def save_model(
        self,
        result: Any,
        *,
        dataset: str = "",
        backend: str = "reference",
        array_backend: str = "numpy",
        shards: int = 1,
        seed: Optional[int] = None,
        extra_meta: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Persist a fitted :class:`~repro.core.result.KMeansResult`.

        Stores the centroids and the fit's label vector (so a fresh
        process can assert served-vs-fit identity without refitting) plus
        the fit metadata the paper's evaluation reports: algorithm,
        backends, shards, seed, iteration count, convergence, SSE, and the
        counter totals.  Returns the content-hashed entry key.
        """
        meta: Dict[str, Any] = {
            "algorithm": result.algorithm,
            "n": int(result.n),
            "d": int(result.d),
            "k": int(result.k),
            "n_iter": int(result.n_iter),
            "converged": bool(result.converged),
            "sse": float(result.sse),
            "dataset": dataset,
            "backend": backend,
            "array_backend": array_backend,
            "shards": int(shards),
            "seed": seed,
            "counters": dict(result.counters.as_dict()),
        }
        if extra_meta:
            meta.update(extra_meta)
        arrays = {
            "centroids": np.ascontiguousarray(result.centroids, dtype=np.float64),
            "labels": np.ascontiguousarray(result.labels, dtype=np.int64),
        }
        return self._save_entry(MODEL_KIND, meta, arrays, artifacts={})

    def save_selector(
        self,
        selector: Any,
        *,
        meta: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Persist a trained selector (e.g. :class:`repro.tuning.UTune`).

        The artifact is pickled; its SHA-256 lands in the manifest and is
        re-checked before every unpickle (code runs on load, so unlike
        arrays the digest check is not optional).
        """
        blob = pickle.dumps(selector, protocol=pickle.HIGHEST_PROTOCOL)
        selector_meta: Dict[str, Any] = {
            "class": type(selector).__name__,
            "model": getattr(selector, "model_name", None),
            "feature_set": getattr(selector, "feature_set", None),
        }
        if meta:
            selector_meta.update(meta)
        digest = hashlib.sha256(blob).hexdigest()
        key = content_key(
            SELECTOR_KIND, selector_meta, {"selector": int(digest[:8], 16)}
        )
        obj_dir = self.object_dir(key)
        obj_dir.mkdir(parents=True, exist_ok=True)
        self._write_bytes(obj_dir / "selector.pkl", blob)
        record = {
            "registry_version": REGISTRY_VERSION,
            "key": key,
            "kind": SELECTOR_KIND,
            "created": time.time(),
            "meta": selector_meta,
            "arrays": {},
            "artifacts": {
                "selector": {
                    "file": "selector.pkl",
                    "sha256": digest,
                    "size": len(blob),
                }
            },
        }
        self._append_record(record)
        return key

    def _save_entry(
        self,
        kind: str,
        meta: Dict[str, Any],
        arrays: Dict[str, np.ndarray],
        *,
        artifacts: Dict[str, Dict[str, Any]],
    ) -> str:
        digests = {name: array_crc(arr) for name, arr in sorted(arrays.items())}
        key = content_key(kind, meta, digests)
        obj_dir = self.object_dir(key)
        obj_dir.mkdir(parents=True, exist_ok=True)
        specs: Dict[str, Dict[str, Any]] = {}
        for name, arr in arrays.items():
            filename = f"{name}.npy"
            self._write_npy(obj_dir / filename, arr)
            specs[name] = {
                "file": filename,
                "crc": digests[name],
                "dtype": str(arr.dtype),
                "shape": list(arr.shape),
            }
        record = {
            "registry_version": REGISTRY_VERSION,
            "key": key,
            "kind": kind,
            "created": time.time(),
            "meta": meta,
            "arrays": specs,
            "artifacts": artifacts,
        }
        self._append_record(record)
        return key

    @staticmethod
    def _write_npy(path: Path, arr: np.ndarray) -> None:
        """Durable, atomic ``.npy`` write: tmp file + fsync + rename.

        Content-keyed paths make concurrent writers race only against
        bit-identical bytes, so the last rename winning is harmless.
        """
        tmp = path.with_suffix(".npy.tmp")
        with tmp.open("wb") as handle:
            np.save(handle, arr)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    @staticmethod
    def _write_bytes(path: Path, blob: bytes) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        with tmp.open("wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def _append_record(self, record: Dict[str, Any]) -> None:
        """Manifest append serialized across processes via flock."""
        self.root.mkdir(parents=True, exist_ok=True)
        lock_path = self.root / "manifest.lock"
        if fcntl is None:  # pragma: no cover - non-POSIX hosts
            append_jsonl(self.manifest_path, [record])
            return
        with lock_path.open("a") as lock:
            fcntl.flock(lock.fileno(), fcntl.LOCK_EX)
            try:
                append_jsonl(self.manifest_path, [record])
            finally:
                fcntl.flock(lock.fileno(), fcntl.LOCK_UN)

    # ------------------------------------------------------------------
    # Schema migration.
    # ------------------------------------------------------------------

    @staticmethod
    def _normalize(record: Dict[str, Any]) -> Dict[str, Any]:
        """Bring a manifest record to the current schema, or refuse.

        Version 1 upgrades transparently; an unknown or newer version
        raises :class:`RegistryVersionError` (carrying the version) —
        the same contract as the analysis baseline's v1→v2 reader.
        """
        try:
            version = int(record.get("registry_version", 0))
        except (TypeError, ValueError):
            raise RegistryError(
                f"manifest record {record.get('key', '?')} has a malformed "
                f"registry_version {record.get('registry_version')!r}"
            ) from None
        if version == REGISTRY_VERSION:
            return record
        if version == 1:
            return ModelRegistry._upgrade_v1(record)
        raise RegistryVersionError(
            f"manifest record {record.get('key', '?')} has registry_version "
            f"{version}; this reader understands 1..{REGISTRY_VERSION}",
            version=version,
        )

    @staticmethod
    def _upgrade_v1(record: Dict[str, Any]) -> Dict[str, Any]:
        """v1 → v2: inline base64 centroids with flat metadata fields.

        Version 1 stored the centroid payload inline (base64 of the raw
        little-endian float64 bytes) and its metadata flat on the record.
        The upgraded record keeps the payload inline — v1 entries have no
        object directory to point at — and nests the metadata, so every
        downstream consumer sees only the v2 shape.
        """
        payload_fields = {
            "registry_version", "key", "kind", "created",
            "centroids", "centroids_crc", "centroids_shape",
        }
        meta = {
            name: value for name, value in record.items()
            if name not in payload_fields
        }
        try:
            arrays = {
                "centroids": {
                    "inline": record["centroids"],
                    "crc": int(record["centroids_crc"]),
                    "dtype": "<f8",
                    "shape": list(record["centroids_shape"]),
                }
            }
        except KeyError as exc:
            raise RegistryError(
                f"v1 manifest record {record.get('key', '?')} is missing "
                f"field {exc}"
            ) from exc
        return {
            "registry_version": REGISTRY_VERSION,
            "key": record.get("key", ""),
            "kind": record.get("kind", MODEL_KIND),
            "created": record.get("created", 0.0),
            "meta": meta,
            "arrays": arrays,
            "artifacts": {},
        }

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------

    def _manifest_records(self) -> List[Dict[str, Any]]:
        """Current manifest records, newest-save-wins per key.

        Reads with the quarantine+repair truncation policy (the logdb
        contract: appenders must repair), normalizes every record to the
        current schema, and keeps the *last* record per key — re-saving
        identical content is idempotent, and a hypothetical metadata
        amendment wins over its predecessor.
        """
        by_key: Dict[str, Dict[str, Any]] = {}
        for raw in read_jsonl(self.manifest_path, truncated="quarantine",
                              repair=True):
            record = self._normalize(raw)
            key = str(record.get("key", ""))
            if not key:
                raise RegistryError("manifest record without a key")
            by_key[key] = record
        return list(by_key.values())

    def list_entries(self, *, kind: Optional[str] = None) -> List[RegistryEntry]:
        """All entries (optionally one kind), oldest save first."""
        records = self._manifest_records()
        records.sort(key=lambda r: (r.get("created", 0.0), r.get("key", "")))
        return [
            RegistryEntry(self, record) for record in records
            if kind is None or record.get("kind") == kind
        ]

    def load(self, key: str) -> RegistryEntry:
        """The entry stored under ``key`` (exact match)."""
        for record in self._manifest_records():
            if record.get("key") == key:
                return RegistryEntry(self, record)
        known = ", ".join(sorted(r["key"] for r in self._manifest_records()))
        raise RegistryError(
            f"no registry entry with key {key!r}; known keys: {known or '<none>'}"
        )

    def latest(self, *, kind: str = MODEL_KIND,
               **meta_filters: Any) -> RegistryEntry:
        """The most recently saved entry of ``kind`` matching the filters.

        Filters compare against metadata fields:
        ``registry.latest(algorithm="elkan")``.  Like the (fixed)
        :meth:`EvaluationLog.query` semantics, ``field=None`` matches an
        explicit null, not a missing field.
        """
        sentinel = object()
        candidates = [
            entry for entry in self.list_entries(kind=kind)
            if all(
                entry.meta.get(name, sentinel) == expected
                for name, expected in meta_filters.items()
            )
        ]
        if not candidates:
            raise RegistryError(
                f"registry at {self.root} holds no {kind!r} entry matching "
                f"{meta_filters or '{}'}"
            )
        return candidates[-1]

    # ------------------------------------------------------------------
    # Verification.
    # ------------------------------------------------------------------

    def verify(self, key: Optional[str] = None) -> int:
        """Re-digest every payload of one entry (or all) against the manifest.

        Returns the number of payloads checked; raises
        :class:`RegistryCorruptionError` on the first disagreement — the
        byte-flipped-centroid detector the serving-smoke CI job drives.
        """
        entries = [self.load(key)] if key is not None else self.list_entries()
        checked = 0
        for entry in entries:
            for name, spec in sorted(entry.record.get("arrays", {}).items()):
                if "inline" in spec:
                    entry.array(name)  # decodes + CRC-checks in place
                    checked += 1
                    continue
                path = self.object_dir(entry.key) / spec["file"]
                if not path.exists():
                    raise RegistryCorruptionError(
                        f"entry {entry.key}: payload file {spec['file']} is "
                        "missing",
                        key=entry.key, artifact=name,
                    )
                arr = np.load(path, mmap_mode=None)
                actual = array_crc(arr)
                if actual != int(spec["crc"]):
                    raise RegistryCorruptionError(
                        f"entry {entry.key}: payload {name!r} fails its CRC32 "
                        f"digest ({actual:#010x} != {int(spec['crc']):#010x}) "
                        "— the bytes on disk are not the bytes that were "
                        "saved",
                        key=entry.key, artifact=name,
                    )
                if list(arr.shape) != list(spec["shape"]) or str(arr.dtype) != spec["dtype"]:
                    raise RegistryCorruptionError(
                        f"entry {entry.key}: payload {name!r} shape/dtype "
                        f"disagrees with the manifest",
                        key=entry.key, artifact=name,
                    )
                checked += 1
            for name, spec in sorted(entry.record.get("artifacts", {}).items()):
                path = self.object_dir(entry.key) / spec["file"]
                if not path.exists():
                    raise RegistryCorruptionError(
                        f"entry {entry.key}: artifact file {spec['file']} is "
                        "missing",
                        key=entry.key, artifact=name,
                    )
                actual = _sha256_file(path)
                if actual != spec["sha256"]:
                    raise RegistryCorruptionError(
                        f"entry {entry.key}: artifact {name!r} fails its "
                        "SHA-256 digest",
                        key=entry.key, artifact=name,
                    )
                checked += 1
        return checked


__all__ = [
    "KEY_LENGTH",
    "KINDS",
    "MODEL_KIND",
    "REGISTRY_VERSION",
    "SELECTOR_KIND",
    "ModelRegistry",
    "RegistryEntry",
    "content_key",
]
