"""Serving hot path: batched nearest-centroid assignment from the registry.

The :class:`Predictor` answers one-to-many assignment queries against a
registry entry's centroids.  Its contract mirrors training assignment:

* distances go through the *counted* exact kernel
  (:func:`repro.common.distance.chunked_sq_distances` — bit-identical to
  the scalar helpers, so serving reproduces the fit's tie-breaking), and
  the argmin through the array-backend manager ``bm`` with its explicit
  first-index tie-break;
* under the default ``numpy`` array backend every served label is
  therefore **bit-identical** to the label the fit itself would assign
  against its final centroids — and for a *converged* fit the final
  centroids are a fixed point of assignment, so served labels equal the
  stored fit labels exactly (the round-trip identity the serving-smoke CI
  job asserts);
* accelerator array backends (torch / torch-cuda / cupy) are held to the
  tolerance tier of docs/array_backends.md, same as training.

Payloads are loaded memory-mapped from the registry (``np.load`` with
``mmap_mode``): the label vector and any future large artifacts stay on
disk until touched, while the centroids — small and hit on every request
— are materialized once into a contiguous float64 *warm cache* at
construction, so the steady-state request path never faults a page or
re-reads the manifest.

This module declares ``BACKEND_ROUTED = True``: the R008 backend-purity
rule enforces that it reaches distance math only via the counted kernels
and managed array ops only via ``bm``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.backend import backend_manager as bm
from repro.common.distance import chunked_sq_distances
from repro.common.exceptions import ValidationError
from repro.instrumentation.counters import OpCounters
from repro.serve.registry import MODEL_KIND, ModelRegistry, RegistryEntry

#: R008 contract: managed array math in this module must route through bm
BACKEND_ROUTED = True

#: default chunk for the serving kernel; requests are small, so one chunk
#: normally covers the whole batch
DEFAULT_CHUNK = 2048


class Predictor:
    """Warm-cache nearest-centroid server over one registry entry."""

    def __init__(
        self,
        registry: ModelRegistry,
        key: Optional[str] = None,
        *,
        chunk: int = DEFAULT_CHUNK,
    ) -> None:
        self.registry = registry
        entry: RegistryEntry
        if key is None:
            entry = registry.latest(kind=MODEL_KIND)
        else:
            entry = registry.load(key)
        if entry.kind != MODEL_KIND:
            raise ValidationError(
                f"registry entry {entry.key} is a {entry.kind!r}, not a model"
            )
        self.entry = entry
        self.chunk = int(chunk)
        if self.chunk <= 0:
            raise ValidationError(f"chunk must be > 0, got {chunk}")
        # Warm cache: the mmap'd payload is materialized into one
        # contiguous float64 block so every request hits RAM, never the
        # page cache, and the kernel sees the layout it was benchmarked on.
        self._centroids = np.ascontiguousarray(
            entry.array("centroids", mmap_mode="r"), dtype=np.float64
        )
        if self._centroids.ndim != 2:
            raise ValidationError(
                f"centroids payload of entry {entry.key} has "
                f"{self._centroids.ndim} dimensions, expected 2"
            )
        #: serving-side counters, same cost model as training (one charge
        #: per point-centroid pair); read/reset by the bench and stats
        self.counters = OpCounters()
        self._requests = 0
        self._points = 0

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        return self._centroids.shape[0]

    @property
    def d(self) -> int:
        return self._centroids.shape[1]

    @property
    def centroids(self) -> np.ndarray:
        """The warm centroid cache (read-only view)."""
        view = self._centroids.view()
        view.setflags(write=False)
        return view

    def stats(self) -> Dict[str, Any]:
        """Serving counters: requests answered, points assigned, distances."""
        return {
            "key": self.entry.key,
            "k": self.k,
            "d": self.d,
            "requests": self._requests,
            "points": self._points,
            "distance_computations": self.counters.distance_computations,
        }

    # ------------------------------------------------------------------
    # The hot path.
    # ------------------------------------------------------------------

    def predict(
        self, X: np.ndarray, counters: Optional[OpCounters] = None
    ) -> np.ndarray:
        """Assign each row of ``X`` to its nearest centroid.

        One vectorized one-to-many pass: the exact chunked kernel charges
        ``len(X) * k`` distances to the predictor's counters (or the
        caller's), and ``bm.argmin`` resolves ties to the first index —
        the same tie-break as every training assignment path.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.ndim != 2 or X.shape[1] != self.d:
            raise ValidationError(
                f"query points have shape {X.shape}, expected (m, {self.d})"
            )
        sq = chunked_sq_distances(
            X, self._centroids,
            self.counters if counters is None else counters,
            chunk=self.chunk,
        )
        labels = bm.argmin(sq, axis=1)
        self._requests += 1
        self._points += X.shape[0]
        return labels

    def predict_one(self, x: np.ndarray) -> int:
        """Assign a single point (convenience over :meth:`predict`)."""
        return int(self.predict(np.atleast_2d(x))[0])


__all__ = ["BACKEND_ROUTED", "DEFAULT_CHUNK", "Predictor"]
