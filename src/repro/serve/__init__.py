"""Clustering-as-a-service: model registry + batched serving hot path.

Three pieces (docs/serving.md):

* :mod:`repro.serve.registry` — :class:`ModelRegistry`, the versioned,
  fsync'd on-disk store of fitted centroids, fit metadata, and trained
  selector artifacts, with content-hashed keys and tamper-detecting
  digests;
* :mod:`repro.serve.predictor` — :class:`Predictor`, the warm-cache
  serving hot path answering batched one-to-many assignment through the
  counted, ``bm``-routed exact kernels (bit-identical to training
  assignment on NumPy);
* :mod:`repro.serve.batching` — :class:`MicroBatcher`, the coalescing
  front end with per-request deadlines and graceful
  :class:`FailedRequest` degradation.
"""

from repro.serve.batching import FailedRequest, MicroBatcher, Ticket
from repro.serve.predictor import Predictor
from repro.serve.registry import (
    MODEL_KIND,
    REGISTRY_VERSION,
    SELECTOR_KIND,
    ModelRegistry,
    RegistryEntry,
    content_key,
)

__all__ = [
    "MODEL_KIND",
    "REGISTRY_VERSION",
    "SELECTOR_KIND",
    "FailedRequest",
    "MicroBatcher",
    "ModelRegistry",
    "Predictor",
    "RegistryEntry",
    "Ticket",
    "content_key",
]
