"""Micro-batching front end for the serving hot path.

Concurrent callers submit small queries; a single worker thread coalesces
whatever is pending into one vectorized :meth:`Predictor.predict` call.
Batching amortizes the per-call kernel overhead — the ``serve_predict``
entry of ``BENCH_backends.json`` gates the batched path at ≥5x over the
per-point loop on the 20k×16 smoke workload.

Failure semantics follow ``repro.eval.runtime``: a request never takes
the server down.  Each request carries an optional *deadline*; a request
whose deadline passes before its batch runs — or whose batch raises — is
degraded to a structured :class:`FailedRequest` (``status="failed"``,
the same discriminator as :class:`~repro.eval.runtime.FailedRun`) that
the caller receives in place of labels.  One poisoned request cannot fail
its batchmates: the worker degrades the whole batch only when the shared
kernel call itself raises, and classified per-request problems (deadline
expiry) are filtered out before the kernel runs.

Threading model: all mutable state lives on the :class:`MicroBatcher`
instance (the ``BackendManager`` idiom — no module globals, so the R007
parallel-safety rule has nothing to flag), and the worker is a
module-level function dispatched via ``Thread(target=_batch_worker)``;
R007 discovers such thread targets as dispatch roots and checks them like
any pool kernel.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.common.exceptions import ValidationError
from repro.eval.runtime import FAILED_STATUS
from repro.serve.predictor import Predictor

#: how long the worker sleeps when the queue is empty (seconds)
_IDLE_WAIT = 0.05


@dataclass
class FailedRequest:
    """Structured degradation record for one failed serving request.

    Mirrors :class:`~repro.eval.runtime.FailedRun`: ``status="failed"``
    is the discriminator, ``error_type`` is the classified exception
    class name (``DeadlineExceededError`` for expiry), and the caller
    decides whether to retry, drop, or raise.
    """

    request_id: int
    error_type: str
    message: str
    elapsed: float
    status: str = FAILED_STATUS

    def as_dict(self) -> Dict[str, Any]:
        return {
            "request_id": self.request_id,
            "status": self.status,
            "error_type": self.error_type,
            "message": self.message,
            "elapsed": self.elapsed,
        }


class Ticket:
    """Handle for one submitted request; resolved by the batch worker."""

    def __init__(self, request_id: int, points: np.ndarray,
                 deadline: Optional[float]) -> None:
        self.request_id = request_id
        self.points = points
        self.deadline = deadline
        self.submitted = time.perf_counter()
        self._done = threading.Event()
        self._outcome: Union[np.ndarray, FailedRequest, None] = None

    def _resolve(self, outcome: Union[np.ndarray, FailedRequest]) -> None:
        self._outcome = outcome
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None
               ) -> Union[np.ndarray, FailedRequest]:
        """Block until resolved: label array, or a :class:`FailedRequest`.

        Degradation, not exception — the caller inspects ``status`` like
        a harness consumer inspects a failed cell.  ``timeout`` guards the
        wait itself (e.g. a closed batcher) and degrades to a
        ``FailedRequest`` rather than hanging forever.
        """
        if not self._done.wait(timeout):
            return FailedRequest(
                request_id=self.request_id,
                error_type="RunTimeoutError",
                message=f"result not available within {timeout}s",
                elapsed=time.perf_counter() - self.submitted,
            )
        assert self._outcome is not None
        return self._outcome


def _batch_worker(batcher: "MicroBatcher") -> None:
    """Worker loop: drain, coalesce, serve, resolve.

    Module-level so R007 can treat it as a dispatch root; all state it
    touches belongs to the batcher instance it is handed.
    """
    while True:
        batch = batcher._collect_batch()
        if batch is None:
            return
        if batch:
            batcher._serve_batch(batch)


class MicroBatcher:
    """Coalesces concurrent serving requests into vectorized kernel calls.

    Usage::

        with MicroBatcher(predictor, max_batch=256, max_wait=0.002) as mb:
            ticket = mb.submit(points, deadline=0.5)
            labels = ticket.result()        # ndarray, or FailedRequest

    ``max_wait`` bounds how long the worker lingers for batchmates after
    the first request of a batch arrives; ``max_batch`` bounds coalesced
    size (a single oversized submit is still served whole — the predictor
    chunks internally).
    """

    def __init__(
        self,
        predictor: Predictor,
        *,
        max_batch: int = 256,
        max_wait: float = 0.002,
    ) -> None:
        if max_batch <= 0:
            raise ValidationError(f"max_batch must be > 0, got {max_batch}")
        if max_wait < 0:
            raise ValidationError(f"max_wait must be >= 0, got {max_wait}")
        self.predictor = predictor
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self._lock = threading.Lock()
        self._has_work = threading.Condition(self._lock)
        self._queue: List[Ticket] = []
        self._closed = False
        self._next_id = 0
        #: observability: requests/points accepted, kernel batches run,
        #: requests degraded (deadline or batch failure)
        self.stats: Dict[str, int] = {
            "requests": 0, "points": 0, "batches": 0, "failed": 0,
        }
        self._worker = threading.Thread(
            target=_batch_worker, args=(self,), name="repro-serve-batcher",
            daemon=True,
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Client side.
    # ------------------------------------------------------------------

    def submit(self, points: np.ndarray,
               deadline: Optional[float] = None) -> Ticket:
        """Enqueue one request (``(d,)`` or ``(m, d)``); returns its ticket.

        ``deadline`` is a per-request budget in seconds from submission;
        a request still queued when it expires degrades to a
        :class:`FailedRequest` instead of occupying the batch.
        """
        if deadline is not None and deadline <= 0:
            raise ValidationError(f"deadline must be > 0 (or None), got {deadline}")
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.ndim != 2 or points.shape[1] != self.predictor.d:
            raise ValidationError(
                f"request points have shape {points.shape}, expected "
                f"(m, {self.predictor.d})"
            )
        with self._has_work:
            if self._closed:
                raise ValidationError("submit on a closed MicroBatcher")
            ticket = Ticket(self._next_id, points, deadline)
            self._next_id += 1
            self._queue.append(ticket)
            self.stats["requests"] += 1
            self.stats["points"] += points.shape[0]
            self._has_work.notify()
        return ticket

    def close(self, timeout: Optional[float] = 5.0) -> None:
        """Stop accepting requests, drain the queue, join the worker."""
        with self._has_work:
            if self._closed:
                return
            self._closed = True
            self._has_work.notify()
        self._worker.join(timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Worker side.
    # ------------------------------------------------------------------

    def _collect_batch(self) -> Optional[List[Ticket]]:
        """Next coalesced batch; ``None`` means shut down (queue drained).

        Blocks until at least one request is pending, then lingers up to
        ``max_wait`` for batchmates before cutting the batch at
        ``max_batch`` requests.
        """
        with self._has_work:
            while not self._queue and not self._closed:
                self._has_work.wait(_IDLE_WAIT)
            if not self._queue:
                return None  # closed and drained
        if self.max_wait > 0:
            cutoff = time.perf_counter() + self.max_wait
            while time.perf_counter() < cutoff:
                with self._lock:
                    if len(self._queue) >= self.max_batch or self._closed:
                        break
                time.sleep(self.max_wait / 10)
        with self._lock:
            batch = self._queue[: self.max_batch]
            del self._queue[: self.max_batch]
        return batch

    def _serve_batch(self, batch: List[Ticket]) -> None:
        """One kernel call for the whole batch; degrade, never crash.

        Expired requests are resolved to ``FailedRequest`` *before* the
        kernel runs, so a stale deadline cannot waste batch capacity; a
        kernel-level failure degrades every request of the batch with the
        classified error type.
        """
        now = time.perf_counter()
        live: List[Ticket] = []
        for ticket in batch:
            if ticket.deadline is not None and \
                    now - ticket.submitted > ticket.deadline:
                ticket._resolve(FailedRequest(
                    request_id=ticket.request_id,
                    error_type="DeadlineExceededError",
                    message=(
                        f"deadline of {ticket.deadline}s passed before the "
                        "batch executed"
                    ),
                    elapsed=now - ticket.submitted,
                ))
                self.stats["failed"] += 1
            else:
                live.append(ticket)
        if not live:
            return
        stacked = np.concatenate([ticket.points for ticket in live], axis=0)
        try:
            labels = self.predictor.predict(stacked)
        except Exception as exc:
            elapsed = time.perf_counter() - now
            for ticket in live:
                ticket._resolve(FailedRequest(
                    request_id=ticket.request_id,
                    error_type=type(exc).__name__,
                    message=str(exc),
                    elapsed=elapsed,
                ))
                self.stats["failed"] += 1
            return
        self.stats["batches"] += 1
        offset = 0
        for ticket in live:
            m = ticket.points.shape[0]
            ticket._resolve(labels[offset:offset + m])
            offset += m


__all__ = ["FailedRequest", "MicroBatcher", "Ticket"]
