"""repro — reproduction of "On the Efficiency of K-Means Clustering:
Evaluation, Optimization, and Algorithm Selection" (PVLDB 14(2), 2021).

Public surface:

* :mod:`repro.core` — Lloyd's algorithm, twelve accelerated exact variants,
  the index-based filtering algorithm over five tree structures, and the
  unified adaptive UniK pipeline (Algorithm 1).
* :mod:`repro.indexes` — Ball-tree, kd-tree, M-tree, Cover-tree, HKT with
  the paper's augmented nodes (Definition 1).
* :mod:`repro.tuning` — UTune: meta-features, ground-truth generation with
  selective running, from-scratch classifiers, and MRR evaluation.
* :mod:`repro.eval` — the evaluation harness, leaderboards and report
  tables behind every figure/table reproduction in ``benchmarks/``.
* :mod:`repro.datasets` — synthetic surrogates for the paper's datasets.

Quickstart::

    from repro import KMeans
    from repro.datasets import load_dataset

    X = load_dataset("NYC-Taxi", n=5000, seed=0)
    result = KMeans(k=50, algorithm="unik", seed=0).fit(X)
    print(result.sse, result.pruning_ratio, result.total_time)
"""

from repro.core import ALGORITHMS, KMeans, KMeansResult, make_algorithm

__version__ = "1.0.0"

__all__ = ["ALGORITHMS", "KMeans", "KMeansResult", "make_algorithm", "__version__"]
