"""Preprocessing transforms.

The UCI datasets behind Table 2 are conventionally preprocessed before
clustering (standardization, min-max scaling); these utilities provide that
step for users bringing their own data, plus a power-iteration PCA for
projecting high-dimensional data (the Figure 17 dimensionality study uses
such projections to vary ``d`` on a fixed dataset).

Each transformer follows the fit/transform protocol so train-time
statistics can be applied to held-out data.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.exceptions import NotFittedError, ValidationError
from repro.common.rng import SeedLike, ensure_rng
from repro.common.validation import check_data_matrix


class StandardScaler:
    """Zero-mean / unit-variance scaling per feature."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = check_data_matrix(X)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise NotFittedError("StandardScaler used before fit")
        X = check_data_matrix(X)
        if X.shape[1] != len(self.mean_):
            raise ValidationError(
                f"expected {len(self.mean_)} features, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, Z: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise NotFittedError("StandardScaler used before fit")
        return np.asarray(Z) * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale each feature into [0, 1] (constant features map to 0)."""

    def __init__(self) -> None:
        self.min_: Optional[np.ndarray] = None
        self.range_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = check_data_matrix(X)
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        span[span == 0.0] = 1.0
        self.range_ = span
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise NotFittedError("MinMaxScaler used before fit")
        X = check_data_matrix(X)
        if X.shape[1] != len(self.min_):
            raise ValidationError(
                f"expected {len(self.min_)} features, got {X.shape[1]}"
            )
        return (X - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class PCAProjector:
    """Top-``n_components`` PCA via orthogonal power iteration.

    Dependency-free (no scipy eigensolvers): repeatedly multiplies a random
    orthonormal basis by the covariance and re-orthogonalizes (QR), which
    converges to the leading eigenspace.
    """

    def __init__(
        self,
        n_components: int,
        *,
        iterations: int = 60,
        seed: SeedLike = 0,
    ) -> None:
        if n_components < 1:
            raise ValidationError("n_components must be >= 1")
        self.n_components = int(n_components)
        self.iterations = int(iterations)
        self.seed = seed
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None  # (n_components, d)
        self.explained_variance_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "PCAProjector":
        X = check_data_matrix(X)
        n, d = X.shape
        if self.n_components > d:
            raise ValidationError(
                f"n_components={self.n_components} exceeds d={d}"
            )
        rng = ensure_rng(self.seed)
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        cov = centered.T @ centered / max(1, n - 1)
        basis, _ = np.linalg.qr(rng.normal(size=(d, self.n_components)))
        for _ in range(self.iterations):
            basis, _ = np.linalg.qr(cov @ basis)
        self.components_ = basis.T
        self.explained_variance_ = np.einsum(
            "ij,jk,ik->i", self.components_, cov, self.components_
        )
        order = np.argsort(-self.explained_variance_)
        self.components_ = self.components_[order]
        self.explained_variance_ = self.explained_variance_[order]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.components_ is None:
            raise NotFittedError("PCAProjector used before fit")
        X = check_data_matrix(X)
        return (X - self.mean_) @ self.components_.T

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
