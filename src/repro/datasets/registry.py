"""Surrogate registry for the paper's evaluation datasets (Table 2).

Each entry records the real dataset's scale ``n_paper`` and dimensionality
``d`` together with a synthetic generator that reproduces its qualitative
distribution.  ``load_dataset`` scales ``n`` down (default ~1/500, clamped to
[1000, 8000]) so that the pure-Python algorithms finish in seconds; the
*relative* behaviour of the pruning methods — which is what every figure and
table in the paper compares — is preserved because it is driven by (n, d, k,
clusteredness), all of which the surrogate controls.

Why each surrogate shape (``repro_why``):

* BigCross/Covtype/Census — mid/high-d UCI data with real cluster structure
  → Gaussian blobs with moderate spread.
* Kegg(D/U), Skin, Shuttle, Spam — low-to-mid-d, strongly assembled → tight
  blobs.
* NYC-Taxi, Europe — 2-D spatial pickup locations → hot-spot spatial model.
* Conflong, RoadNetwork, Power — low-d sensor/geo streams → blobs in 3-9 d.
* Mnist, MSD — high-d weakly clustered → prototype-plus-noise model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.common.exceptions import DatasetError
from repro.common.rng import SeedLike, ensure_rng
from repro.datasets import synthetic


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one paper dataset and its synthetic surrogate."""

    name: str
    n_paper: int
    d: int
    kind: str
    description: str
    params: Dict[str, float] = field(default_factory=dict)

    def default_n(self, scale: float = 1.0 / 500.0) -> int:
        """Scaled-down point count used by default (clamped to [1000, 8000])."""
        return int(min(8000, max(1000, round(self.n_paper * scale))))


_SPECS: Dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _SPECS[spec.name.lower()] = spec


_register(DatasetSpec("BigCross", 1_160_000, 57, "blobs",
                      "Cross-domain retail data; mid-d, well clustered",
                      {"centers": 32, "cluster_std": 1.0}))
_register(DatasetSpec("Conflong", 165_000, 3, "blobs",
                      "Localization sensor stream; low-d",
                      {"centers": 12, "cluster_std": 0.8}))
_register(DatasetSpec("Covtype", 581_000, 55, "blobs",
                      "Forest cover cartographic variables",
                      {"centers": 24, "cluster_std": 1.5}))
_register(DatasetSpec("Europe", 169_000, 2, "spatial",
                      "2-D European locations (diff file)",
                      {"hotspots": 60, "hotspot_std": 0.008}))
_register(DatasetSpec("KeggDirect", 53_400, 24, "blobs",
                      "KEGG metabolic network (directed) features",
                      {"centers": 16, "cluster_std": 0.6}))
_register(DatasetSpec("KeggUndirect", 65_500, 29, "blobs",
                      "KEGG metabolic network (undirected) features",
                      {"centers": 16, "cluster_std": 0.6}))
_register(DatasetSpec("NYC-Taxi", 3_500_000, 2, "spatial",
                      "NYC taxi pick-up locations; dense urban hot spots",
                      {"hotspots": 80, "hotspot_std": 0.004}))
_register(DatasetSpec("Skin", 245_000, 4, "blobs",
                      "Skin segmentation RGB+label features",
                      {"centers": 10, "cluster_std": 0.5}))
_register(DatasetSpec("Power", 2_070_000, 9, "blobs",
                      "Household electric power readings",
                      {"centers": 20, "cluster_std": 1.8}))
_register(DatasetSpec("RoadNetwork", 434_000, 4, "blobs",
                      "3D road network (North Jutland) coordinates",
                      {"centers": 30, "cluster_std": 0.4}))
_register(DatasetSpec("US-Census", 2_450_000, 68, "blobs",
                      "US Census 1990 categorical-coded data",
                      {"centers": 40, "cluster_std": 2.0}))
_register(DatasetSpec("Mnist", 60_000, 784, "mnist",
                      "Handwritten digit images; high-d, weak clusters",
                      {"prototypes": 10}))
_register(DatasetSpec("Spam", 4_601, 57, "blobs",
                      "Spambase email features (generalization set)",
                      {"centers": 8, "cluster_std": 1.2}))
_register(DatasetSpec("Shuttle", 58_000, 9, "blobs",
                      "Statlog shuttle sensor data (generalization set)",
                      {"centers": 7, "cluster_std": 0.7}))
_register(DatasetSpec("MSD", 515_000, 90, "mnist",
                      "Million-song year-prediction features; high-d diffuse",
                      {"prototypes": 25}))


def dataset_names() -> List[str]:
    """Canonical names of all registered surrogate datasets."""
    return [spec.name for spec in _SPECS.values()]


def get_dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by (case-insensitive) name."""
    try:
        return _SPECS[name.lower()]
    except KeyError:
        known = ", ".join(dataset_names())
        raise DatasetError(f"unknown dataset {name!r}; known datasets: {known}") from None


def load_dataset(
    name: str,
    *,
    n: Optional[int] = None,
    d: Optional[int] = None,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Generate the synthetic surrogate for dataset ``name``.

    Parameters
    ----------
    name:
        A Table 2 dataset name (case-insensitive).
    n, d:
        Optional overrides of the scaled-down point count and the
        dimensionality (``d`` defaults to the paper's value).
    seed:
        Seed for deterministic generation.
    """
    spec = get_dataset_spec(name)
    n_points = int(n) if n is not None else spec.default_n()
    dims = int(d) if d is not None else spec.d
    rng = ensure_rng(seed)
    if spec.kind == "blobs":
        centers = min(int(spec.params.get("centers", 16)), n_points)
        X, _ = synthetic.make_blobs(
            n_points, dims, centers,
            cluster_std=float(spec.params.get("cluster_std", 1.0)), seed=rng,
        )
        return X
    if spec.kind == "spatial":
        if dims != 2:
            # Spatial surrogates are inherently planar; embed extra dims as noise.
            X = synthetic.make_spatial(
                n_points,
                hotspots=int(spec.params.get("hotspots", 40)),
                hotspot_std=float(spec.params.get("hotspot_std", 0.01)),
                seed=rng,
            )
            extra = rng.normal(0.0, 0.01, size=(n_points, dims - 2))
            return np.concatenate([X, extra], axis=1)
        return synthetic.make_spatial(
            n_points,
            hotspots=int(spec.params.get("hotspots", 40)),
            hotspot_std=float(spec.params.get("hotspot_std", 0.01)),
            seed=rng,
        )
    if spec.kind == "mnist":
        return synthetic.make_mnist_like(
            n_points, dims,
            prototypes=int(spec.params.get("prototypes", 10)), seed=rng,
        )
    raise DatasetError(f"spec {spec.name} has unsupported kind {spec.kind!r}")
