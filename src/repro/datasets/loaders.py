"""Flat-file persistence for datasets and evaluation logs.

The original artifact reads UCI CSV files from disk; these helpers provide
the same workflow for the synthetic surrogates so examples and benchmarks can
cache generated data between runs.
"""

from __future__ import annotations

import csv
import json
import os
import warnings
from pathlib import Path
from typing import Any, Dict, Iterable, List, Tuple, Union

import numpy as np

from repro.common.exceptions import DatasetError
from repro.common.validation import check_data_matrix

PathLike = Union[str, Path]


def save_points_csv(path: PathLike, X: np.ndarray) -> None:
    """Write a data matrix as headerless CSV (one point per row)."""
    X = check_data_matrix(X)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        for row in X:
            writer.writerow([repr(float(value)) for value in row])


def load_points_csv(path: PathLike) -> np.ndarray:
    """Read a headerless CSV data matrix written by :func:`save_points_csv`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such dataset file: {path}")
    rows: List[List[float]] = []
    with path.open(newline="") as handle:
        for lineno, row in enumerate(csv.reader(handle), start=1):
            if not row:
                continue
            try:
                rows.append([float(value) for value in row])
            except ValueError as exc:
                raise DatasetError(f"{path}:{lineno}: malformed row: {exc}") from exc
    if not rows:
        raise DatasetError(f"{path} contains no data rows")
    widths = {len(row) for row in rows}
    if len(widths) != 1:
        raise DatasetError(f"{path} has ragged rows (widths {sorted(widths)})")
    return check_data_matrix(np.asarray(rows))


def append_jsonl(path: PathLike, records: Iterable[Dict[str, Any]]) -> int:
    """Append JSON-lines records (used for evaluation/ground-truth logs).

    The batch is flushed and fsynced before the handle closes, so a crash
    *after* the call never loses acknowledged records; a crash *during*
    the call leaves at worst one truncated final line, which
    :func:`read_jsonl` recovers from.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("a") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
        handle.flush()
        os.fsync(handle.fileno())
    return count


#: policies for an unparseable final JSONL line (a crash-mid-append artifact)
TRUNCATED_POLICIES = ("skip", "quarantine", "raise")


def read_jsonl(
    path: PathLike, *, truncated: str = "skip", repair: bool = False
) -> List[Dict[str, Any]]:
    """Read all JSON-lines records from ``path`` (empty list if missing).

    An unparseable *final* line is the signature of a crash mid-append;
    ``truncated`` selects the recovery policy: ``"skip"`` (default) drops
    it with a warning, ``"quarantine"`` additionally preserves the bytes in
    ``<path>.quarantine`` for post-mortem, ``"raise"`` restores the strict
    behavior.  A malformed line *followed by valid records* is corruption,
    not truncation, and always raises :class:`DatasetError`.

    ``repair=True`` additionally rewrites the file without the dropped
    tail, so a later append cannot glue new bytes onto the partial line
    (which would turn a recoverable crash artifact into mid-file
    corruption).  Consumers that append after loading — the evaluation
    log — must repair.
    """
    if truncated not in TRUNCATED_POLICIES:
        raise ValueError(
            f"truncated must be one of {TRUNCATED_POLICIES}, got {truncated!r}"
        )
    path = Path(path)
    if not path.exists():
        return []
    raw_lines = path.read_text().splitlines()
    entries: List[Tuple[int, str]] = []
    for lineno, raw in enumerate(raw_lines, start=1):
        line = raw.strip()
        if line:
            entries.append((lineno, line))
    records: List[Dict[str, Any]] = []
    for position, (lineno, line) in enumerate(entries):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if position == len(entries) - 1 and truncated != "raise":
                if truncated == "quarantine":
                    quarantine = Path(str(path) + ".quarantine")
                    with quarantine.open("a") as handle:
                        handle.write(line + "\n")
                    where = f"; quarantined to {quarantine.name}"
                else:
                    where = ""
                warnings.warn(
                    f"{path}:{lineno}: dropping truncated trailing JSONL line "
                    f"({exc}){where}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                if repair:
                    good = "".join(raw + "\n" for raw in raw_lines[: lineno - 1])
                    path.write_text(good)
                break
            raise DatasetError(f"{path}:{lineno}: malformed JSON: {exc}") from exc
    return records
