"""Flat-file persistence for datasets and evaluation logs.

The original artifact reads UCI CSV files from disk; these helpers provide
the same workflow for the synthetic surrogates so examples and benchmarks can
cache generated data between runs.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

import numpy as np

from repro.common.exceptions import DatasetError
from repro.common.validation import check_data_matrix

PathLike = Union[str, Path]


def save_points_csv(path: PathLike, X: np.ndarray) -> None:
    """Write a data matrix as headerless CSV (one point per row)."""
    X = check_data_matrix(X)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        for row in X:
            writer.writerow([repr(float(value)) for value in row])


def load_points_csv(path: PathLike) -> np.ndarray:
    """Read a headerless CSV data matrix written by :func:`save_points_csv`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such dataset file: {path}")
    rows: List[List[float]] = []
    with path.open(newline="") as handle:
        for lineno, row in enumerate(csv.reader(handle), start=1):
            if not row:
                continue
            try:
                rows.append([float(value) for value in row])
            except ValueError as exc:
                raise DatasetError(f"{path}:{lineno}: malformed row: {exc}") from exc
    if not rows:
        raise DatasetError(f"{path} contains no data rows")
    widths = {len(row) for row in rows}
    if len(widths) != 1:
        raise DatasetError(f"{path} has ragged rows (widths {sorted(widths)})")
    return check_data_matrix(np.asarray(rows))


def append_jsonl(path: PathLike, records: Iterable[Dict[str, Any]]) -> int:
    """Append JSON-lines records (used for evaluation/ground-truth logs)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("a") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
    return count


def read_jsonl(path: PathLike) -> List[Dict[str, Any]]:
    """Read all JSON-lines records from ``path`` (empty list if missing)."""
    path = Path(path)
    if not path.exists():
        return []
    records: List[Dict[str, Any]] = []
    with path.open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise DatasetError(f"{path}:{lineno}: malformed JSON: {exc}") from exc
    return records
