"""Dataset substrate.

The paper evaluates on 15 real datasets (Table 2) that cannot be downloaded
in this offline environment, so :mod:`repro.datasets.registry` provides
deterministic synthetic surrogates matching each dataset's scale,
dimensionality, and qualitative distribution (see DESIGN.md, substitution
table).  :mod:`repro.datasets.synthetic` holds the underlying generators,
including the Gaussian generator used for the paper's Figure 18 study.
"""

from repro.datasets.registry import (
    DatasetSpec,
    dataset_names,
    get_dataset_spec,
    load_dataset,
)
from repro.datasets.synthetic import (
    make_anisotropic,
    make_annular,
    make_blobs,
    make_gaussian_quantiles,
    make_grid_clusters,
    make_mnist_like,
    make_spatial,
    make_uniform,
)

__all__ = [
    "DatasetSpec",
    "dataset_names",
    "get_dataset_spec",
    "load_dataset",
    "make_anisotropic",
    "make_blobs",
    "make_annular",
    "make_gaussian_quantiles",
    "make_grid_clusters",
    "make_mnist_like",
    "make_spatial",
    "make_uniform",
]
