"""Synthetic data generators.

These produce the workloads behind every experiment:

* :func:`make_blobs` — isotropic Gaussian mixtures, the workhorse surrogate
  for well-clustered UCI data (Kegg, Covtype, Skin, ...).
* :func:`make_spatial` — dense 2-D "urban" point clouds surrogating the NYC
  taxi and Europe datasets: many small hot spots plus background noise.
* :func:`make_mnist_like` — high-dimensional sparse-ish prototype-plus-noise
  data surrogating Mnist (d=784): most coordinates near zero, cluster
  structure weak relative to noise, which is exactly the regime where the
  paper finds pruning hard (Figure 17).
* :func:`make_uniform` — unstructured data, the worst case for all pruning.
* :func:`make_annular` — points on concentric rings; stresses norm-based
  bounds (Annular/Exponion) because norms alone carry little information
  within a ring.
* :func:`make_gaussian_quantiles` — the scikit-learn-style generator the
  paper uses in Section A.3 ("Effect of Data Distribution"), re-implemented
  here: a single isotropic Gaussian cut into ``k`` shells of equal mass.
* :func:`make_grid_clusters` — clusters centred on a regular lattice, giving
  perfectly assembling data where index pruning shines.

All generators take a ``seed`` and are fully deterministic given it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.common.rng import SeedLike, ensure_rng
from repro.common.validation import check_k, check_positive


def make_blobs(
    n: int,
    d: int,
    centers: int,
    *,
    cluster_std: float = 1.0,
    center_box: Tuple[float, float] = (-10.0, 10.0),
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Isotropic Gaussian mixture with ``centers`` components.

    Returns ``(X, y)`` where ``y`` holds the generating component of each
    point (useful for sanity checks, never consumed by the algorithms).
    """
    check_positive(float(n), "n")
    check_positive(float(d), "d")
    check_k(centers, n)
    rng = ensure_rng(seed)
    lo, hi = center_box
    means = rng.uniform(lo, hi, size=(centers, d))
    assignments = rng.integers(0, centers, size=n)
    X = means[assignments] + rng.normal(0.0, cluster_std, size=(n, d))
    return X, assignments


def make_uniform(
    n: int,
    d: int,
    *,
    low: float = 0.0,
    high: float = 1.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Uniform noise in a box — the pruning worst case."""
    rng = ensure_rng(seed)
    return rng.uniform(low, high, size=(n, d))


def make_spatial(
    n: int,
    *,
    hotspots: int = 40,
    hotspot_std: float = 0.01,
    background_fraction: float = 0.1,
    extent: Tuple[float, float] = (0.0, 1.0),
    seed: SeedLike = None,
) -> np.ndarray:
    """2-D spatial point cloud mimicking pick-up locations (NYC/Europe).

    A fraction of points is uniform background; the rest concentrates in
    tight hot spots whose sizes follow a heavy-tailed split, so a Ball-tree
    gets the small-radius leaves that drive the paper's 150-400x index
    speedups on NYC.
    """
    rng = ensure_rng(seed)
    lo, hi = extent
    n_background = int(n * background_fraction)
    n_clustered = n - n_background
    centers = rng.uniform(lo, hi, size=(hotspots, 2))
    weights = rng.pareto(1.5, size=hotspots) + 1.0
    weights /= weights.sum()
    counts = rng.multinomial(n_clustered, weights)
    parts = [rng.uniform(lo, hi, size=(n_background, 2))]
    for center, count in zip(centers, counts):
        if count:
            parts.append(center + rng.normal(0.0, hotspot_std, size=(count, 2)))
    X = np.concatenate(parts, axis=0)
    rng.shuffle(X)
    return X


def make_mnist_like(
    n: int,
    d: int = 784,
    *,
    prototypes: int = 10,
    active_fraction: float = 0.2,
    noise_std: float = 25.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """High-dimensional prototype-plus-noise data surrogating Mnist.

    Each prototype activates a random ~20% subset of coordinates with values
    in [0, 255]; points add heavy noise and clip to the valid range.  Cluster
    structure is weak relative to dimensionality, reproducing the regime
    where every method's pruning ratio collapses (Figure 17).
    """
    rng = ensure_rng(seed)
    protos = np.zeros((prototypes, d))
    for row in protos:
        active = rng.random(d) < active_fraction
        row[active] = rng.uniform(80.0, 255.0, size=int(active.sum()))
    assignments = rng.integers(0, prototypes, size=n)
    X = protos[assignments] + rng.normal(0.0, noise_std, size=(n, d))
    np.clip(X, 0.0, 255.0, out=X)
    return X


def make_annular(
    n: int,
    d: int,
    rings: int,
    *,
    ring_gap: float = 2.0,
    ring_std: float = 0.05,
    seed: SeedLike = None,
) -> np.ndarray:
    """Points on concentric hyperspherical shells."""
    rng = ensure_rng(seed)
    which = rng.integers(0, rings, size=n)
    radii = (which + 1) * ring_gap + rng.normal(0.0, ring_std, size=n)
    directions = rng.normal(size=(n, d))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    return directions * radii[:, None]


def make_gaussian_quantiles(
    n: int,
    d: int,
    k: int,
    *,
    variance: float = 1.0,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Single Gaussian divided into ``k`` equal-mass radial shells.

    Mirrors ``sklearn.datasets.make_gaussian_quantiles``, which the paper
    uses for its data-distribution study (Figure 18).  Returns ``(X, y)``
    with ``y`` the shell index.
    """
    rng = ensure_rng(seed)
    X = rng.normal(0.0, np.sqrt(variance), size=(n, d))
    radii = np.linalg.norm(X, axis=1)
    order = np.argsort(radii)
    y = np.empty(n, dtype=np.intp)
    # Equal-mass shells: the i-th n/k-quantile of the radius distribution.
    splits = np.array_split(order, k)
    for shell, idx in enumerate(splits):
        y[idx] = shell
    return X, y


def make_anisotropic(
    n: int,
    d: int,
    centers: int,
    *,
    anisotropy: float = 4.0,
    cluster_std: float = 1.0,
    center_box: Tuple[float, float] = (-10.0, 10.0),
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian mixture with a random elongation per component.

    Each component stretches one random direction by ``anisotropy``,
    producing the correlated, elongated clusters typical of real tabular
    data (Covtype/Census-style) that axis-aligned generators miss.  Useful
    for stressing index structures: elongated clusters inflate ball radii
    without hurting kd-tree boxes the same way.
    """
    check_k(centers, n)
    rng = ensure_rng(seed)
    lo, hi = center_box
    means = rng.uniform(lo, hi, size=(centers, d))
    directions = rng.normal(size=(centers, d))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    assignments = rng.integers(0, centers, size=n)
    noise = rng.normal(0.0, cluster_std, size=(n, d))
    # Stretch each point's noise along its component's direction.
    along = np.einsum("ij,ij->i", noise, directions[assignments])
    noise += (anisotropy - 1.0) * along[:, None] * directions[assignments]
    return means[assignments] + noise, assignments


def make_grid_clusters(
    n: int,
    d: int,
    side: int,
    *,
    jitter: float = 0.05,
    seed: SeedLike = None,
) -> np.ndarray:
    """Clusters on a ``side**d`` lattice with small jitter.

    The tightest "assembling" distribution: every leaf of a Ball-tree built
    on this data has a tiny radius, so batch pruning nearly always fires.
    """
    rng = ensure_rng(seed)
    axes = np.arange(side, dtype=np.float64)
    cells = side**d
    which = rng.integers(0, cells, size=n)
    coords = np.empty((n, d))
    remainder = which.copy()
    for dim in range(d):
        coords[:, dim] = axes[remainder % side]
        remainder //= side
    return coords + rng.normal(0.0, jitter, size=(n, d))
