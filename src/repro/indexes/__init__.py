"""Tree index substrate for index-based k-means (Section 3).

Five index structures are implemented, matching the paper's Section 7.2.1
comparison: Ball-tree, kd-tree, M-tree, Cover-tree, and the Hierarchical
k-means tree (HKT).  All of them expose the *advanced node* of Definition 1 —
pivot ``p``, radius ``r``, sum vector ``sv``, parent distance ``psi``, point
count ``num`` and height ``h`` — so the UniK pipeline can assign nodes and
points through one code path.
"""

from repro.indexes.anchors import AnchorsHierarchy
from repro.indexes.base import MetricTree, TreeNode, TreeStats
from repro.indexes.ball_tree import BallTree
from repro.indexes.cover_tree import CoverTree
from repro.indexes.hkt import HierarchicalKMeansTree
from repro.indexes.kd_tree import KDTree
from repro.indexes.m_tree import MTree

INDEX_CLASSES = {
    "ball-tree": BallTree,
    "kd-tree": KDTree,
    "m-tree": MTree,
    "cover-tree": CoverTree,
    "hkt": HierarchicalKMeansTree,
    "anchors": AnchorsHierarchy,
}


def build_index(name: str, X, **kwargs):
    """Build the index ``name`` over data matrix ``X``.

    ``name`` is one of ``ball-tree``, ``kd-tree``, ``m-tree``, ``cover-tree``
    or ``hkt``; extra keyword arguments are forwarded to the constructor.
    """
    try:
        cls = INDEX_CLASSES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(INDEX_CLASSES))
        raise KeyError(f"unknown index {name!r}; known indexes: {known}") from None
    return cls(X, **kwargs)


__all__ = [
    "TreeNode",
    "TreeStats",
    "MetricTree",
    "AnchorsHierarchy",
    "BallTree",
    "KDTree",
    "MTree",
    "CoverTree",
    "HierarchicalKMeansTree",
    "INDEX_CLASSES",
    "build_index",
]
