"""kd-tree (Bentley 1975) with the hyperrectangle metadata used by the
Pelleg-Moore / Kanungo filtering algorithm.

Splits are made on the widest dimension at the median.  The paper notes that
kd-tree leaves traditionally cover a single point, giving ~f times more nodes
than a Ball-tree with capacity f; ``capacity`` therefore defaults to 1 here
but is configurable.

Every node also carries the Definition 1 ball augmentation (computed
bottom-up from the actual points), so a kd-tree can serve in the unified
UniK pipeline; the box bounds (``lo``/``hi``) additionally enable the
kd-specific hyperplane pruning of Section 3.1.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.indexes.base import MetricTree, TreeNode, make_internal, make_leaf


class KDTree(MetricTree):
    """kd-tree with per-node bounding boxes and ball augmentation."""

    name = "kd-tree"

    def __init__(self, X, *, capacity: int = 1, counters=None) -> None:
        #: bounding boxes keyed by node id: (lo, hi) corner vectors
        self.boxes: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        super().__init__(X, capacity=capacity, counters=counters)

    def _build(self) -> TreeNode:
        indices = np.arange(len(self.X), dtype=np.intp)
        return self._build_node(indices)

    def _build_node(self, indices: np.ndarray) -> TreeNode:
        # repro: ignore[R003] — index construction; build cost is modeled by distance/node counters
        points = self.X[indices]
        lo = points.min(axis=0)
        hi = points.max(axis=0)
        if len(indices) <= self.capacity or np.all(hi == lo):
            node = make_leaf(self.X, indices, height=0, counters=self.counters)
            self.boxes[id(node)] = (lo, hi)
            return node
        widths = hi - lo
        dim = int(np.argmax(widths))
        values = points[:, dim]
        cut = float(np.median(values))
        left_mask = values <= cut
        if left_mask.all() or not left_mask.any():
            # Median equals the max (heavily duplicated values): split evenly.
            order = np.argsort(values, kind="stable")
            left_mask = np.zeros(len(indices), dtype=bool)
            left_mask[order[: len(indices) // 2]] = True
        children = [
            self._build_node(indices[left_mask]),
            self._build_node(indices[~left_mask]),
        ]
        height = 1 + max(child.height for child in children)
        node = make_internal(children, height, counters=self.counters)
        self.boxes[id(node)] = (lo, hi)
        return node

    def box(self, node: TreeNode) -> Tuple[np.ndarray, np.ndarray]:
        """Bounding box (lo, hi) of ``node``."""
        return self.boxes[id(node)]

    def farthest_corner(self, node: TreeNode, direction: np.ndarray) -> np.ndarray:
        """Corner of ``node``'s box farthest in ``direction``.

        This is the decisive test of the filtering algorithm: candidate
        centroid ``c`` is pruned for the whole cell if even the corner
        farthest towards ``c`` (relative to the current best centroid) is
        still closer to the best centroid.
        """
        lo, hi = self.boxes[id(node)]
        return np.where(direction >= 0.0, hi, lo)
