"""M-tree (Ciaccia, Patella, Zezula 1997), insertion-built.

Points are inserted one at a time, descending to the child whose routing
pivot is closest (minimum radius enlargement as tiebreak).  Overflowing
nodes split by promoting the farthest pair of their entries and partitioning
by proximity (the generalized-hyperplane policy).  After all insertions the
routing structure is converted into Definition 1 nodes with exact ``sv``,
``num`` and mean pivots, so the M-tree plugs into the same clustering
pipeline as every other index.

The conversion preserves what matters for the paper's comparison — the
*grouping* the M-tree induces — while giving it the same augmented-node
interface.  Insertion-based construction is also why the M-tree is by far
the slowest index to build (paper Figure 7), which this implementation
reproduces.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.common.distance import euclidean, one_to_many_distances
from repro.indexes.base import MetricTree, TreeNode, make_internal, make_leaf


class _MEntry:
    """Routing entry during insertion: a pivot, radius, and payload."""

    __slots__ = ("pivot", "radius", "child", "point_index")

    def __init__(self, pivot, radius=0.0, child=None, point_index=None):
        self.pivot = pivot
        self.radius = float(radius)
        self.child = child
        self.point_index = point_index


class _MNode:
    """Mutable M-tree node used only during construction."""

    __slots__ = ("entries", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.entries: List[_MEntry] = []
        self.is_leaf = is_leaf


class MTree(MetricTree):
    """Insertion-built M-tree converted to augmented nodes."""

    name = "m-tree"

    def _build(self) -> TreeNode:
        self._root = _MNode(is_leaf=True)
        for i in range(len(self.X)):
            self._insert(int(i))
        converted = self._convert(self._root)
        del self._root
        return converted

    # ------------------------------------------------------------------
    # Insertion machinery.
    # ------------------------------------------------------------------

    def _insert(self, index: int) -> None:
        point = self.X[index]
        path: List[_MNode] = []
        node = self._root
        while not node.is_leaf:
            path.append(node)
            entry = self._choose_subtree(node, point)
            entry.radius = max(entry.radius, self._dist(entry.pivot, point))
            node = entry.child
        node.entries.append(_MEntry(point, 0.0, point_index=index))
        if len(node.entries) > self.capacity:
            self._split(node, path)

    def _choose_subtree(self, node: _MNode, point: np.ndarray) -> _MEntry:
        best: Optional[_MEntry] = None
        best_key = (np.inf, np.inf)
        for entry in node.entries:
            dist = self._dist(entry.pivot, point)
            enlargement = max(0.0, dist - entry.radius)
            key = (enlargement, dist)
            if key < best_key:
                best_key = key
                best = entry
        assert best is not None
        return best

    def _split(self, node: _MNode, path: List[_MNode]) -> None:
        entries = node.entries
        p1, p2 = self._promote(entries)
        group1: List[_MEntry] = []
        group2: List[_MEntry] = []
        for entry in entries:
            d1 = self._dist(entry.pivot, p1.pivot)
            d2 = self._dist(entry.pivot, p2.pivot)
            (group1 if d1 <= d2 else group2).append(entry)
        if not group1 or not group2:
            half = len(entries) // 2
            group1, group2 = entries[:half], entries[half:]
        left = _MNode(node.is_leaf)
        left.entries = group1
        right = _MNode(node.is_leaf)
        right.entries = group2
        routing_left = self._routing_entry(left, p1.pivot)
        routing_right = self._routing_entry(right, p2.pivot)
        if path:
            parent = path[-1]
            parent.entries = [e for e in parent.entries if e.child is not node]
            parent.entries.extend([routing_left, routing_right])
            if len(parent.entries) > self.capacity:
                self._split(parent, path[:-1])
        else:
            new_root = _MNode(is_leaf=False)
            new_root.entries = [routing_left, routing_right]
            self._root = new_root

    def _promote(self, entries: List[_MEntry]):
        """Promote the farthest pair (two-pass heuristic, as in Ball-tree)."""
        pivots = np.array([e.pivot for e in entries])
        d0 = self._dists(pivots, pivots[0])
        i1 = int(np.argmax(d0))
        d1 = self._dists(pivots, pivots[i1])
        i2 = int(np.argmax(d1))
        if i1 == i2:
            i2 = (i1 + 1) % len(entries)
        return entries[i1], entries[i2]

    def _routing_entry(self, node: _MNode, pivot: np.ndarray) -> _MEntry:
        radius = 0.0
        for entry in node.entries:
            radius = max(radius, self._dist(pivot, entry.pivot) + entry.radius)
        return _MEntry(pivot, radius, child=node)

    # ------------------------------------------------------------------
    # Conversion to Definition 1 nodes.
    # ------------------------------------------------------------------

    def _convert(self, node: _MNode) -> TreeNode:
        if node.is_leaf:
            indices = np.array(
                [entry.point_index for entry in node.entries], dtype=np.intp
            )
            return make_leaf(self.X, indices, height=0, counters=self.counters)
        children = [self._convert(entry.child) for entry in node.entries]
        height = 1 + max(child.height for child in children)
        return make_internal(children, height, counters=self.counters)

    # ------------------------------------------------------------------
    # Counted distance helpers.
    # ------------------------------------------------------------------

    def _dist(self, a: np.ndarray, b: np.ndarray) -> float:
        return euclidean(a, b, self.counters)

    def _dists(self, points: np.ndarray, center: np.ndarray) -> np.ndarray:
        return one_to_many_distances(center, points, self.counters)
