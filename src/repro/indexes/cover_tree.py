"""Cover-tree (Beygelzimer, Kakade, Langford 2006), batch-built.

This is the standard *simplified batch* construction: at each level a greedy
cover of the current point set is selected at scale ``s`` (every point lies
within ``s`` of some selected center, centers are pairwise > ``s`` apart in
greedy order), points are grouped with their nearest center, and each group
recurses at scale ``s / 2``.  The result has the cover-tree signature of
geometrically shrinking node radii.

Like the paper's Cover-tree, there is no capacity parameter: recursion stops
when a group becomes a single (possibly duplicated) point or the scale
collapses, and small groups become leaves directly.  Nodes are converted to
the Definition 1 augmentation bottom-up.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.common.distance import chunked_sq_distances, one_to_many_distances
from repro.indexes.base import MetricTree, TreeNode, make_internal, make_leaf

#: groups at or below this size become leaves (not a tunable capacity; just
#: the point where further cover levels cannot help)
_MIN_GROUP = 4


class CoverTree(MetricTree):
    """Simplified batch cover tree with greedy covers at halving scales."""

    name = "cover-tree"

    def __init__(self, X, *, capacity: int = _MIN_GROUP, counters=None) -> None:
        # ``capacity`` kept for interface uniformity; the paper notes the
        # cover tree has no real capacity knob, so it only bounds leaf size.
        super().__init__(X, capacity=capacity, counters=counters)

    def _build(self) -> TreeNode:
        indices = np.arange(len(self.X), dtype=np.intp)
        if len(indices) <= self.capacity:
            return make_leaf(self.X, indices, height=0, counters=self.counters)
        # repro: ignore[R003] — index construction; build cost is modeled by distance/node counters
        points = self.X[indices]
        center = points.mean(axis=0)
        spread = self._dists(points, center)
        scale = float(spread.max())
        return self._build_level(indices, scale)

    # repro: ignore[R010] — index construction; `_greedy_cover` only gathers
    # build-time working sets, its distances are charged through `_dists`
    def _build_level(self, indices: np.ndarray, scale: float) -> TreeNode:
        if len(indices) <= self.capacity or scale <= 1e-12:
            return make_leaf(self.X, indices, height=0, counters=self.counters)
        centers = self._greedy_cover(indices, scale)
        if len(centers) == 1:
            # One center covers everything at this scale; descend a scale.
            return self._build_level(indices, scale / 2.0)
        groups = self._assign_groups(indices, centers)
        children = [
            self._build_level(group, scale / 2.0) for group in groups if len(group)
        ]
        if len(children) == 1:
            return children[0]
        height = 1 + max(child.height for child in children)
        return make_internal(children, height, counters=self.counters)

    def _greedy_cover(self, indices: np.ndarray, scale: float) -> np.ndarray:
        """Greedy scale-``scale`` cover of ``X[indices]`` (center indices)."""
        points = self.X[indices]
        uncovered = np.ones(len(indices), dtype=bool)
        centers: List[int] = []
        while uncovered.any():
            pick = int(np.argmax(uncovered))  # first uncovered point
            centers.append(pick)
            dists = self._dists(points[uncovered], points[pick])
            still = np.flatnonzero(uncovered)
            uncovered[still[dists <= scale]] = False
        return np.asarray(centers, dtype=np.intp)

    def _assign_groups(
        self, indices: np.ndarray, centers: np.ndarray
    ) -> List[np.ndarray]:
        # repro: ignore[R003] — index construction; build cost is modeled by distance/node counters
        points = self.X[indices]
        center_points = points[centers]
        sq = chunked_sq_distances(points, center_points, self.counters)
        nearest = np.argmin(sq, axis=1)
        return [indices[nearest == g] for g in range(len(centers))]

    def _dists(self, points: np.ndarray, center: np.ndarray) -> np.ndarray:
        return one_to_many_distances(center, points, self.counters)
