"""Hierarchical k-means tree (Fukunaga & Narendra 1975).

Each internal node partitions its points with a small k-means (branching
factor ``branching``, a handful of Lloyd iterations on the raw points), and
children recurse until ``capacity`` is reached.  This gives data-adaptive
splits at the cost of a more expensive construction — the trade-off the
paper's Figure 7 measures.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.common.distance import chunked_sq_distances
from repro.common.rng import SeedLike, ensure_rng
from repro.indexes.base import MetricTree, TreeNode, make_internal, make_leaf


class HierarchicalKMeansTree(MetricTree):
    """HKT with vectorized mini Lloyd runs per split."""

    name = "hkt"

    def __init__(
        self,
        X,
        *,
        capacity: int = 30,
        branching: int = 8,
        split_iterations: int = 5,
        seed: SeedLike = 0,
        counters=None,
    ) -> None:
        if branching < 2:
            raise ValueError(f"branching must be >= 2, got {branching}")
        self.branching = int(branching)
        self.split_iterations = int(split_iterations)
        self._rng = ensure_rng(seed)
        super().__init__(X, capacity=capacity, counters=counters)

    def _build(self) -> TreeNode:
        indices = np.arange(len(self.X), dtype=np.intp)
        return self._build_node(indices)

    def _build_node(self, indices: np.ndarray) -> TreeNode:
        if len(indices) <= self.capacity:
            return make_leaf(self.X, indices, height=0, counters=self.counters)
        groups = self._split_kmeans(indices)
        if len(groups) <= 1:
            return make_leaf(self.X, indices, height=0, counters=self.counters)
        children = [self._build_node(group) for group in groups]
        height = 1 + max(child.height for child in children)
        return make_internal(children, height, counters=self.counters)

    def _split_kmeans(self, indices: np.ndarray) -> List[np.ndarray]:
        """Partition ``X[indices]`` with a small vectorized Lloyd run."""
        # repro: ignore[R003] — index construction; build cost is modeled by distance/node counters
        points = self.X[indices]
        b = min(self.branching, len(indices))
        seeds = self._rng.choice(len(indices), size=b, replace=False)
        centroids = points[seeds].copy()
        labels = np.zeros(len(indices), dtype=np.intp)
        for iteration in range(self.split_iterations):
            sq = chunked_sq_distances(points, centroids, self.counters)
            new_labels = np.argmin(sq, axis=1)
            if iteration > 0 and np.array_equal(new_labels, labels):
                break
            labels = new_labels
            for g in range(len(centroids)):
                members = points[labels == g]
                if len(members):
                    centroids[g] = members.mean(axis=0)
        groups = [indices[labels == g] for g in range(len(centroids))]
        return [group for group in groups if len(group)]
