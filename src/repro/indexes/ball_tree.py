"""Ball-tree (Omohundro 1989; Uhlmann 1991) — the paper's default index.

Construction uses the classic top-down two-pivot split: pick the point
farthest from a seed, then the point farthest from it, and partition by
proximity.  Leaves hold up to ``capacity`` points (paper default f = 30);
every node carries the Definition 1 augmentation computed bottom-up.
"""

from __future__ import annotations


import numpy as np

from repro.common.distance import one_to_many_distances
from repro.indexes.base import MetricTree, TreeNode, make_internal, make_leaf


class BallTree(MetricTree):
    """Augmented Ball-tree with two-way farthest-pair splits."""

    name = "ball-tree"

    def _build(self) -> TreeNode:
        indices = np.arange(len(self.X), dtype=np.intp)
        return self._build_node(indices)

    # repro: ignore[R010] — index construction; `_split` only gathers build-time
    # working sets, and every distance it computes is charged through `_dists`
    def _build_node(self, indices: np.ndarray) -> TreeNode:
        if len(indices) <= self.capacity:
            return make_leaf(self.X, indices, height=0, counters=self.counters)
        left_idx, right_idx = self._split(indices)
        if len(left_idx) == 0 or len(right_idx) == 0:
            # Degenerate split (all points identical): stop recursing.
            return make_leaf(self.X, indices, height=0, counters=self.counters)
        children = [self._build_node(left_idx), self._build_node(right_idx)]
        height = 1 + max(child.height for child in children)
        return make_internal(children, height, counters=self.counters)

    def _split(self, indices: np.ndarray) -> tuple:
        """Farthest-pair split: two passes of farthest-point search."""
        points = self.X[indices]
        seed = points[0]
        d0 = self._dists(points, seed)
        p1 = points[int(np.argmax(d0))]
        d1 = self._dists(points, p1)
        p2 = points[int(np.argmax(d1))]
        d2 = self._dists(points, p2)
        left_mask = d1 <= d2
        # Guard against all points collapsing to one side on exact ties.
        if left_mask.all() or not left_mask.any():
            half = len(indices) // 2
            order = np.argsort(d1, kind="stable")
            left_mask = np.zeros(len(indices), dtype=bool)
            left_mask[order[:half]] = True
        return indices[left_mask], indices[~left_mask]

    def _dists(self, points: np.ndarray, center: np.ndarray) -> np.ndarray:
        return one_to_many_distances(center, points, self.counters)
