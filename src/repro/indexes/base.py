"""Common node and tree machinery for all five index structures.

:class:`TreeNode` is the paper's Definition 1: every node — regardless of
which tree built it — carries a pivot point ``p`` (the mean of the points it
covers), a covering radius ``r``, the sum vector ``sv`` of its points, the
distance ``psi`` from its pivot to its parent's pivot, the covered point
count ``num``, and its height ``h``.  Leaves additionally hold the indices of
their points.

The sum vector and count are what make the *incremental refinement* of
Section 5.1.2 possible: a whole node can move between clusters by adding and
subtracting ``sv``/``num`` without touching its points.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.common.distance import euclidean, one_to_many_distances
from repro.common.validation import check_data_matrix, check_positive
from repro.instrumentation.counters import OpCounters


class TreeNode:
    """Augmented index node (paper Definition 1)."""

    __slots__ = (
        "pivot",
        "radius",
        "sv",
        "psi",
        "children",
        "point_indices",
        "num",
        "height",
    )

    def __init__(
        self,
        pivot: np.ndarray,
        radius: float,
        sv: np.ndarray,
        num: int,
        height: int,
        *,
        psi: float = 0.0,
        children: Optional[List["TreeNode"]] = None,
        point_indices: Optional[np.ndarray] = None,
    ) -> None:
        self.pivot = pivot
        self.radius = float(radius)
        self.sv = sv
        self.num = int(num)
        self.height = int(height)
        self.psi = float(psi)
        self.children = children if children is not None else []
        self.point_indices = point_indices

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def iter_subtree(self) -> Iterator["TreeNode"]:
        """Yield this node and every descendant (pre-order)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def subtree_point_indices(self) -> np.ndarray:
        """Indices of every point covered by this node."""
        parts = [
            node.point_indices
            for node in self.iter_subtree()
            if node.point_indices is not None
        ]
        if not parts:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else f"internal[{len(self.children)}]"
        return f"TreeNode({kind}, num={self.num}, r={self.radius:.4g}, h={self.height})"


@dataclass(frozen=True)
class FlatTree:
    """Array-of-structs view of a tree in left-to-right pre-order.

    Built once per tree by :meth:`MetricTree.preorder_flat` and cached —
    the arrays are pure tree metadata, invariant after construction, and
    the frontier-batched traversal of ``repro.core.vectorized`` consumes
    them on every ``fit`` (the benchmark's prebuilt-tree workload would
    otherwise pay the flattening walk per run).

    ``nodes[r]`` is the node with pre-order rank ``r``; ``pivots``/``radii``/
    ``svs`` stack its ball and sum vector, ``leaf_flags[r]`` marks leaves,
    and its children's ranks are ``child_flat[child_offsets[r]:
    child_offsets[r + 1]]`` (CSR-style ragged layout, so whole frontiers
    expand with one gather).  ``perm`` concatenates leaf ``point_indices``
    in pre-order, so rank ``r``'s subtree covers exactly
    ``perm[subtree_starts[r]:subtree_ends[r]]`` — an O(1) replacement for
    :meth:`TreeNode.subtree_point_indices` when the visit order does not
    matter (bulk label writes).
    """

    nodes: List[TreeNode]
    pivots: np.ndarray
    radii: np.ndarray
    svs: np.ndarray
    leaf_flags: np.ndarray
    child_flat: np.ndarray
    child_offsets: np.ndarray
    perm: np.ndarray
    subtree_starts: np.ndarray
    subtree_ends: np.ndarray


@dataclass(frozen=True)
class TreeStats:
    """Aggregate statistics consumed as meta-features (paper Table 1)."""

    height: int
    n_internal: int
    n_leaves: int
    leaf_height_mean: float
    leaf_height_std: float
    leaf_radius_mean: float
    leaf_radius_std: float
    leaf_psi_mean: float
    leaf_psi_std: float
    leaf_size_mean: float
    leaf_size_std: float
    root_radius: float

    @property
    def n_nodes(self) -> int:
        return self.n_internal + self.n_leaves


def make_leaf(
    X: np.ndarray,
    indices: np.ndarray,
    height: int,
    counters: Optional[OpCounters] = None,
) -> TreeNode:
    """Construct a leaf node covering ``X[indices]`` with exact statistics.

    The covering-radius scan evaluates one distance per covered point; when
    ``counters`` is given those are charged as construction cost (part of
    the paper's Figure 7 build-cost comparison).
    """
    points = X[indices]
    sv = points.sum(axis=0)
    pivot = sv / len(indices)
    radius = (
        float(one_to_many_distances(pivot, points, counters).max())
        if len(points)
        else 0.0
    )
    return TreeNode(
        pivot, radius, sv, len(indices), height,
        point_indices=np.asarray(indices, dtype=np.intp),
    )


def make_internal(
    children: Sequence[TreeNode],
    height: int,
    counters: Optional[OpCounters] = None,
) -> TreeNode:
    """Construct an internal node aggregating ``children``.

    The pivot is the mass-weighted mean of child pivots (i.e. the exact mean
    of all covered points because child ``sv`` are exact); the radius is the
    smallest ball around that pivot covering every child ball; each child's
    ``psi`` is set to its distance from the new pivot (Eq. 12 plumbing).
    One pivot-gap distance per child is charged to ``counters``.
    """
    sv = np.sum([child.sv for child in children], axis=0)
    num = sum(child.num for child in children)
    pivot = sv / num
    radius = 0.0
    for child in children:
        dist = euclidean(child.pivot, pivot, counters)
        child.psi = dist
        radius = max(radius, dist + child.radius)
    return TreeNode(pivot, radius, sv, num, height, children=list(children))


class MetricTree(abc.ABC):
    """Base class for the five index structures.

    Subclasses implement :meth:`_build` returning the root
    :class:`TreeNode`; construction-time counters record the distance
    computations spent building (part of the Figure 7 comparison).
    """

    #: human-readable index name, overridden by subclasses
    name: str = "metric-tree"

    def __init__(
        self,
        X: np.ndarray,
        *,
        capacity: int = 30,
        counters: Optional[OpCounters] = None,
    ) -> None:
        self.X = check_data_matrix(X)
        check_positive(capacity, "capacity")
        self.capacity = int(capacity)
        self.counters = counters if counters is not None else OpCounters()
        self.root = self._build()
        self.root.psi = 0.0
        self._flat: Optional[FlatTree] = None

    @abc.abstractmethod
    def _build(self) -> TreeNode:
        """Build and return the root node over ``self.X``."""

    # ------------------------------------------------------------------
    # Generic queries shared by all ball-shaped trees.
    # ------------------------------------------------------------------

    def range_search(
        self, center: np.ndarray, radius: float, counters: Optional[OpCounters] = None
    ) -> np.ndarray:
        """Indices of all points within ``radius`` of ``center``.

        Used by the pre-assignment Search method (Section 3.2).  Whole
        subtrees strictly inside the query ball are reported without
        per-point distance computations.
        """
        counters = counters if counters is not None else self.counters
        hits: List[np.ndarray] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            counters.add_node_accesses()
            dist = euclidean(node.pivot, center, counters)
            if dist - node.radius > radius:
                continue  # ball entirely outside the query
            if dist + node.radius <= radius:
                hits.append(node.subtree_point_indices())
                continue  # ball entirely inside: take it wholesale
            if node.is_leaf:
                points = self.X[node.point_indices]
                counters.add_point_accesses(len(points))
                dists = one_to_many_distances(center, points, counters)
                hits.append(node.point_indices[dists <= radius])
            else:
                stack.extend(node.children)
        if not hits:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(hits)

    def knn_search(
        self,
        query: np.ndarray,
        n_neighbors: int,
        counters: Optional[OpCounters] = None,
    ) -> np.ndarray:
        """Indices of the ``n_neighbors`` nearest points to ``query``.

        Classic best-first branch-and-bound over the ball structure: nodes
        are visited in order of their optimistic distance
        ``max(0, d(query, pivot) - radius)`` and pruned once that bound
        exceeds the current k-th best distance.  Ties break toward lower
        point indices, matching a stable brute-force scan.
        """
        import heapq

        counters = counters if counters is not None else self.counters
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        n_neighbors = min(n_neighbors, len(self.X))
        # Max-heap of the current best (negative distance, negative index).
        best: List[tuple] = []

        def kth_distance() -> float:
            return -best[0][0] if len(best) == n_neighbors else np.inf

        def offer(dist: float, index: int) -> None:
            item = (-dist, -index)
            if len(best) < n_neighbors:
                heapq.heappush(best, item)
            elif item > best[0]:
                heapq.heapreplace(best, item)

        root_dist = euclidean(self.root.pivot, query, counters)
        frontier = [(max(0.0, root_dist - self.root.radius), 0, self.root)]
        tiebreak = 1
        while frontier:
            bound, _, node = heapq.heappop(frontier)
            if bound > kth_distance():
                continue
            counters.add_node_accesses(1)
            if node.is_leaf:
                points = self.X[node.point_indices]
                counters.add_point_accesses(len(points))
                dists = one_to_many_distances(query, points, counters)
                for pos in np.argsort(dists, kind="stable"):
                    offer(float(dists[pos]), int(node.point_indices[pos]))
            else:
                for child in node.children:
                    dist = euclidean(child.pivot, query, counters)
                    child_bound = max(0.0, dist - child.radius)
                    if child_bound <= kth_distance():
                        heapq.heappush(frontier, (child_bound, tiebreak, child))
                        tiebreak += 1
        ordered = sorted(best, key=lambda item: (-item[0], -item[1]))
        return np.asarray([-index for _, index in ordered], dtype=np.intp)

    # ------------------------------------------------------------------
    # Statistics / meta-features.
    # ------------------------------------------------------------------

    def node_count(self) -> int:
        return sum(1 for _ in self.root.iter_subtree())

    def preorder_nodes(self) -> List[TreeNode]:
        """Every node in left-to-right pre-order (parent before children,
        children in stored order).

        This is exactly the order in which a depth-first descent like
        ``IndexKMeans._descend`` visits nodes, so a node's position in this
        list serializes frontier-batched traversal decisions back into the
        reference's sequential apply order (``repro.core.vectorized``).
        ``iter_subtree`` is also pre-order but visits children right-to-left
        (it is a stack, order-agnostic for aggregation); here order is the
        point, so children are pushed reversed.
        """
        out: List[TreeNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(node.children))
        return out

    def preorder_flat(self) -> FlatTree:
        """Cached :class:`FlatTree` view (see its docstring).

        The tree is immutable after construction, so the flattening is
        computed on first call and reused by every subsequent ``fit``.
        """
        if self._flat is not None:
            return self._flat
        nodes = self.preorder_nodes()
        rank = {id(node): r for r, node in enumerate(nodes)}
        n_nodes = len(nodes)
        starts = np.zeros(n_nodes, dtype=np.intp)
        ends = np.zeros(n_nodes, dtype=np.intp)
        perm_parts: List[np.ndarray] = []
        offset = 0
        stack = [(self.root, False)]
        while stack:
            node, closed = stack.pop()
            node_rank = rank[id(node)]
            if closed:
                ends[node_rank] = offset
                continue
            starts[node_rank] = offset
            stack.append((node, True))
            if node.is_leaf:
                perm_parts.append(node.point_indices)
                offset += len(node.point_indices)
            else:
                stack.extend((child, False) for child in reversed(node.children))
        child_offsets = np.zeros(n_nodes + 1, dtype=np.intp)
        np.cumsum([len(node.children) for node in nodes], out=child_offsets[1:])
        child_flat = np.fromiter(
            (rank[id(child)] for node in nodes for child in node.children),
            dtype=np.intp,
            count=int(child_offsets[-1]),
        )
        self._flat = FlatTree(
            nodes=nodes,
            pivots=np.ascontiguousarray(np.stack([node.pivot for node in nodes])),
            radii=np.array([node.radius for node in nodes]),
            svs=np.ascontiguousarray(np.stack([node.sv for node in nodes])),
            leaf_flags=np.array([node.is_leaf for node in nodes]),
            child_flat=child_flat,
            child_offsets=child_offsets,
            perm=(
                np.concatenate(perm_parts)
                if perm_parts
                else np.empty(0, dtype=np.intp)
            ),
            subtree_starts=starts,
            subtree_ends=ends,
        )
        return self._flat

    def leaves(self) -> List[TreeNode]:
        return [node for node in self.root.iter_subtree() if node.is_leaf]

    def stats(self) -> TreeStats:
        """Compute the Table 1 tree/leaf meta-feature aggregates.

        The "imbalance of tree" features use leaf *depths* (distance from
        the root): a balanced tree has equal depths (std 0); skewed splits
        show up as depth variance.
        """
        leaf_depths: List[int] = []
        leaf_radii: List[float] = []
        leaf_psis: List[float] = []
        leaf_sizes: List[int] = []
        n_internal = 0
        max_height = self.root.height
        stack = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            if node.is_leaf:
                leaf_depths.append(depth)
                leaf_radii.append(node.radius)
                leaf_psis.append(node.psi)
                leaf_sizes.append(node.num)
            else:
                n_internal += 1
                stack.extend((child, depth + 1) for child in node.children)
        leaf_heights = leaf_depths
        heights = np.asarray(leaf_heights, dtype=float)
        radii = np.asarray(leaf_radii, dtype=float)
        psis = np.asarray(leaf_psis, dtype=float)
        sizes = np.asarray(leaf_sizes, dtype=float)
        return TreeStats(
            height=max_height,
            n_internal=n_internal,
            n_leaves=len(leaf_heights),
            leaf_height_mean=float(heights.mean()),
            leaf_height_std=float(heights.std()),
            leaf_radius_mean=float(radii.mean()),
            leaf_radius_std=float(radii.std()),
            leaf_psi_mean=float(psis.mean()),
            leaf_psi_std=float(psis.std()),
            leaf_size_mean=float(sizes.mean()),
            leaf_size_std=float(sizes.std()),
            root_radius=self.root.radius,
        )

    def space_cost_floats(self) -> int:
        """Auxiliary memory estimate in float64 slots (paper Section A.2).

        Each leaf stores two vectors (pivot, sv), four scalars and up to
        ``f`` point indices (~``2d + 4 + f``); internal nodes store two
        vectors, four scalars and child pointers (~``2d + 6``).
        """
        d = self.X.shape[1]
        total = 0
        for node in self.root.iter_subtree():
            if node.is_leaf:
                total += 2 * d + 4 + len(node.point_indices)
            else:
                total += 2 * d + 4 + len(node.children)
        return total

    def check_invariants(self) -> None:
        """Raise AssertionError if Definition 1 invariants are violated.

        Verified: every point lies within its leaf's ball; every child ball
        lies within its parent's ball; ``sv``/``num`` aggregate exactly;
        ``psi`` matches the parent-pivot distance; all points appear in
        exactly one leaf.
        """
        seen = np.zeros(len(self.X), dtype=bool)
        for node in self.root.iter_subtree():
            assert node.num > 0
            if node.is_leaf:
                idx = node.point_indices
                assert len(np.unique(idx)) == len(idx), "duplicate index in leaf"
                assert not seen[idx].any(), "point covered by two leaves"
                seen[idx] = True
                pts = self.X[idx]
                # repro: ignore[R001] — brute-force invariant oracle, deliberately uncounted
                dists = np.linalg.norm(pts - node.pivot, axis=1)
                assert dists.max() <= node.radius + 1e-7
                assert np.allclose(node.sv, pts.sum(axis=0), atol=1e-6)
                assert node.num == len(idx)
            else:
                assert node.num == sum(c.num for c in node.children)
                assert np.allclose(
                    node.sv, np.sum([c.sv for c in node.children], axis=0), atol=1e-6
                )
                for child in node.children:
                    # repro: ignore[R001] — brute-force invariant oracle, deliberately uncounted
                    gap = float(np.linalg.norm(child.pivot - node.pivot))
                    assert abs(child.psi - gap) <= 1e-7
                    assert gap + child.radius <= node.radius + 1e-7
        assert seen.all(), "some points not covered by any leaf"
