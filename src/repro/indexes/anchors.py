"""The Anchors Hierarchy (Moore 2000) — the paper's reference [51].

Moore's construction, built "middle-out" rather than top-down:

1. **Anchor growing** — start from one anchor owning every point (each
   anchor keeps its points sorted by distance, descending).  Repeatedly
   promote the point farthest from its anchor to a new anchor, which then
   *steals* points closer to it.  The triangle inequality prunes the steal
   scan: once an owner's sorted list reaches a point with
   ``d(point, old_anchor) < d(old_anchor, new_anchor) / 2`` no later point
   can be stolen.  About ``sqrt(n)`` anchors are grown.
2. **Agglomeration** — anchors merge bottom-up, always the pair whose
   merged covering ball is smallest, producing the internal binary
   structure.
3. **Recursion** — anchors owning more than ``capacity`` points build a
   sub-hierarchy of their own.

The result exposes the same Definition 1 nodes as every other index here,
so it plugs into IndexKMeans and UniK unchanged.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.common.distance import euclidean, one_to_many_distances
from repro.indexes.base import MetricTree, TreeNode, make_internal, make_leaf


class _Anchor:
    """A growing anchor: pivot point plus owned points sorted by distance
    (descending, so the farthest point is first)."""

    __slots__ = ("pivot_index", "points", "dists")

    def __init__(self, pivot_index: int, points: np.ndarray, dists: np.ndarray):
        order = np.argsort(-dists, kind="stable")
        self.pivot_index = pivot_index
        self.points = points[order]
        self.dists = dists[order]

    @property
    def radius(self) -> float:
        return float(self.dists[0]) if len(self.dists) else 0.0


class AnchorsHierarchy(MetricTree):
    """Moore's anchors hierarchy with triangle-inequality stealing."""

    name = "anchors"

    def _build(self) -> TreeNode:
        indices = np.arange(len(self.X), dtype=np.intp)
        return self._build_node(indices)

    # repro: ignore[R010] — index construction; `_grow_anchors` only reads the
    # seed pivot vector, and every distance it computes is charged via `_dists`
    def _build_node(self, indices: np.ndarray) -> TreeNode:
        if len(indices) <= self.capacity:
            return make_leaf(self.X, indices, height=0, counters=self.counters)
        anchors = self._grow_anchors(indices)
        nonempty = [anchor for anchor in anchors if len(anchor.points)]
        if len(nonempty) <= 1:
            # Degenerate data (all points identical): growing cannot split.
            return make_leaf(self.X, indices, height=0, counters=self.counters)
        children = [self._build_node(anchor.points) for anchor in nonempty]
        return self._agglomerate(children)

    # ------------------------------------------------------------------
    # Phase 1: anchor growing with stealing.
    # ------------------------------------------------------------------

    def _grow_anchors(self, indices: np.ndarray) -> List[_Anchor]:
        target = max(2, int(math.ceil(math.sqrt(len(indices)))))
        first = int(indices[0])
        dists = self._dists(indices, self.X[first])
        anchors = [_Anchor(first, indices.copy(), dists)]
        while len(anchors) < target:
            # The new anchor is the point farthest from its current anchor.
            donor = max(anchors, key=lambda a: a.radius)
            if donor.radius <= 0.0 or len(donor.points) <= 1:
                break
            new_pivot = int(donor.points[0])
            new_anchor = self._steal(anchors, new_pivot)
            anchors.append(new_anchor)
        return anchors

    def _steal(self, anchors: List[_Anchor], new_pivot: int) -> _Anchor:
        """Create an anchor at ``new_pivot``, stealing closer points.

        For each existing anchor, its descending-sorted list is scanned
        from the farthest point; once ``d(point, old) < d(old, new) / 2``
        the triangle inequality guarantees no remaining point prefers the
        new anchor, and the scan stops without computing more distances.
        """
        # repro: ignore[R003] — index construction; build cost is modeled by distance/node counters
        pivot_vec = self.X[new_pivot]
        stolen_points: List[int] = []
        stolen_dists: List[float] = []
        for anchor in anchors:
            if len(anchor.points) == 0:
                continue
            inter = euclidean(self.X[anchor.pivot_index], pivot_vec, self.counters)
            threshold = inter / 2.0
            keep_points: List[int] = []
            keep_dists: List[float] = []
            cut = len(anchor.dists)
            for pos in range(len(anchor.dists)):
                if anchor.dists[pos] < threshold:
                    cut = pos
                    break  # triangle inequality: nothing further can move
                candidate = int(anchor.points[pos])
                if candidate == new_pivot:
                    continue  # moves to the new anchor via the final append
                d_new = euclidean(self.X[candidate], pivot_vec, self.counters)
                if d_new < anchor.dists[pos] and candidate != anchor.pivot_index:
                    stolen_points.append(candidate)
                    stolen_dists.append(d_new)
                else:
                    keep_points.append(candidate)
                    keep_dists.append(float(anchor.dists[pos]))
            # Remainder (below threshold) stays untouched, still sorted.
            keep_points.extend(int(p) for p in anchor.points[cut:])
            keep_dists.extend(float(d) for d in anchor.dists[cut:])
            anchor.points = np.asarray(keep_points, dtype=np.intp)
            anchor.dists = np.asarray(keep_dists)
            order = np.argsort(-anchor.dists, kind="stable")
            anchor.points = anchor.points[order]
            anchor.dists = anchor.dists[order]
        return _Anchor(
            new_pivot,
            np.asarray(stolen_points + [new_pivot], dtype=np.intp),
            np.asarray(stolen_dists + [0.0]),
        )

    # ------------------------------------------------------------------
    # Phase 2: agglomerative merging into a binary hierarchy.
    # ------------------------------------------------------------------

    def _agglomerate(self, nodes: List[TreeNode]) -> TreeNode:
        """Merge the pair with the smallest covering ball until one root."""
        working = list(nodes)
        while len(working) > 1:
            best_pair: Tuple[int, int] = (0, 1)
            best_radius = np.inf
            for i in range(len(working)):
                for j in range(i + 1, len(working)):
                    radius = self._merged_radius(working[i], working[j])
                    if radius < best_radius:
                        best_radius = radius
                        best_pair = (i, j)
            i, j = best_pair
            merged = make_internal(
                [working[i], working[j]],
                1 + max(working[i].height, working[j].height),
                counters=self.counters,
            )
            working = [
                node for pos, node in enumerate(working) if pos not in (i, j)
            ] + [merged]
        return working[0]

    def _merged_radius(self, a: TreeNode, b: TreeNode) -> float:
        """Covering radius of the ball around the mass-weighted mean."""
        pivot = (a.sv + b.sv) / (a.num + b.num)
        return max(
            euclidean(a.pivot, pivot, self.counters) + a.radius,
            euclidean(b.pivot, pivot, self.counters) + b.radius,
        )

    def _dists(self, indices: np.ndarray, center: np.ndarray) -> np.ndarray:
        # repro: ignore[R003] — index construction; build cost is modeled by distance/node counters
        return one_to_many_distances(center, self.X[indices], self.counters)
