"""Extending the framework: write, verify and benchmark a new algorithm.

The docs/architecture.md recipe, live.  We define "SphereLite" — a
stripped-down version of the library's discovered Sphere hybrid (Hamerly's
global bounds + Pami20's cluster-radius candidate balls) — then:

1. verify it end-to-end against Lloyd with the trajectory differ,
2. audit its bounds by brute force every iteration,
3. race it against its two parents and the library's full Sphere.

Run:  python examples/custom_algorithm.py
"""

import numpy as np

from repro.core import make_algorithm
from repro.core.base import KMeansAlgorithm
from repro.core.pruning import centroid_separations, second_max, two_smallest
from repro.datasets import load_dataset
from repro.diagnostics import audit_algorithm, compare_trajectories, record_trajectory
from repro.eval import format_table


class SphereLiteKMeans(KMeansAlgorithm):
    """Minimal custom method: Hamerly stay-test + radius-ball rescan.

    A compressed rewrite of :class:`repro.core.sphere.SphereKMeans` to show
    how little is needed: implement ``_assign`` and ``_update_bounds``,
    charge the counters, and the base class does the rest.
    """

    name = "sphere-lite"

    def _setup(self) -> None:
        self.counters.record_footprint(2 * len(self.X) + self.k)

    def _assign(self, iteration: int) -> None:
        if iteration == 0:
            dists = self._full_scan_assign()
            idx = np.arange(len(self.X))
            self._ub = dists[idx, self._labels].copy()
            masked = dists.copy()
            masked[idx, self._labels] = np.inf
            self._lb = masked.min(axis=1)
            self._radii = np.zeros(self.k)
            np.maximum.at(self._radii, self._labels, self._ub)
            return
        cc, s = centroid_separations(self._centroids, self.counters)
        thresholds = np.maximum(self._lb, s[self._labels])
        self.counters.add_bound_accesses(2 * len(self.X))
        for i in np.flatnonzero(self._ub > thresholds):
            i = int(i)
            a = int(self._labels[i])
            da = self._point_centroid_distance(i, a)
            self._ub[i] = da
            if da <= thresholds[i]:
                continue
            in_ball = 0.5 * cc[a] <= self._radii[a]
            cand = np.flatnonzero(in_ball)
            dists = self._point_distances(i, cand)
            pos, d1, d2 = two_smallest(dists)
            lb_out = np.inf if in_ball.all() else float((cc[a, ~in_ball] - da).min())
            self._labels[i] = int(cand[pos])
            self._ub[i] = d1
            self._lb[i] = min(d2, lb_out)
        new_radii = np.zeros(self.k)
        np.maximum.at(new_radii, self._labels, self._ub)
        self._radii = new_radii

    def _update_bounds(self, drifts: np.ndarray) -> None:
        top_j, top, second = second_max(drifts)
        self._ub += drifts[self._labels]
        self._lb -= np.where(self._labels == top_j, second, top)
        self._radii += drifts
        self.counters.add_bound_updates(2 * len(self.X) + self.k)


def main() -> None:
    X = load_dataset("Skin", n=1500, seed=0)
    k = 12
    from repro.core.initialization import init_kmeans_plus_plus

    C0 = init_kmeans_plus_plus(X, k, seed=0)

    # 1. Trajectory equivalence with Lloyd.
    base = record_trajectory(make_algorithm("lloyd"), X, k,
                             initial_centroids=C0, max_iter=40)
    mine = record_trajectory(SphereLiteKMeans(), X, k,
                             initial_centroids=C0, max_iter=40)
    divergence = compare_trajectories(base, mine)
    print(f"trajectory vs Lloyd: {'EXACT' if divergence is None else divergence}")

    # 2. Bound audit (every stored bound re-derived by brute force).
    audit = audit_algorithm(SphereLiteKMeans(), X, k, max_iter=15, seed=0)
    print(f"bound audit: {audit.iterations_audited} iterations, "
          f"{len(audit.violations)} violations")

    # 3. Race against the parents and the library's Sphere.
    rows = []
    for algo in [make_algorithm("hamerly"), make_algorithm("pami20"),
                 make_algorithm("sphere"), SphereLiteKMeans()]:
        result = algo.fit(X, k, initial_centroids=C0, max_iter=10)
        rows.append(
            [result.algorithm, int(result.counters.distance_computations),
             f"{result.pruning_ratio:.0%}", round(result.modeled_cost / 1e6, 2)]
        )
    print()
    print(format_table(["method", "distances", "pruned", "cost_Mops"], rows,
                       title=f"Skin surrogate, k={k}"))


if __name__ == "__main__":
    main()
