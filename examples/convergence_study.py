"""Convergence study: SSE and work per iteration, plus multi-restart.

Shows three standard library workflows on one dataset:

1. per-iteration SSE curves (``fit(record_sse=True)``) for Lloyd vs UniK —
   identical by exactness, which the script verifies;
2. the per-iteration cost profile (distances shrink as bounds tighten);
3. multi-restart (``fit_with_restarts``) to escape bad local optima,
   comparing single-run vs best-of-5 SSE.

Run:  python examples/convergence_study.py
"""

import numpy as np

from repro.core import make_algorithm
from repro.core.initialization import init_kmeans_plus_plus
from repro.core.restarts import fit_with_restarts
from repro.datasets import load_dataset
from repro.eval import format_table


def main() -> None:
    X = load_dataset("Covtype", n=1500, seed=0)
    k = 12
    C0 = init_kmeans_plus_plus(X, k, seed=4)

    lloyd = make_algorithm("lloyd").fit(
        X, k, initial_centroids=C0, max_iter=25, record_sse=True
    )
    unik = make_algorithm("unik").fit(
        X, k, initial_centroids=C0, max_iter=25, record_sse=True
    )

    rows = []
    for stats_l, stats_u in zip(lloyd.iteration_stats, unik.iteration_stats):
        rows.append(
            [
                stats_l.iteration,
                round(stats_l.sse, 1),
                round(stats_u.sse, 1),
                stats_l.distance_computations,
                stats_u.distance_computations,
                stats_u.changed,
            ]
        )
    print(
        format_table(
            ["iter", "sse(lloyd)", "sse(unik)", "dists(lloyd)",
             "dists(unik)", "moved"],
            rows,
            title=f"Covtype surrogate, k={k}: convergence trace",
        )
    )
    sse_match = all(
        abs(a.sse - b.sse) < 1e-6 * (1 + a.sse)
        for a, b in zip(lloyd.iteration_stats, unik.iteration_stats)
    )
    print(f"\nper-iteration SSE identical: {sse_match} (exactness, live)")

    report = fit_with_restarts(
        X, k, algorithm="unik", n_init=5, seed=0, max_iter=25
    )
    print(f"\nmulti-restart: per-restart SSE = "
          f"{[round(s, 1) for s in report.sse_history]}")
    print(f"best restart #{report.best_restart} "
          f"improves on the worst by "
          f"{max(report.sse_history) / report.best.sse - 1:.1%}")


if __name__ == "__main__":
    main()
