"""Fine-grained performance breakdown of the accelerated methods.

The paper's methodological message: distance computations alone do not
predict running time — data accesses, bound accesses, and bound updates
matter as much.  This example runs the full method roster on one task and
prints the complete breakdown, then demonstrates the paper's Figure 1
paradox: the configuration with the fewest distance computations (Full) is
not the fastest.

Run:  python examples/performance_breakdown.py
"""

from repro.datasets import load_dataset
from repro.eval import compare_algorithms, format_table

METHODS = [
    "lloyd", "elkan", "hamerly", "drake", "yinyang", "regroup", "heap",
    "annular", "exponion", "drift", "vector", "pami20", "index", "unik", "full",
]


def main() -> None:
    X = load_dataset("KeggUndirect", n=1500, seed=0)
    k = 25
    print(f"dataset: KeggUndirect surrogate, n={len(X)}, d={X.shape[1]}, k={k}\n")

    records = compare_algorithms(METHODS, X, k, repeats=2, max_iter=10)
    rows = [
        [
            record.algorithm,
            round(record.total_time, 3),
            int(record.distance_computations),
            int(record.point_accesses),
            int(record.bound_accesses),
            int(record.bound_updates),
            int(record.footprint_floats),
        ]
        for record in records
    ]
    print(
        format_table(
            ["method", "time_s", "distances", "point_acc", "bound_acc",
             "bound_upd", "footprint"],
            rows,
            title="Full performance breakdown (averaged over 2 seeds)",
        )
    )

    fewest = min(records, key=lambda r: r.distance_computations)
    fastest = min(records, key=lambda r: r.total_time)
    print(
        f"\nfewest distance computations: {fewest.algorithm} "
        f"({int(fewest.distance_computations):,})"
    )
    print(f"fastest wall-clock:           {fastest.algorithm} "
          f"({fastest.total_time:.3f}s)")
    if fewest.algorithm != fastest.algorithm:
        print(
            "\n-> exactly the paper's point: minimizing distances is not the "
            "same as minimizing time;\n   bound maintenance and data-access "
            "costs decide the winner."
        )


if __name__ == "__main__":
    main()
