"""Index explorer: how the six tree structures see the same dataset.

Builds every index over a dataset, prints construction cost, shape
statistics and the Table 1 meta-features extracted from them, then runs a
k-NN sanity query on each — the "does the data assemble well?" question
UTune answers from these numbers.

Run:  python examples/index_explorer.py [dataset]
"""

import sys
import time

from repro.datasets import load_dataset
from repro.eval import format_table
from repro.indexes import INDEX_CLASSES, build_index
from repro.instrumentation.counters import OpCounters
from repro.tuning import extract_features


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "NYC-Taxi"
    X = load_dataset(dataset, n=2000, seed=0)
    print(f"dataset: {dataset} surrogate, n={len(X)}, d={X.shape[1]}\n")

    rows = []
    trees = {}
    for name in INDEX_CLASSES:
        begin = time.perf_counter()
        tree = build_index(name, X)
        build = time.perf_counter() - begin
        trees[name] = tree
        stats = tree.stats()
        rows.append(
            [
                name,
                round(build, 4),
                tree.node_count(),
                stats.height,
                round(stats.leaf_radius_mean, 4),
                round(stats.leaf_size_mean, 1),
                tree.space_cost_floats(),
            ]
        )
    print(
        format_table(
            ["index", "build_s", "nodes", "height", "leaf_r_mean",
             "leaf_size", "floats"],
            rows,
            title="Construction and shape",
        )
    )

    # Table 1 meta-features from the default Ball-tree.
    features = extract_features(X, 20, tree=trees["ball-tree"])
    print("\nTable 1 meta-features (Ball-tree):")
    for name, value in features.values.items():
        print(f"  {name:18s} = {value:.4f}")

    # k-NN sanity query through every index.
    query = X.mean(axis=0)
    print("\n5-NN of the dataset centroid, per index (point accesses):")
    for name, tree in trees.items():
        counters = OpCounters()
        hits = tree.knn_search(query, 5, counters)
        print(f"  {name:12s} -> {list(map(int, hits))} "
              f"({counters.point_accesses}/{len(X)} points touched)")


if __name__ == "__main__":
    main()
