"""Algorithm selection with UTune (paper Section 6).

Workflow: label a set of clustering tasks by timing the candidate knob
configurations (selective running, Algorithm 2), train the meta-model on
Table 1 features, and let it pick the configuration for unseen tasks —
then verify the pick against the rule-based BDT baseline.

Run:  python examples/algorithm_selection.py
"""

from repro.core import build_algorithm
from repro.core.initialization import init_kmeans_plus_plus
from repro.datasets import load_dataset
from repro.tuning import UTune, bdt_predict, evaluate_bdt, generate_ground_truth


def main() -> None:
    # 1. Generate ground truth on a spread of dataset shapes.
    print("labeling training tasks (selective running) ...")
    tasks = []
    for name, n in [
        ("NYC-Taxi", 1000), ("Europe", 1000), ("Covtype", 800),
        ("KeggDirect", 800), ("Power", 1000), ("Mnist", 250),
    ]:
        X = load_dataset(name, n=n, seed=1)
        for k in [5, 15, 40]:
            tasks.append((name, X, k))
    records = generate_ground_truth(
        tasks, selective=True, max_iter=5, metric="modeled_cost"
    )
    total = sum(record.generation_time for record in records)
    print(f"labeled {len(records)} tasks in {total:.1f}s")

    # 2. Train the selector (decision tree, all Table 1 features).
    tuner = UTune(model="dt", feature_set="leaf").fit(records)
    print(f"trained in {tuner.train_time * 1000:.1f} ms")
    learned = tuner.evaluate(records)
    rules = evaluate_bdt(records)
    print(f"training-set Bound@MRR: learned={learned['bound_mrr']:.2f} "
          f"vs BDT={rules['bound_mrr']:.2f}")

    # 3. Predict for unseen tasks and run the prediction.
    print("\npredictions on unseen tasks:")
    for name, n, k in [("Shuttle", 1000, 15), ("Spam", 800, 10), ("MSD", 300, 5)]:
        X = load_dataset(name, n=n, seed=9)
        config = tuner.predict_config(X, k)
        bdt_config = bdt_predict(len(X), k, X.shape[1])
        C0 = init_kmeans_plus_plus(X, k, seed=0)
        predicted = build_algorithm(config).fit(X, k, initial_centroids=C0, max_iter=8)
        fallback = build_algorithm(bdt_config).fit(X, k, initial_centroids=C0, max_iter=8)
        print(
            f"  {name:8s} k={k:3d}: UTune picked {config.label:16s} "
            f"(cost {predicted.modeled_cost / 1e6:.1f}M ops) | "
            f"BDT picked {bdt_config.label:16s} "
            f"(cost {fallback.modeled_cost / 1e6:.1f}M ops)"
        )


if __name__ == "__main__":
    main()
