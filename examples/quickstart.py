"""Quickstart: cluster a dataset with the UniK algorithm and inspect the
instrumented result.

Run:  python examples/quickstart.py
"""

from repro import KMeans
from repro.datasets import load_dataset


def main() -> None:
    # Synthetic surrogate of the paper's BigCross dataset (Table 2),
    # scaled down so this runs in a couple of seconds.
    X = load_dataset("BigCross", n=2000, seed=0)
    print(f"data: n={len(X)}, d={X.shape[1]}")

    # The default algorithm is UniK: Ball-tree batch pruning + Yinyang-style
    # bounds + adaptive traversal (paper Algorithm 1).
    model = KMeans(k=20, algorithm="unik", seed=0, max_iter=10)
    result = model.fit(X)

    print(f"algorithm          : {result.algorithm}")
    print(f"iterations         : {result.n_iter} (converged={result.converged})")
    print(f"SSE                : {result.sse:.1f}")
    print(f"clustering time    : {result.total_time:.3f}s "
          f"(assignment {result.assignment_time:.3f}s, "
          f"refinement {result.refinement_time:.3f}s)")
    print(f"index build (setup): {result.setup_time:.3f}s")
    print(f"pruning ratio      : {result.pruning_ratio:.1%} of Lloyd's distances avoided")
    print(f"distance computations: {result.counters.distance_computations:,}")
    print(f"bound accesses     : {result.counters.bound_accesses:,}")
    print(f"memory footprint   : {result.footprint_floats:,} floats")
    print(f"traversal resolved : {result.extras['resolved_mode']}")

    # Compare against the textbook baseline from the same initialization.
    baseline = KMeans(k=20, algorithm="lloyd", seed=0, max_iter=10).fit(X)
    print(f"\nLloyd baseline     : {baseline.total_time:.3f}s, "
          f"{baseline.counters.distance_computations:,} distances")
    print(f"speedup (time)     : {baseline.total_time / result.total_time:.2f}x")
    print(f"speedup (work)     : "
          f"{baseline.counters.distance_computations / result.counters.distance_computations:.2f}x")

    # Assign new points with the fitted model.
    labels = model.predict(X[:5])
    print(f"\nfirst five labels  : {list(labels)}")


if __name__ == "__main__":
    main()
