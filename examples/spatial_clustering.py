"""Spatial clustering: the paper's NYC-taxi scenario.

Low-dimensional spatial data is where the index-based method shines — the
paper reports up to 389x speedups over Lloyd on NYC pick-up locations.
This example clusters a hot-spot surrogate with every algorithm family and
prints the comparison, reproducing the qualitative ranking.

Run:  python examples/spatial_clustering.py
"""

from repro.datasets import load_dataset
from repro.eval import compare_algorithms, format_table, speedup_table


def main() -> None:
    # Dense urban pick-up locations (hot spots + background noise).
    X = load_dataset("NYC-Taxi", n=4000, seed=0)
    k = 50
    print(f"clustering {len(X)} pick-up locations into {k} zones\n")

    records = compare_algorithms(
        ["lloyd", "hamerly", "yinyang", "index", "unik"],
        X, k, repeats=2, max_iter=10,
    )
    table = speedup_table(records)
    rows = [
        [
            record.algorithm,
            round(record.total_time, 3),
            round(table[record.algorithm]["time"], 2),
            round(table[record.algorithm]["work"], 2),
            f"{record.pruning_ratio:.0%}",
            int(record.point_accesses),
        ]
        for record in records
    ]
    print(
        format_table(
            ["method", "time_s", "speedup", "work_x", "pruned", "point_accesses"],
            rows,
            title="NYC-like spatial clustering",
        )
    )

    index_record = next(r for r in records if r.algorithm.startswith("index"))
    lloyd_record = next(r for r in records if r.algorithm == "lloyd")
    print(
        f"\nThe Ball-tree method avoided "
        f"{1 - index_record.point_accesses / lloyd_record.point_accesses:.0%} "
        "of Lloyd's data accesses by assigning whole nodes in batch —\n"
        "the mechanism behind the paper's 150-400x NYC speedups at scale."
    )


if __name__ == "__main__":
    main()
