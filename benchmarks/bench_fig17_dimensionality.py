"""Figure 17 (appendix) — effect of increasing dimensionality on the
sequential methods (Mnist-like data, fixed k).

Expected shape: every method's pruning ratio decays as d grows; Drake holds
up comparatively well in high dimension (the paper's reason for its
leaderboard seat).
"""

from __future__ import annotations

from _common import MID_K, report
from repro.datasets import make_mnist_like
from repro.eval import compare_algorithms, format_table

METHODS = ["elkan", "hamerly", "drake", "yinyang", "heap", "exponion"]
DIMENSIONS = [16, 64, 256, 784]


def run_fig17():
    pruning = {}
    times = {}
    for d in DIMENSIONS:
        X = make_mnist_like(300, d, seed=0)
        records = compare_algorithms(METHODS, X, MID_K, repeats=1, max_iter=8)
        for record in records:
            pruning.setdefault(record.algorithm, {})[d] = record.pruning_ratio
            times.setdefault(record.algorithm, {})[d] = record.total_time
    rows = [
        [name] + [f"{pruning[name][d]:.0%}" for d in DIMENSIONS]
        for name in METHODS
    ]
    text = format_table(
        ["method"] + [f"d={d}" for d in DIMENSIONS],
        rows,
        title=f"Mnist-like (n=300, k={MID_K}) — pruning ratio vs dimensionality",
    )
    rows_t = [
        [name] + [round(times[name][d], 4) for d in DIMENSIONS]
        for name in METHODS
    ]
    text_t = format_table(
        ["method"] + [f"d={d}" for d in DIMENSIONS],
        rows_t,
        title="running time (s) vs dimensionality",
    )
    return text + "\n\n" + text_t


def test_fig17_dimensionality(benchmark):
    text = benchmark.pedantic(run_fig17, rounds=1, iterations=1)
    report("fig17_dimensionality", text)
