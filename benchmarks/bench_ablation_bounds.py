"""Ablation bench — which of Elkan's two bound families does the work?

Section 4.1 defines Elka as inter-bound + drift-bound.  This ablation runs
the full configuration against each mechanism alone across three dataset
shapes, reporting distances, bound updates and the modeled cost.  The
expected pattern: the drift matrix carries most of the pruning, while the
inter-bound adds cheap early exits but pays k(k-1)/2 distances per
iteration — which is why Hamerly-style methods can win despite pruning
less.
"""

from __future__ import annotations

from _common import MID_K, report
from repro.core.elkan import ElkanKMeans
from repro.core.initialization import init_kmeans_plus_plus
from repro.datasets import load_dataset
from repro.eval import format_table


def run_ablation():
    blocks = []
    for dataset, n in [("BigCross", 1500), ("NYC-Taxi", 2000), ("Mnist", 300)]:
        X = load_dataset(dataset, n=n, seed=0)
        C0 = init_kmeans_plus_plus(X, MID_K, seed=0)
        rows = []
        for label, kwargs in [
            ("inter+drift (Elka)", {}),
            ("drift only", {"use_inter": False}),
            ("inter only", {"use_drift": False}),
        ]:
            result = ElkanKMeans(**kwargs).fit(
                X, MID_K, initial_centroids=C0, max_iter=10
            )
            rows.append(
                [
                    label,
                    int(result.counters.distance_computations),
                    int(result.counters.bound_updates),
                    round(result.modeled_cost / 1e6, 2),
                    f"{result.pruning_ratio:.0%}",
                ]
            )
        blocks.append(
            format_table(
                ["configuration", "distances", "bound_updates",
                 "cost_Mops", "pruned"],
                rows,
                title=f"{dataset} (n={n}, d={X.shape[1]}, k={MID_K})",
            )
        )
    return "\n\n".join(blocks)


def test_ablation_bounds(benchmark):
    text = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("ablation_bounds", text)
