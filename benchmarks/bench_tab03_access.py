"""Table 3 — bound and data accesses in the first iteration (BigCross-like,
large k): Lloyd vs SEQU (Yinyang) vs INDE (Ball-tree) vs UniK.

Expected shape (paper Table 3): SEQU trades point accesses for heavy bound
traffic; INDE has the fewest point accesses but no bound pruning; UniK has
both the best pruning and the fewest accesses overall.
"""

from __future__ import annotations

from _common import LARGE_K, report
from repro.core import make_algorithm
from repro.core.initialization import init_kmeans_plus_plus
from repro.datasets import load_dataset
from repro.eval import format_table


def run_tab03():
    X = load_dataset("BigCross", n=2000, seed=0)
    k = LARGE_K
    C0 = init_kmeans_plus_plus(X, k, seed=0)
    rows = []
    for label, name in [
        ("Lloyd", "lloyd"),
        ("SEQU(yinyang)", "yinyang"),
        ("INDE(ball-tree)", "index"),
        ("UniK", "unik"),
    ]:
        # First iteration only — but bounds begin pruning from iteration 2,
        # so report iterations 1 and 2 like the paper's "first iteration
        # after warm-up" protocol.
        result = make_algorithm(name).fit(X, k, initial_centroids=C0, max_iter=2)
        stats = result.iteration_stats[-1]
        baseline = len(X) * k
        rows.append(
            [
                label,
                round(stats.assignment_time + stats.refinement_time, 4),
                f"{max(0.0, 1 - stats.distance_computations / baseline):.0%}",
                stats.bound_accesses,
                stats.point_accesses,
                stats.node_accesses,
            ]
        )
    return format_table(
        ["method", "time_s", "pruned", "bound", "point", "node"],
        rows,
        title=f"BigCross surrogate (n=2000, k={k}) — second-iteration accesses",
    )


def test_tab03_access(benchmark):
    text = benchmark.pedantic(run_tab03, rounds=1, iterations=1)
    report("tab03_access", text)
