"""Table 7 — training and prediction time of each selector model, per
feature group and ground-truth regime.

Expected shape: DT/RC train in milliseconds; RF is the slowest to train and
predict; kNN trains instantly but predicts slower (it defers all work).
"""

from __future__ import annotations

import time

from _common import report
from repro.datasets import dataset_names, load_dataset
from repro.eval import format_table
from repro.tuning import UTune, generate_ground_truth

MODELS = ["dt", "rf", "svm", "knn", "rc"]
FEATURE_SETS = ["basic", "tree", "leaf"]


def run_tab07():
    tasks = []
    for name in dataset_names()[:8]:
        X = load_dataset(name, n=400, seed=0)
        for k in [5, 15]:
            tasks.append((name, X, k))
    records = generate_ground_truth(tasks, selective=True, max_iter=4)
    rows = []
    for feature_set in FEATURE_SETS:
        for model in MODELS:
            tuner = UTune(model=model, feature_set=feature_set)
            begin = time.perf_counter()
            tuner.fit(records)
            train_ms = (time.perf_counter() - begin) * 1000.0
            scores = tuner.evaluate(records)
            rows.append(
                [
                    model.upper(),
                    feature_set,
                    round(train_ms, 2),
                    round(scores["predict_time"] * 1e6, 1),
                ]
            )
    return format_table(
        ["model", "features", "train_ms", "predict_us"],
        rows,
        title=f"Selector model costs ({len(records)} training records)",
    )


def test_tab07_model_time(benchmark):
    text = benchmark.pedantic(run_tab07, rounds=1, iterations=1)
    report("tab07_model_time", text)
