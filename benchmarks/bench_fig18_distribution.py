"""Figure 18 (appendix) — effect of the data distribution on synthetic
normal data (make_gaussian_quantiles), varying the generator's cluster
count and variance at d = 2 and d = 50.

Expected shape: in low dimension the index-based methods benefit from more
generator clusters (better assembling); in high dimension both families'
pruning collapses and the parameters matter little.
"""

from __future__ import annotations

from _common import report
from repro.datasets import make_gaussian_quantiles
from repro.eval import compare_algorithms, format_table

METHODS = ["yinyang", "index", "unik"]
K_CLUSTERING = 10


def _sweep(d, generator_ks, variances):
    rows = []
    for gen_k in generator_ks:
        X, _ = make_gaussian_quantiles(1000, d, gen_k, variance=0.5, seed=0)
        records = compare_algorithms(METHODS, X, K_CLUSTERING, repeats=1, max_iter=6)
        rows.append(
            [f"k_gen={gen_k}"]
            + [f"{record.pruning_ratio:.0%}" for record in records]
        )
    for var in variances:
        X, _ = make_gaussian_quantiles(1000, d, 10, variance=var, seed=0)
        records = compare_algorithms(METHODS, X, K_CLUSTERING, repeats=1, max_iter=6)
        rows.append(
            [f"var={var}"]
            + [f"{record.pruning_ratio:.0%}" for record in records]
        )
    return format_table(
        ["setting"] + METHODS,
        rows,
        title=f"d={d}: pruning ratio vs generator parameters",
    )


def run_fig18():
    low = _sweep(2, [10, 100, 400], [0.01, 0.5, 5.0])
    high = _sweep(50, [10, 100, 400], [0.01, 0.5, 5.0])
    return low + "\n\n" + high


def test_fig18_distribution(benchmark):
    text = benchmark.pedantic(run_fig18, rounds=1, iterations=1)
    report("fig18_distribution", text)
