"""Figure 16 (appendix) — effect of the initialization method.

The paper compares random vs k-means++ initialization over the first ten
iterations and finds the accelerated methods' *relative* speedups barely
change.  Reported: speedup over Lloyd under both initializations.
"""

from __future__ import annotations

from _common import MID_K, report
from repro.core import make_algorithm
from repro.core.initialization import initialize_centroids
from repro.datasets import load_dataset
from repro.eval import format_table

METHODS = ["lloyd", "hamerly", "yinyang", "index", "unik"]


def run_fig16():
    blocks = []
    for dataset, n in [("BigCross", 1500), ("NYC-Taxi", 1500)]:
        X = load_dataset(dataset, n=n, seed=0)
        rows = []
        speedups = {}
        for init in ["random", "k-means++"]:
            C0 = initialize_centroids(X, MID_K, init, seed=7)
            base_time = None
            for name in METHODS:
                result = make_algorithm(name).fit(
                    X, MID_K, initial_centroids=C0, max_iter=10
                )
                if base_time is None:
                    base_time = result.total_time
                speedups.setdefault(name, {})[init] = base_time / result.total_time
        for name in METHODS:
            rows.append(
                [
                    name,
                    round(speedups[name]["random"], 2),
                    round(speedups[name]["k-means++"], 2),
                ]
            )
        blocks.append(
            format_table(
                ["method", "speedup(random)", "speedup(k-means++)"],
                rows,
                title=f"{dataset} (n={n}, k={MID_K})",
            )
        )
    return "\n\n".join(blocks)


def test_fig16_init(benchmark):
    text = benchmark.pedantic(run_fig16, rounds=1, iterations=1)
    report("fig16_init", text)
