"""Extension bench (paper Section 2.2 taxonomy) — approximate accelerations
composed with the exact family.

Mini-batch and sample-then-polish k-means against exact Lloyd/UniK: time,
SSE inflation, and label agreement (ARI).  The paper notes the approximate
family "can be integrated with [the exact methods] to reduce their running
time"; SampledKMeans demonstrates the composition by running UniK on the
sample.
"""

from __future__ import annotations

from _common import MID_K, report
from repro.core import make_algorithm
from repro.core.initialization import init_kmeans_plus_plus
from repro.core.minibatch import MiniBatchKMeans, SampledKMeans
from repro.datasets import load_dataset
from repro.eval import format_table
from repro.eval.quality import adjusted_rand_index


def run_ext_approximate():
    blocks = []
    for dataset, n in [("BigCross", 3000), ("NYC-Taxi", 4000)]:
        X = load_dataset(dataset, n=n, seed=0)
        C0 = init_kmeans_plus_plus(X, MID_K, seed=0)
        exact = make_algorithm("lloyd").fit(X, MID_K, initial_centroids=C0, max_iter=10)
        rows = [[
            "lloyd (exact)", round(exact.total_time, 3),
            round(exact.sse, 1), "1.000", "-",
        ]]
        variants = [
            ("unik (exact)", make_algorithm("unik")),
            ("minibatch-128", MiniBatchKMeans(batch_size=128)),
            ("minibatch-512", MiniBatchKMeans(batch_size=512)),
            ("sampled-10%+unik", SampledKMeans(sample_fraction=0.1, inner="unik")),
            ("sampled-30%+unik", SampledKMeans(sample_fraction=0.3, inner="unik")),
        ]
        for label, algo in variants:
            result = algo.fit(X, MID_K, initial_centroids=C0, max_iter=10)
            rows.append(
                [
                    label,
                    round(result.total_time, 3),
                    round(result.sse, 1),
                    f"{result.sse / exact.sse:.3f}",
                    f"{adjusted_rand_index(exact.labels, result.labels):.2f}",
                ]
            )
        blocks.append(
            format_table(
                ["method", "time_s", "sse", "sse_ratio", "ARI_vs_lloyd"],
                rows,
                title=f"{dataset} (n={n}, k={MID_K}) — approximate vs exact",
            )
        )
    return "\n\n".join(blocks)


def test_ext_approximate(benchmark):
    text = benchmark.pedantic(run_ext_approximate, rounds=1, iterations=1)
    report("ext_approximate", text)
