"""Shared plumbing for the figure/table reproduction benchmarks.

Every benchmark prints the rows/series its paper counterpart reports and
appends the same text to ``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can
quote results verbatim.  Scales are reduced relative to the paper (see
DESIGN.md section 4): pure Python is orders of magnitude slower than the
authors' Java, so ``n`` runs in the thousands and ``k`` tops out around 50;
the comparisons that matter (who wins, by what factor, where crossovers
fall) are preserved and cross-checked against hardware-independent counters.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List, Sequence

OUT_DIR = Path(__file__).parent / "out"

#: scaled-down stand-ins for the paper's k = {10, 100, 1000} sweeps
SMALL_K = 5
MID_K = 15
LARGE_K = 40

#: datasets exercised by the cross-dataset tables (kept small for speed)
BENCH_DATASETS = [
    ("BigCross", 1500),
    ("NYC-Taxi", 2000),
    ("KeggDirect", 1000),
    ("Covtype", 1200),
    ("Mnist", 300),
]


def report(name: str, text: str) -> None:
    """Print a benchmark report and persist it under ``benchmarks/out``."""
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    sys.stdout.flush()
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(banner)


def fmt_ratio(value: float) -> str:
    return f"{value:.2f}x"


def fmt_pct(value: float) -> str:
    return f"{value:.0%}"


#: wall-clock guard per benchmark cell — the scaled-down cells finish in
#: seconds, so a cell still running after this is hung, not slow
CELL_TIMEOUT = 300.0


def guarded_compare(specs, X, k, **kwargs):
    """``compare_algorithms`` under the fault-tolerant runtime.

    Long campaign benchmarks route cells through here so one pathological
    (method, dataset, k) combination degrades into a recorded failure
    instead of hanging or killing the whole matrix; healthy cells are
    bit-identical to the serial harness (see docs/robustness.md).  Returns
    only the successful records; failures are reported to stderr by the
    runtime's warning path.
    """
    from repro.eval.parallel import parallel_compare
    from repro.eval.runtime import is_failed_record

    kwargs.setdefault("timeout", CELL_TIMEOUT)
    kwargs.setdefault("retries", 1)
    records = parallel_compare(specs, X, k, **kwargs)
    return [record for record in records if not is_failed_record(record)]
