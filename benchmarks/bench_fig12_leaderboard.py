"""Figure 12 — leaderboard of sequential methods (top-1 / top-3 shares).

Rankings are collected over the cross product of datasets and k values.
Two rankings are produced: wall-clock (the paper's) and the
hardware-independent modeled cost.  The paper's expected outcome: five
methods — Hame, Drak, Heap, Yinyang, Regroup — alternate in the lead,
which justifies UTune's selection pool.

An ablation block also compares UniK with group pruning on vs off
(t = ceil(k/10) vs t = 1) across the same tasks (a DESIGN.md ablation).
"""

from __future__ import annotations

from _common import BENCH_DATASETS, MID_K, SMALL_K, report
from repro.core.unik import UniKKMeans
from repro.datasets import load_dataset
from repro.eval import Leaderboard, compare_algorithms, format_table

SEQUENTIAL = [
    "elkan", "hamerly", "drake", "yinyang", "regroup", "heap",
    "annular", "exponion", "drift", "vector", "pami20",
]


def run_fig12():
    time_board = Leaderboard(metric="total_time")
    cost_board = Leaderboard(metric="modeled_cost")
    for dataset, n in BENCH_DATASETS:
        X = load_dataset(dataset, n=n, seed=0)
        for k in [SMALL_K, MID_K]:
            records = compare_algorithms(SEQUENTIAL, X, k, repeats=1, max_iter=8)
            time_board.add_task(records)
            cost_board.add_task(records)
    rows = []
    for name in SEQUENTIAL:
        rows.append(
            [
                name,
                time_board.top1.get(name, 0),
                time_board.top3.get(name, 0),
                cost_board.top1.get(name, 0),
                cost_board.top3.get(name, 0),
            ]
        )
    text = format_table(
        ["method", "time_top1", "time_top3", "cost_top1", "cost_top3"],
        rows,
        title=f"Leaderboard over {time_board.tasks} tasks",
    )

    # Ablation: UniK group pruning on/off.
    ablation_rows = []
    for dataset, n in BENCH_DATASETS[:3]:
        X = load_dataset(dataset, n=n, seed=0)
        grouped = UniKKMeans(traversal="single").fit(X, MID_K, seed=0, max_iter=8)
        global_only = UniKKMeans(traversal="single", t=1).fit(X, MID_K, seed=0, max_iter=8)
        ablation_rows.append(
            [
                dataset,
                int(grouped.counters.distance_computations),
                int(global_only.counters.distance_computations),
                round(grouped.total_time, 4),
                round(global_only.total_time, 4),
            ]
        )
    ablation = format_table(
        ["dataset", "dists(grouped)", "dists(t=1)", "time(grouped)", "time(t=1)"],
        ablation_rows,
        title="Ablation: UniK group pruning on (t=ceil(k/10)) vs off (t=1)",
    )
    return text + "\n\n" + ablation


def test_fig12_leaderboard(benchmark):
    text = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    report("fig12_leaderboard", text)
