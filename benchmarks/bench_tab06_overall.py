"""Table 6 — the headline table: speedup over Lloyd of SEQU (Yinyang),
INDE (Ball-tree), UniK, and UTune's predicted configuration, per dataset
and k, with pruning percentages.

UTune is trained on ground truth from *other* seeds/tasks of the same
dataset families (leave-task-out flavour), then its predicted configuration
runs on the held-out task — the Section 7.3.2 verification.
"""

from __future__ import annotations

from _common import MID_K, SMALL_K, report
from repro.core import build_algorithm, make_algorithm
from repro.core.initialization import init_kmeans_plus_plus
from repro.datasets import load_dataset
from repro.eval import format_table
from repro.tuning import UTune, generate_ground_truth

DATASETS = [
    ("BigCross", 1200), ("Conflong", 1000), ("Covtype", 1000),
    ("Europe", 1200), ("KeggDirect", 800), ("NYC-Taxi", 1500),
    ("Skin", 1000), ("Power", 1200), ("RoadNetwork", 1000),
    ("Mnist", 250), ("Spam", 800), ("Shuttle", 1000), ("MSD", 400),
]


def _train_tuner():
    tasks = []
    for name, n in DATASETS[:8]:
        X = load_dataset(name, n=max(200, n // 2), seed=100)
        for k in [SMALL_K, MID_K]:
            tasks.append((name, X, k))
    records = generate_ground_truth(
        tasks, selective=True, max_iter=4, metric="modeled_cost"
    )
    return UTune(model="dt").fit(records)


def run_tab06():
    tuner = _train_tuner()
    blocks = []
    for k in [SMALL_K, MID_K]:
        rows = []
        for name, n in DATASETS:
            X = load_dataset(name, n=n, seed=0)
            C0 = init_kmeans_plus_plus(X, k, seed=0)
            lloyd = make_algorithm("lloyd").fit(X, k, initial_centroids=C0, max_iter=8)
            entries = [name, round(lloyd.total_time, 3)]
            for spec in ["yinyang", "index", "unik"]:
                result = make_algorithm(spec).fit(
                    X, k, initial_centroids=C0, max_iter=8
                )
                entries.append(
                    f"{lloyd.modeled_cost / result.modeled_cost:.2f}/"
                    f"{result.pruning_ratio:.0%}"
                )
            config = tuner.predict_config(X, k)
            predicted = build_algorithm(config).fit(
                X, k, initial_centroids=C0, max_iter=8
            )
            entries.append(
                f"{lloyd.modeled_cost / predicted.modeled_cost:.2f}/"
                f"{predicted.pruning_ratio:.0%}"
            )
            entries.append(config.label)
            rows.append(entries)
        blocks.append(
            format_table(
                ["dataset", "lloyd_s", "SEQU x/pr", "INDE x/pr",
                 "UniK x/pr", "UTune x/pr", "UTune pick"],
                rows,
                title=(
                    f"k = {k}: modeled-cost speedup over Lloyd / pruning "
                    "ratio (hardware-independent; see EXPERIMENTS.md)"
                ),
            )
        )
    return "\n\n".join(blocks)


def test_tab06_overall(benchmark):
    text = benchmark.pedantic(run_tab06, rounds=1, iterations=1)
    report("tab06_overall", text)
