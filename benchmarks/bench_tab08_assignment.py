"""Table 8 — assignment-phase speedup over Lloyd (SEQU / INDE / UniK /
UTune-predicted), per dataset.

Assignment dominates total time, so this table tracks Table 6 closely —
which is exactly the paper's observation for omitting it from the body.
"""

from __future__ import annotations

from _common import MID_K, report
from repro.core import make_algorithm
from repro.core.initialization import init_kmeans_plus_plus
from repro.datasets import load_dataset
from repro.eval import format_table

DATASETS = [
    ("BigCross", 1200), ("Conflong", 1000), ("Covtype", 1000),
    ("Europe", 1200), ("KeggDirect", 800), ("NYC-Taxi", 1500),
    ("Skin", 1000), ("Power", 1200), ("RoadNetwork", 1000),
]


def run_tab08():
    rows = []
    for name, n in DATASETS:
        X = load_dataset(name, n=n, seed=0)
        C0 = init_kmeans_plus_plus(X, MID_K, seed=0)
        lloyd = make_algorithm("lloyd").fit(X, MID_K, initial_centroids=C0, max_iter=8)
        entries = [name, round(lloyd.assignment_time, 4)]
        for spec in ["yinyang", "index", "unik"]:
            result = make_algorithm(spec).fit(X, MID_K, initial_centroids=C0, max_iter=8)
            speedup = (
                lloyd.assignment_time / result.assignment_time
                if result.assignment_time
                else float("inf")
            )
            entries.append(round(speedup, 2))
        rows.append(entries)
    return format_table(
        ["dataset", "lloyd_assign_s", "SEQU_x", "INDE_x", "UniK_x"],
        rows,
        title=f"Assignment speedup over Lloyd (k={MID_K})",
    )


def test_tab08_assignment(benchmark):
    text = benchmark.pedantic(run_tab08, rounds=1, iterations=1)
    report("tab08_assignment", text)
