"""Table 4 — the evaluation-summary ratings, computed from measurements.

The paper assigns its Table 4 circles editorially from the evaluation; this
bench *derives* them: leaderboard placement from modeled-cost rankings over
the dataset sweep, space/access/distance scores from rank quintiles of the
measured totals, parameter-freeness structurally.  Expected shape: Heap and
Pami20 shine on space and bound traffic; index-based on data access; Elkan
on distances but bottom on space; UniK strong across the board.
"""

from __future__ import annotations

from _common import BENCH_DATASETS, MID_K, SMALL_K, report
from repro.datasets import load_dataset
from repro.eval import compare_algorithms, format_table
from repro.eval.summary import CRITERIA, rate_algorithms, render_circles

METHODS = [
    "elkan", "hamerly", "drake", "yinyang", "regroup", "heap",
    "annular", "exponion", "drift", "vector", "pami20", "index", "unik",
]


def run_tab04():
    tasks = []
    for dataset, n in BENCH_DATASETS:
        X = load_dataset(dataset, n=n, seed=0)
        for k in [SMALL_K, MID_K]:
            tasks.append(compare_algorithms(METHODS, X, k, repeats=1, max_iter=8))
    ratings = rate_algorithms(tasks)
    rows = []
    for name in METHODS:
        rows.append(
            [name] + [render_circles(ratings[name][criterion]) for criterion in CRITERIA]
        )
    return format_table(
        ["method", "leaderbd", "space", "param-free", "data-acc",
         "bound-acc", "distance"],
        rows,
        title=f"Table 4 (computed) over {len(tasks)} tasks — darker = better",
    )


def test_tab04_summary(benchmark):
    text = benchmark.pedantic(run_tab04, rounds=1, iterations=1)
    report("tab04_summary", text)
