"""Figure 11 — bound accesses and bound updates per method.

The paper's reading: Yinyang does far fewer bound accesses/updates than
methods with similar pruning ratios (explaining its speed), Heap touches
the fewest bounds of all, and the index-based method does none at all —
data access, bound access and bound update are first-class cost factors.
"""

from __future__ import annotations

from _common import LARGE_K, report
from repro.datasets import load_dataset
from repro.eval import compare_algorithms, format_table

METHODS = [
    "elkan", "hamerly", "drake", "yinyang", "regroup", "heap",
    "annular", "exponion", "drift", "vector", "pami20", "index",
]


def run_fig11():
    blocks = []
    for dataset, n in [("BigCross", 1500), ("KeggDirect", 1000)]:
        X = load_dataset(dataset, n=n, seed=0)
        records = compare_algorithms(METHODS, X, LARGE_K, repeats=1, max_iter=10)
        rows = [
            [
                record.algorithm,
                int(record.bound_accesses),
                int(record.bound_updates),
                int(record.point_accesses),
                f"{record.pruning_ratio:.0%}",
            ]
            for record in records
        ]
        blocks.append(
            format_table(
                ["method", "bound_access", "bound_update", "point_access", "pruned"],
                rows,
                title=f"{dataset} (n={n}, k={LARGE_K}) — access statistics",
            )
        )
    return "\n\n".join(blocks)


def test_fig11_bound_stats(benchmark):
    text = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    report("fig11_bound_stats", text)
