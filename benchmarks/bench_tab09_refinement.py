"""Table 9 — refinement-phase speedup over Lloyd (SEQU / INDE / UniK), per
dataset.

SEQU uses the delta (changed-points) refinement, INDE and UniK the
sum-vector refinement, against Lloyd's full rescan — reproducing the
uniformly large refinement speedups of the paper's Table 9.
"""

from __future__ import annotations

from _common import MID_K, report
from repro.core import make_algorithm
from repro.core.initialization import init_kmeans_plus_plus
from repro.datasets import load_dataset
from repro.eval import format_table

DATASETS = [
    ("BigCross", 1200), ("Conflong", 1000), ("Covtype", 1000),
    ("Europe", 1200), ("KeggDirect", 800), ("NYC-Taxi", 1500),
    ("Skin", 1000), ("Power", 1200), ("RoadNetwork", 1000),
]


def run_tab09():
    rows = []
    for name, n in DATASETS:
        X = load_dataset(name, n=n, seed=0)
        C0 = init_kmeans_plus_plus(X, MID_K, seed=0)
        lloyd = make_algorithm("lloyd").fit(X, MID_K, initial_centroids=C0, max_iter=8)
        entries = [name, round(lloyd.refinement_time, 4)]
        for spec in ["yinyang", "index", "unik"]:
            result = make_algorithm(spec).fit(X, MID_K, initial_centroids=C0, max_iter=8)
            speedup = (
                lloyd.refinement_time / result.refinement_time
                if result.refinement_time
                else float("inf")
            )
            entries.append(round(speedup, 2))
        rows.append(entries)
    return format_table(
        ["dataset", "lloyd_refine_s", "SEQU_x", "INDE_x", "UniK_x"],
        rows,
        title=f"Refinement speedup over Lloyd (k={MID_K})",
    )


def test_tab09_refinement(benchmark):
    text = benchmark.pedantic(run_tab09, rounds=1, iterations=1)
    report("tab09_refinement", text)
