"""Compare two ``BENCH_backends.json`` reports and fail on regressions.

CI's ``backend-bench`` job downloads the previous successful run's
benchmark artifact and runs::

    python benchmarks/bench_diff.py previous/BENCH_backends.json BENCH_backends.json

The diff prints one readable row per algorithm entry (previous speedup,
current speedup, delta) and exits non-zero if any *gated* entry's speedup
regressed by more than the tolerance (default 20%).  Ungated entries —
e.g. the sharded cells measured on a single core — are reported but never
fail the diff, and entries present on only one side are reported as
added/removed.  Absolute wall-clock is deliberately not compared: runner
hardware varies between runs, but each report's speedups are ratios
measured on one machine, so their drift is meaningful.

Entries carrying ``ipc_bytes_per_iter`` (the sharded engine's data-plane
cells) get a second table: per-iteration IPC bytes are hardware
independent, so growth beyond the tolerance fails the diff even on
single-core runners where the wall-clock gate is off.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

#: fraction of the previous speedup a gated entry may lose before failing
DEFAULT_TOLERANCE = 0.20


def diff_reports(
    previous: Dict, current: Dict, tolerance: float = DEFAULT_TOLERANCE
) -> Tuple[str, List[str]]:
    """Render the comparison table and collect regression messages."""
    prev_algos = previous.get("algorithms", {})
    curr_algos = current.get("algorithms", {})
    names = sorted(set(prev_algos) | set(curr_algos))
    width = max([len(n) for n in names] + [len("algorithm")])
    header = (
        f"{'algorithm':<{width}}  {'previous':>9}  {'current':>9}  "
        f"{'delta':>8}  status"
    )
    lines = [header, "-" * len(header)]
    regressions: List[str] = []
    for name in names:
        prev = prev_algos.get(name)
        curr = curr_algos.get(name)
        if prev is None:
            lines.append(
                f"{name:<{width}}  {'-':>9}  {curr['speedup']:>8.2f}x  "
                f"{'-':>8}  added"
            )
            continue
        if curr is None:
            lines.append(
                f"{name:<{width}}  {prev['speedup']:>8.2f}x  {'-':>9}  "
                f"{'-':>8}  removed"
            )
            continue
        before, after = prev["speedup"], curr["speedup"]
        delta = (after - before) / before if before else 0.0
        # Entries without an explicit flag (the per-algorithm vectorized
        # cells) are gated by the job-wide floor; sharded/serving entries
        # carry their own flag, false when measured on a single core.
        gated = bool(curr.get("gated", True))
        if gated and delta < -tolerance:
            status = f"REGRESSED (>{tolerance:.0%} loss)"
            regressions.append(
                f"{name}: speedup fell {before:.2f}x -> {after:.2f}x "
                f"({delta:+.1%}, tolerance -{tolerance:.0%})"
            )
        elif not gated:
            status = "ok (ungated)"
        else:
            status = "ok"
        lines.append(
            f"{name:<{width}}  {before:>8.2f}x  {after:>8.2f}x  "
            f"{delta:>+7.1%}  {status}"
        )
    ipc_lines, ipc_regressions = _diff_ipc(
        prev_algos, curr_algos, names, width, tolerance
    )
    if ipc_lines:
        lines.append("")
        lines.extend(ipc_lines)
    regressions.extend(ipc_regressions)
    return "\n".join(lines), regressions


def _diff_ipc(
    prev_algos: Dict,
    curr_algos: Dict,
    names: List[str],
    width: int,
    tolerance: float,
) -> Tuple[List[str], List[str]]:
    """Compare ``ipc_bytes_per_iter`` where present (PR 10's data plane).

    Per-iteration IPC bytes are deterministic — a pure function of the
    engine's wire format, not of runner hardware — so growth beyond the
    tolerance fails the diff even for entries whose wall-clock gate is
    off (single-core runners).  Reports missing the field on either side
    (pre-data-plane baselines) are reported informationally, never
    failed: the diff must stay usable across the engine transition.
    """
    rows = [
        name for name in names
        if "ipc_bytes_per_iter" in prev_algos.get(name, {})
        or "ipc_bytes_per_iter" in curr_algos.get(name, {})
    ]
    if not rows:
        return [], []
    header = (
        f"{'ipc bytes/iter':<{width}}  {'previous':>9}  {'current':>9}  "
        f"{'delta':>8}  status"
    )
    lines = [header, "-" * len(header)]
    regressions: List[str] = []
    for name in rows:
        before = prev_algos.get(name, {}).get("ipc_bytes_per_iter")
        after = curr_algos.get(name, {}).get("ipc_bytes_per_iter")
        if before is None or after is None:
            status = "added" if before is None else "removed"
            lines.append(
                f"{name:<{width}}  "
                f"{'-' if before is None else before:>9}  "
                f"{'-' if after is None else after:>9}  {'-':>8}  {status}"
            )
            continue
        delta = (after - before) / before if before else 0.0
        if delta > tolerance:
            status = f"REGRESSED (>{tolerance:.0%} growth)"
            regressions.append(
                f"{name}: ipc bytes/iter grew {before} -> {after} "
                f"({delta:+.1%}, tolerance +{tolerance:.0%})"
            )
        else:
            status = "ok"
        lines.append(
            f"{name:<{width}}  {before:>9}  {after:>9}  {delta:>+7.1%}  {status}"
        )
    return lines, regressions


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("previous", type=Path,
                        help="BENCH_backends.json from the previous run")
    parser.add_argument("current", type=Path,
                        help="BENCH_backends.json from this run")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional speedup loss for gated "
                             "entries (default %(default)s)")
    args = parser.parse_args(argv)
    previous = json.loads(args.previous.read_text())
    current = json.loads(args.current.read_text())
    table, regressions = diff_reports(previous, current, args.tolerance)
    print(table)
    if regressions:
        print("\nbenchmark regressions:", file=sys.stderr)
        for message in regressions:
            print(f"  {message}", file=sys.stderr)
        return 1
    print("\nno gated regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
