"""Figure 7 — the five index structures: construction and clustering time
as dimensionality ``d`` and data scale ``n`` vary (BigCross surrogate).

Expected shape (paper Section 7.2.1): construction cost rises with both
``d`` and ``n`` and is far worse for the insertion-built M-tree; Ball-tree
is the best clustering index on average; kd-tree degrades fastest with
dimensionality.
"""

from __future__ import annotations

import time

from _common import SMALL_K, report
from repro.core.index_kmeans import IndexKMeans
from repro.datasets import load_dataset
from repro.eval import format_table
from repro.indexes import INDEX_CLASSES, build_index

INDEXES = ["ball-tree", "kd-tree", "m-tree", "cover-tree", "hkt", "anchors"]


def _measure(X, k):
    rows = []
    for name in INDEXES:
        begin = time.perf_counter()
        tree = build_index(name, X, **({} if name == "cover-tree" else {"capacity": 30}))
        build = time.perf_counter() - begin
        result = IndexKMeans(tree=tree).fit(X, k, seed=0, max_iter=10)
        rows.append(
            [
                name,
                round(build, 4),
                int(tree.counters.distance_computations),
                round(result.total_time, 4),
                f"{result.pruning_ratio:.0%}",
            ]
        )
    return rows


def run_fig07():
    blocks = []
    # Vary d at fixed n (the paper fixes n = 10,000 here; we use 1,000).
    for d in [2, 8, 32, 57]:
        X = load_dataset("BigCross", n=1000, d=d, seed=0)
        blocks.append(
            format_table(
                ["index", "build_s", "build_dists", "cluster_s", "pruned"],
                _measure(X, SMALL_K),
                title=f"vary d: n=1000, d={d}, k={SMALL_K}",
            )
        )
    # Vary n at the paper dimensionality.
    for n in [500, 1500, 3000]:
        X = load_dataset("BigCross", n=n, seed=0)
        blocks.append(
            format_table(
                ["index", "build_s", "build_dists", "cluster_s", "pruned"],
                _measure(X, SMALL_K),
                title=f"vary n: n={n}, d=57, k={SMALL_K}",
            )
        )
    return "\n\n".join(blocks)


def test_fig07_indexes(benchmark):
    text = benchmark.pedantic(run_fig07, rounds=1, iterations=1)
    report("fig07_indexes", text)
