"""Extension bench (paper Section A.5) — configuration-knob discovery.

Random search over the extended knob space (bound x traversal x capacity x
block filter) on two dataset shapes, reporting the best configurations
found against the defaults the paper evaluates.  This is the "new
configurations will form new algorithms" direction of the future-work
section, made runnable.
"""

from __future__ import annotations

from _common import MID_K, report
from repro.core.knobs import KnobConfig
from repro.datasets import load_dataset
from repro.eval import format_table
from repro.tuning import exhaustive_search, random_search


def run_ext_knobs():
    blocks = []
    for dataset, n in [("NYC-Taxi", 1200), ("Covtype", 1000)]:
        X = load_dataset(dataset, n=n, seed=0)
        discovered = random_search(
            X, MID_K, budget=10, metric="modeled_cost", max_iter=6, seed=0
        )
        baselines = exhaustive_search(
            X, MID_K,
            [KnobConfig(bound="yinyang"), KnobConfig(index="pure"),
             KnobConfig(index="single")],
            metric="modeled_cost", max_iter=6,
        )
        rows = [
            [result.config.label, result.config.capacity,
             result.config.block_filter,
             round(result.metric_value / 1e6, 2),
             f"{result.pruning_ratio:.0%}"]
            for result in discovered[:5]
        ]
        rows.append(["--- defaults ---", "", "", "", ""])
        rows.extend(
            [
                [result.config.label, result.config.capacity,
                 result.config.block_filter,
                 round(result.metric_value / 1e6, 2),
                 f"{result.pruning_ratio:.0%}"]
                for result in baselines
            ]
        )
        blocks.append(
            format_table(
                ["config", "capacity", "block", "cost_Mops", "pruned"],
                rows,
                title=f"{dataset} (n={n}, k={MID_K}) — top discovered configs",
            )
        )
    return "\n\n".join(blocks)


def test_ext_knob_discovery(benchmark):
    text = benchmark.pedantic(run_ext_knobs, rounds=1, iterations=1)
    report("ext_knob_discovery", text)
