"""Figure 1 — motivating comparison: Regroup, Yinyang, Index, Full.

The paper's headline observations, reproduced here on BigCross- and
NYC-like surrogates:

* the index-based method is competitive (and dominant on low-d spatial
  data), contradicting the "index is slow beyond d = 20" folklore;
* ``Full`` — every pruning mechanism at once — computes the *fewest*
  distances yet is the slowest overall, because bound traffic dominates.

Reported per method: total time, distance-computation share of the modeled
cost (the gray "Distance" bar of Figure 1), and pruning ratio.
"""

from __future__ import annotations

from _common import MID_K, fmt_pct, report
from repro.datasets import load_dataset
from repro.eval import compare_algorithms, format_table


def _distance_share(record) -> float:
    distance_cost = record.distance_computations * record.d
    return distance_cost / record.modeled_cost if record.modeled_cost else 0.0


def run_fig01():
    lines = []
    for dataset, n in [("BigCross", 1500), ("NYC-Taxi", 2000)]:
        X = load_dataset(dataset, n=n, seed=0)
        records = compare_algorithms(
            ["regroup", "yinyang", "index", "full"],
            X, MID_K, repeats=2, max_iter=10,
        )
        rows = [
            [
                record.algorithm,
                round(record.total_time, 4),
                fmt_pct(_distance_share(record)),
                fmt_pct(record.pruning_ratio),
                int(record.distance_computations),
            ]
            for record in records
        ]
        lines.append(
            format_table(
                ["method", "time_s", "distance_share", "pruned", "distances"],
                rows,
                title=f"{dataset} (n={n}, d={X.shape[1]}, k={MID_K})",
            )
        )
        # The paper's claim: Full computes the fewest distances.
        by_name = {record.algorithm: record for record in records}
        fewest = min(records, key=lambda r: r.distance_computations)
        lines.append(f"fewest distances: {fewest.algorithm}")
    return "\n\n".join(lines)


def test_fig01_motivation(benchmark):
    text = benchmark.pedantic(run_fig01, rounds=1, iterations=1)
    report("fig01_motivation", text)
