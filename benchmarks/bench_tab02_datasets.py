"""Table 2 — dataset overview: n, d, Ball-tree build time and node count.

The surrogate registry mirrors the paper's 15 datasets at reduced scale;
this bench reports the same columns (construction time, #nodes) for the
default Ball-tree (capacity 30).
"""

from __future__ import annotations

import time

from _common import report
from repro.datasets import dataset_names, get_dataset_spec, load_dataset
from repro.eval import format_table
from repro.indexes.ball_tree import BallTree


def run_tab02():
    rows = []
    for name in dataset_names():
        spec = get_dataset_spec(name)
        X = load_dataset(name, seed=0)
        begin = time.perf_counter()
        tree = BallTree(X, capacity=30)
        build = time.perf_counter() - begin
        rows.append(
            [
                name,
                len(X),
                X.shape[1],
                f"{spec.n_paper:,}",
                round(build, 4),
                tree.node_count(),
            ]
        )
    return format_table(
        ["dataset", "n(scaled)", "d", "n(paper)", "build_s", "nodes"],
        rows,
        title="Table 2: surrogate datasets and Ball-tree construction",
    )


def test_tab02_datasets(benchmark):
    text = benchmark.pedantic(run_tab02, rounds=1, iterations=1)
    report("tab02_datasets", text)
