"""Figure 10 — memory footprint of each method's auxiliary structures.

Reported in float64 slots for k in {5, 15, 40}.  Expected shape: Elkan's
O(nk) dwarfs everything as k grows; Heap/Hamerly/Pami20 stay O(n) or O(k);
the Ball-tree footprint is fixed once built and does not grow with k.
"""

from __future__ import annotations

from _common import LARGE_K, MID_K, SMALL_K, report
from repro.datasets import load_dataset
from repro.eval import compare_algorithms, format_table

METHODS = [
    "elkan", "hamerly", "drake", "yinyang", "regroup", "heap",
    "annular", "exponion", "drift", "vector", "pami20", "index",
]


def run_fig10():
    X = load_dataset("Covtype", n=1200, seed=0)
    footprints = {}
    for k in [SMALL_K, MID_K, LARGE_K]:
        records = compare_algorithms(METHODS, X, k, repeats=1, max_iter=5)
        for record in records:
            footprints.setdefault(record.algorithm, {})[k] = int(record.footprint_floats)
    rows = [
        [name] + [footprints[name][k] for k in (SMALL_K, MID_K, LARGE_K)]
        for name in METHODS
    ]
    text = format_table(
        ["method", f"k={SMALL_K}", f"k={MID_K}", f"k={LARGE_K}"],
        rows,
        title=f"Covtype (n=1200) — auxiliary footprint in floats",
    )
    index_growth = footprints["index"][LARGE_K] - footprints["index"][SMALL_K]
    elkan_growth = footprints["elkan"][LARGE_K] - footprints["elkan"][SMALL_K]
    return text + (
        f"\nindex footprint growth with k: {index_growth} floats"
        f"\nelkan footprint growth with k: {elkan_growth} floats"
    )


def test_fig10_footprint(benchmark):
    text = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    report("fig10_footprint", text)
