"""Appendix Figures 19-26 — the full-matrix versions of Figures 8-11.

The paper's technical report expands Figures 8-11 to every dataset and
adds the k=10 breakdowns (its Figures 19-26).  This bench runs the full
matrix — all registry datasets x k in {SMALL_K, MID_K} x the method roster
— and reports speedup, pruning, accesses and footprint per cell, writing
one compact block per dataset.
"""

from __future__ import annotations

from _common import MID_K, SMALL_K, guarded_compare, report
from repro.datasets import dataset_names, load_dataset
from repro.eval import format_table

METHODS = ["lloyd", "elkan", "hamerly", "drake", "yinyang", "heap", "index", "unik"]


def run_full_sweep():
    blocks = []
    for name in dataset_names():
        n = 200 if name in ("Mnist", "MSD") else 800
        X = load_dataset(name, n=n, seed=0)
        for k in [SMALL_K, MID_K]:
            # The longest campaign in the suite: run each cell under the
            # fault-tolerant runtime so one pathological combination cannot
            # hang or kill the whole matrix.
            records = guarded_compare(METHODS, X, k, repeats=1, max_iter=8)
            base = records[0]
            rows = [
                [
                    record.algorithm,
                    round(base.modeled_cost / record.modeled_cost, 2)
                    if record.modeled_cost
                    else float("inf"),
                    f"{record.pruning_ratio:.0%}",
                    int(record.point_accesses),
                    int(record.bound_accesses + record.bound_updates),
                    int(record.footprint_floats),
                ]
                for record in records
            ]
            blocks.append(
                format_table(
                    ["method", "cost_x", "pruned", "point_acc",
                     "bound_ops", "floats"],
                    rows,
                    title=f"{name} (n={n}, d={X.shape[1]}, k={k})",
                )
            )
    return "\n\n".join(blocks)


def test_appendix_full_sweep(benchmark):
    text = benchmark.pedantic(run_full_sweep, rounds=1, iterations=1)
    report("appendix_full_sweep", text)
