"""Figure 9 — refinement speedup from incremental maintenance.

Three refinement strategies on the same Lloyd assignment:

* ``rescan`` — the textbook full re-read (n point accesses/iteration);
* ``delta`` — Ding et al.'s changed-points-only update;
* ``none``  — UniK's sum-vector maintenance (zero refinement accesses).

The paper's finding: the incremental method "significantly improves the
efficiency for all algorithms".
"""

from __future__ import annotations

from _common import MID_K, report
from repro.core.lloyd import LloydKMeans
from repro.core.unik import UniKKMeans
from repro.core.yinyang import YinyangKMeans
from repro.core.initialization import init_kmeans_plus_plus
from repro.datasets import load_dataset
from repro.eval import format_table


class _RescanYinyang(YinyangKMeans):
    refinement = "rescan"


def run_fig09():
    blocks = []
    for dataset, n in [("BigCross", 1500), ("NYC-Taxi", 2000)]:
        X = load_dataset(dataset, n=n, seed=0)
        C0 = init_kmeans_plus_plus(X, MID_K, seed=0)
        variants = [
            ("lloyd+rescan", LloydKMeans(refinement="rescan")),
            ("lloyd+delta", LloydKMeans(refinement="delta")),
            ("yinyang+rescan", _RescanYinyang()),
            ("yinyang+delta", YinyangKMeans()),
            ("unik+sumvec", UniKKMeans()),
        ]
        rows = []
        baseline = None
        for label, algo in variants:
            result = algo.fit(X, MID_K, initial_centroids=C0, max_iter=10)
            if baseline is None:
                baseline = result.refinement_time
            rows.append(
                [
                    label,
                    round(result.refinement_time, 5),
                    round(baseline / result.refinement_time, 2)
                    if result.refinement_time
                    else float("inf"),
                    int(result.counters.point_accesses),
                ]
            )
        blocks.append(
            format_table(
                ["variant", "refine_s", "refine_speedup", "point_accesses"],
                rows,
                title=f"{dataset} (n={n}, k={MID_K}) — refinement strategies",
            )
        )
    return "\n\n".join(blocks)


def test_fig09_refinement(benchmark):
    text = benchmark.pedantic(run_fig09, rounds=1, iterations=1)
    report("fig09_refinement", text)
