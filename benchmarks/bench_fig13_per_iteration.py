"""Figure 13 — running time of each iteration (KeggUndirect- and
BigCross-like data).

Expected shape: per-iteration time drops sharply over the first few
iterations and then flattens (bounds tighten, fewer points move); UniK's
adaptive traversal tracks the better of the index/sequential methods.
"""

from __future__ import annotations

from _common import MID_K, report
from repro.core import make_algorithm
from repro.core.initialization import init_kmeans_plus_plus
from repro.datasets import load_dataset
from repro.eval import format_table
from repro.eval.plotting import line_series


def run_fig13():
    blocks = []
    for dataset, n in [("KeggUndirect", 1200), ("BigCross", 1500)]:
        X = load_dataset(dataset, n=n, seed=0)
        C0 = init_kmeans_plus_plus(X, MID_K, seed=0)
        series = {}
        for name in ["lloyd", "yinyang", "index", "unik"]:
            result = make_algorithm(name).fit(
                X, MID_K, initial_centroids=C0, max_iter=10
            )
            series[name] = [
                stats.assignment_time + stats.refinement_time
                for stats in result.iteration_stats
            ]
        iterations = max(len(v) for v in series.values())
        rows = []
        for t in range(iterations):
            rows.append(
                [t]
                + [
                    round(series[name][t], 5) if t < len(series[name]) else "-"
                    for name in ["lloyd", "yinyang", "index", "unik"]
                ]
            )
        blocks.append(
            format_table(
                ["iter", "lloyd", "yinyang(SEQU)", "index(INDE)", "unik"],
                rows,
                title=f"{dataset} (n={n}, k={MID_K}) — seconds per iteration",
            )
        )
        blocks.append(
            line_series(
                {
                    name: list(enumerate(values))
                    for name, values in series.items()
                },
                width=50, height=10,
                title=f"{dataset}: time per iteration (shape view)",
            )
        )
    return "\n\n".join(blocks)


def test_fig13_per_iteration(benchmark):
    text = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    report("fig13_per_iteration", text)
