"""Scale crossover — where batch pruning overtakes the vectorized full scan
in *wall-clock*, not just in counters.

The paper's headline NYC numbers (150-389x) come at n = 3.5M.  In this
Python substrate the full scan is numpy-vectorized (hard to beat at small
n), so this bench sweeps n upward on the NYC surrogate to locate the
wall-clock crossover and to show the work ratio growing with scale — the
trend that extrapolates to the paper's regime.
"""

from __future__ import annotations

from _common import report
from repro.core import make_algorithm
from repro.core.initialization import init_kmeans_plus_plus
from repro.datasets import load_dataset
from repro.eval import format_table

K = 50
SIZES = [2000, 8000, 20000]


def run_crossover():
    rows = []
    for n in SIZES:
        X = load_dataset("NYC-Taxi", n=n, seed=0)
        C0 = init_kmeans_plus_plus(X, K, seed=0)
        lloyd = make_algorithm("lloyd").fit(X, K, initial_centroids=C0, max_iter=5)
        index = make_algorithm("index").fit(X, K, initial_centroids=C0, max_iter=5)
        unik = make_algorithm("unik").fit(X, K, initial_centroids=C0, max_iter=5)
        rows.append(
            [
                n,
                round(lloyd.total_time, 3),
                round(index.total_time, 3),
                round(unik.total_time, 3),
                round(lloyd.total_time / index.total_time, 2),
                round(
                    lloyd.counters.distance_computations
                    / index.counters.distance_computations,
                    1,
                ),
                f"{index.pruning_ratio:.0%}",
            ]
        )
    return format_table(
        ["n", "lloyd_s", "index_s", "unik_s", "index_time_x",
         "index_work_x", "pruned"],
        rows,
        title=f"NYC surrogate, k={K}, 5 iterations — scale sweep",
    )


def test_scale_crossover(benchmark):
    text = benchmark.pedantic(run_crossover, rounds=1, iterations=1)
    report("scale_crossover", text)
