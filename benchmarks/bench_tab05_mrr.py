"""Table 5 — MRR of knob-configuration prediction: BDT baseline vs the five
learned models (DT, RF, SVM, kNN, RC), with cumulative feature groups
(basic / +tree / +leaf) and both ground truths (full vs selective running).

Expected shape: every learned model beats BDT by a wide margin; selective
running (more training data per unit time — here, per unit work) gives the
best scores; DT is among the strongest and cheapest models.
"""

from __future__ import annotations

from _common import report
from repro.datasets import dataset_names, load_dataset
from repro.eval import format_table
from repro.tuning import UTune, evaluate_bdt, generate_ground_truth
from repro.tuning.models.metrics import train_test_split

import numpy as np

MODELS = ["dt", "rf", "svm", "knn", "rc"]
FEATURE_SETS = ["basic", "tree", "leaf"]


def _make_tasks():
    tasks = []
    for name in dataset_names():
        base_n = 200 if name in ("Mnist", "MSD") else 600
        X = load_dataset(name, n=base_n, seed=0)
        for k in [5, 15, 40]:
            tasks.append((name, X, k))
    return tasks


def _split(records, seed=0):
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(records))
    cut = int(len(records) * 0.7)
    train = [records[i] for i in order[:cut]]
    test = [records[i] for i in order[cut:]]
    return train, test


def run_tab05():
    tasks = _make_tasks()
    blocks = []
    for selective, tag in [(False, ""), (True, "S-")]:
        records = generate_ground_truth(
            tasks, selective=selective, max_iter=4, metric="modeled_cost"
        )
        train, test = _split(records)
        bdt = evaluate_bdt(test)
        rows = [["BDT", "-", round(bdt["bound_mrr"], 2), round(bdt["index_mrr"], 2)]]
        for feature_set in FEATURE_SETS:
            for model in MODELS:
                tuner = UTune(model=model, feature_set=feature_set).fit(train)
                scores = tuner.evaluate(test)
                rows.append(
                    [
                        model.upper(),
                        feature_set,
                        round(scores["bound_mrr"], 2),
                        round(scores["index_mrr"], 2),
                    ]
                )
        blocks.append(
            format_table(
                ["model", "features", f"{tag}Bound@MRR", f"{tag}Index@MRR"],
                rows,
                title=f"{'selective' if selective else 'full'} running "
                f"({len(train)} train / {len(test)} test records)",
            )
        )
    return "\n\n".join(blocks)


def test_tab05_mrr(benchmark):
    text = benchmark.pedantic(run_tab05, rounds=1, iterations=1)
    report("tab05_mrr", text)
