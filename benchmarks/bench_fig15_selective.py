"""Figure 15 — efficiency of ground-truth generation: full vs selective
running (Algorithm 2).

Expected shape: selective running labels the same tasks in a fraction of
the time, because it skips the slow bound methods and tests the UniK
traversals only when the pure index already wins.
"""

from __future__ import annotations

from _common import report
from repro.datasets import load_dataset
from repro.eval import format_table
from repro.tuning import generate_ground_truth

TASKS = [
    ("NYC-Taxi", 800, 5),
    ("NYC-Taxi", 800, 15),
    ("Covtype", 800, 5),
    ("KeggDirect", 800, 10),
    ("Mnist", 200, 5),
]


def run_fig15():
    tasks = [
        (name, load_dataset(name, n=n, seed=0), k) for name, n, k in TASKS
    ]
    selective = generate_ground_truth(tasks, selective=True, max_iter=5)
    full = generate_ground_truth(tasks, selective=False, max_iter=5)
    rows = []
    for sel, ful in zip(selective, full):
        rows.append(
            [
                f"{sel.dataset}/k={sel.k}",
                round(sel.generation_time, 3),
                round(ful.generation_time, 3),
                round(ful.generation_time / sel.generation_time, 2),
            ]
        )
    total_sel = sum(record.generation_time for record in selective)
    total_ful = sum(record.generation_time for record in full)
    rows.append(["TOTAL", round(total_sel, 3), round(total_ful, 3),
                 round(total_ful / total_sel, 2)])
    return format_table(
        ["task", "selective_s", "full_s", "ratio"],
        rows,
        title="Ground-truth generation time: selective vs full running",
    )


def test_fig15_selective(benchmark):
    text = benchmark.pedantic(run_fig15, rounds=1, iterations=1)
    report("fig15_selective", text)
