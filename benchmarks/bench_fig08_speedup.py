"""Figure 8 — overall speedup over Lloyd's algorithm for every sequential
method plus the Ball-tree index method, across datasets.

Both wall-clock and work (distance-count) speedups are reported; the paper's
claims to check: the index method dominates on low-d spatial data (NYC),
Yinyang/Regroup lead among sequential methods on most datasets, and the
speedup is *not* proportional to the pruning ratio.
"""

from __future__ import annotations

from _common import BENCH_DATASETS, MID_K, report
from repro.datasets import load_dataset
from repro.eval import compare_algorithms, format_table, speedup_table
from repro.eval.plotting import bar_chart

METHODS = [
    "lloyd", "elkan", "hamerly", "drake", "yinyang", "regroup",
    "heap", "annular", "exponion", "drift", "vector", "pami20", "index",
]


def run_fig08():
    blocks = []
    for dataset, n in BENCH_DATASETS:
        X = load_dataset(dataset, n=n, seed=0)
        records = compare_algorithms(METHODS, X, MID_K, repeats=2, max_iter=10)
        table = speedup_table(records)
        rows = [
            [
                name,
                round(table[name]["time"], 2),
                round(table[name]["work"], 2),
                round(table[name]["cost"], 2),
                f"{table[name]['pruning']:.0%}",
            ]
            for name in METHODS
        ]
        blocks.append(
            format_table(
                ["method", "time_x", "work_x", "cost_x", "pruned"],
                rows,
                title=f"{dataset} (n={n}, d={X.shape[1]}, k={MID_K}) — speedup over Lloyd",
            )
        )
        blocks.append(
            bar_chart(
                {name: table[name]["cost"] for name in METHODS},
                title=f"{dataset}: modeled-cost speedup",
                fmt="{:.2f}x",
            )
        )
    return "\n\n".join(blocks)


def test_fig08_speedup(benchmark):
    text = benchmark.pedantic(run_fig08, rounds=1, iterations=1)
    report("fig08_speedup", text)
