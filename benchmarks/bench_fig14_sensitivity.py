"""Figure 14 — sensitivity of INDE/SEQU/UniK to leaf capacity f, data scale
n, cluster count k, and dimensionality d (BigCross surrogate).

Expected shape: capacity barely moves UniK's performance; speedups rise
mildly with n, d and k.
"""

from __future__ import annotations

from _common import MID_K, report
from repro.core.index_kmeans import IndexKMeans
from repro.core.unik import UniKKMeans
from repro.core.yinyang import YinyangKMeans
from repro.datasets import load_dataset
from repro.eval import format_table, sweep_parameter


def run_fig14():
    blocks = []

    # Capacity sweep (UniK + pure index).
    X = load_dataset("BigCross", n=1500, seed=0)
    rows = []
    for f in [10, 30, 60, 120]:
        unik = UniKKMeans(capacity=f).fit(X, MID_K, seed=0, max_iter=8)
        inde = IndexKMeans(capacity=f).fit(X, MID_K, seed=0, max_iter=8)
        rows.append(
            [f, round(unik.total_time, 4), round(inde.total_time, 4),
             int(unik.counters.distance_computations)]
        )
    blocks.append(
        format_table(
            ["capacity", "unik_s", "index_s", "unik_dists"],
            rows,
            title=f"capacity sweep (n=1500, k={MID_K})",
        )
    )

    specs = [
        lambda: YinyangKMeans(),
        lambda: IndexKMeans(),
        lambda: UniKKMeans(),
    ]

    def block(title, values, make_task):
        sweep = sweep_parameter(values, make_task, specs, repeats=1, max_iter=8)
        rows = []
        for value, records in sweep.items():
            rows.append(
                [value] + [round(record.total_time, 4) for record in records]
            )
        return format_table(
            [title, "yinyang_s", "index_s", "unik_s"], rows,
            title=f"{title} sweep",
        )

    blocks.append(block("n", [500, 1500, 3000],
                        lambda n: (load_dataset("BigCross", n=n, seed=0), MID_K)))
    blocks.append(block("k", [5, 15, 40],
                        lambda k: (load_dataset("BigCross", n=1500, seed=0), k)))
    blocks.append(block("d", [4, 16, 57],
                        lambda d: (load_dataset("BigCross", n=1500, d=d, seed=0), MID_K)))
    return "\n\n".join(blocks)


def test_fig14_sensitivity(benchmark):
    text = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    report("fig14_sensitivity", text)
