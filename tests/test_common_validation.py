"""Unit tests for repro.common.validation."""

import numpy as np
import pytest

from repro.common.exceptions import ValidationError
from repro.common.validation import (
    check_data_matrix,
    check_k,
    check_labels,
    check_positive,
    check_probability,
)


class TestCheckDataMatrix:
    def test_accepts_plain_lists(self):
        out = check_data_matrix([[1, 2], [3, 4]])
        assert out.shape == (2, 2)
        assert out.dtype == np.float64

    def test_promotes_1d_to_column(self):
        out = check_data_matrix([1.0, 2.0, 3.0])
        assert out.shape == (3, 1)

    def test_rejects_3d(self):
        with pytest.raises(ValidationError, match="2-D"):
            check_data_matrix(np.zeros((2, 2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="NaN"):
            check_data_matrix([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError, match="NaN or infinite"):
            check_data_matrix([[np.inf, 0.0]])

    def test_min_rows_enforced(self):
        with pytest.raises(ValidationError, match="at least 5 rows"):
            check_data_matrix(np.ones((3, 2)), min_rows=5)

    def test_copy_leaves_original_untouched(self):
        original = np.ones((3, 2))
        out = check_data_matrix(original, copy=True)
        out[0, 0] = 99.0
        assert original[0, 0] == 1.0

    def test_output_is_contiguous(self):
        fortran = np.asfortranarray(np.ones((4, 3)))
        out = check_data_matrix(fortran)
        assert out.flags["C_CONTIGUOUS"]


class TestCheckK:
    def test_valid(self):
        assert check_k(3, 10) == 3

    def test_k_equal_n_allowed(self):
        assert check_k(10, 10) == 10

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_k(0, 5)

    def test_rejects_k_above_n(self):
        with pytest.raises(ValidationError, match="exceeds"):
            check_k(6, 5)

    def test_rejects_float(self):
        with pytest.raises(ValidationError, match="integer"):
            check_k(2.5, 5)

    def test_numpy_integer_accepted(self):
        assert check_k(np.int64(4), 10) == 4


class TestScalarChecks:
    def test_positive_strict(self):
        assert check_positive(0.5, "x") == 0.5
        with pytest.raises(ValidationError):
            check_positive(0.0, "x")

    def test_positive_nonstrict(self):
        assert check_positive(0.0, "x", strict=False) == 0.0
        with pytest.raises(ValidationError):
            check_positive(-1.0, "x", strict=False)

    def test_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValidationError):
            check_probability(1.5, "p")
        with pytest.raises(ValidationError):
            check_probability(-0.1, "p")


class TestCheckLabels:
    def test_valid(self):
        labels = check_labels(np.array([0, 1, 2]), 3, 3)
        assert labels.dtype == np.intp

    def test_wrong_shape(self):
        with pytest.raises(ValidationError, match="shape"):
            check_labels(np.array([0, 1]), 3)

    def test_out_of_range(self):
        with pytest.raises(ValidationError, match="out of range"):
            check_labels(np.array([0, 3]), 2, 3)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError, match="out of range"):
            check_labels(np.array([-1, 0]), 2, 3)
