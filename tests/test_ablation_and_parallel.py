"""Tests for the Elkan bound ablation and the parallel harness."""

import numpy as np
import pytest

from repro.common.exceptions import ConfigurationError
from repro.core.elkan import ElkanKMeans
from repro.core.lloyd import LloydKMeans
from repro.datasets import make_blobs
from repro.eval.parallel import parallel_compare


@pytest.fixture(scope="module")
def data():
    X, _ = make_blobs(500, 6, 6, seed=111)
    return X


class TestElkanAblation:
    @pytest.mark.parametrize("use_inter,use_drift",
                             [(True, True), (True, False), (False, True)])
    def test_all_variants_exact(self, use_inter, use_drift, data, centroids_factory):
        C0 = centroids_factory(data, 10)
        base = LloydKMeans().fit(data, 10, initial_centroids=C0, max_iter=50)
        variant = ElkanKMeans(use_inter=use_inter, use_drift=use_drift)
        result = variant.fit(data, 10, initial_centroids=C0, max_iter=50)
        np.testing.assert_array_equal(result.labels, base.labels)

    def test_both_off_rejected(self):
        with pytest.raises(ConfigurationError):
            ElkanKMeans(use_inter=False, use_drift=False)

    def test_full_elkan_prunes_most(self, data, centroids_factory):
        C0 = centroids_factory(data, 10)
        full = ElkanKMeans().fit(data, 10, initial_centroids=C0, max_iter=30)
        no_inter = ElkanKMeans(use_inter=False).fit(
            data, 10, initial_centroids=C0, max_iter=30
        )
        no_drift = ElkanKMeans(use_drift=False).fit(
            data, 10, initial_centroids=C0, max_iter=30
        )
        # The full configuration prunes at least as much as either ablation;
        # the inter-bound's own k(k-1)/2 distances per iteration are its
        # overhead, so grant that allowance when comparing with no_inter.
        inter_overhead = (10 * 9 // 2) * full.n_iter
        assert (
            full.counters.distance_computations
            <= no_inter.counters.distance_computations + inter_overhead
        )
        assert full.counters.distance_computations <= no_drift.counters.distance_computations

    def test_no_drift_saves_bound_updates(self, data, centroids_factory):
        C0 = centroids_factory(data, 10)
        full = ElkanKMeans().fit(data, 10, initial_centroids=C0, max_iter=30)
        no_drift = ElkanKMeans(use_drift=False).fit(
            data, 10, initial_centroids=C0, max_iter=30
        )
        assert no_drift.counters.bound_updates < full.counters.bound_updates


class TestParallelHarness:
    def test_matches_serial_counters(self, data):
        from repro.eval import compare_algorithms

        serial = compare_algorithms(
            ["lloyd", "hamerly"], data, 5, repeats=1, max_iter=5, seed=3
        )
        parallel = parallel_compare(
            ["lloyd", "hamerly"], data, 5, repeats=1, max_iter=5, seed=3,
            max_workers=2,
        )
        for s, p in zip(serial, parallel):
            assert s.algorithm == p.algorithm
            assert s.distance_computations == p.distance_computations
            assert s.sse == pytest.approx(p.sse)

    def test_accepts_knob_configs(self, data):
        from repro.core.knobs import KnobConfig

        records = parallel_compare(
            [KnobConfig(bound="yinyang")], data, 4, repeats=1, max_iter=3,
            max_workers=2,
        )
        assert records[0].algorithm == "yinyang"

    def test_rejects_unpicklable_specs(self, data):
        with pytest.raises(TypeError, match="names or KnobConfig"):
            parallel_compare([lambda: LloydKMeans()], data, 3)
