"""Tests for the fault-tolerant sharded data-parallel execution engine.

The engine's contract (``docs/sharding.md``) is *bit-identity*: a sharded
fit produces the same labels, centroids (bitwise), iteration count, and
counter totals as the single-process vectorized backend — under every
shard count, runner, and recovery policy that retains all data.  These
tests pin that contract directly, replay the committed golden traces
through the sharded engine, drive the chaos matrix (crash / hang /
transient x strict / recompute / degrade), and property-check the
rank-order merge discipline against float non-associativity.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.exceptions import (
    ConfigurationError,
    ShardFailedError,
    ValidationError,
)
from repro.core import VECTORIZED_ALGORITHMS, make_algorithm
from repro.core.initialization import init_kmeans_plus_plus
from repro.core.refinement import accumulate_cluster_sums, merge_shard_assignments
from repro.datasets import make_blobs
from repro.eval.faults import FaultPlan
from repro.eval.harness import run_algorithm
from repro.eval.parallel import parallel_compare
from repro.eval.runtime import ExecutionPolicy
from repro.exec.sharded import (
    SHARD_KERNELS,
    SHARDED_ALGORITHMS,
    DegradedIteration,
    ShardFailurePolicy,
    make_sharded_algorithm,
    shard_bounds,
)

from tests.trace_utils import golden_path, golden_task, traced_class

COUNTER_FIELDS = (
    "changed",
    "distance_computations",
    "point_accesses",
    "node_accesses",
    "bound_accesses",
    "bound_updates",
)


@pytest.fixture(scope="module")
def task():
    """The golden task: uniform data, the pruning worst case (~10+ iters)."""
    return golden_task(0)


def assert_results_identical(got, want, *, context=""):
    """The engine's whole contract: bitwise-equal model and counters."""
    assert np.array_equal(got.labels, want.labels), f"{context}: labels diverge"
    assert got.centroids.tobytes() == want.centroids.tobytes(), (
        f"{context}: centroids are not bitwise identical"
    )
    assert got.n_iter == want.n_iter, f"{context}: iteration count diverges"
    assert got.sse == want.sse, f"{context}: SSE diverges"
    assert got.counters == want.counters, f"{context}: counter totals diverge"


class TestShardBounds:
    def test_partitions_contiguously(self):
        ranges = shard_bounds(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_remainder_goes_to_first_shards(self):
        sizes = [hi - lo for lo, hi in shard_bounds(11, 4)]
        assert sizes == [3, 3, 3, 2]

    def test_single_shard_covers_everything(self):
        assert shard_bounds(7, 1) == [(0, 7)]

    def test_one_row_per_shard(self):
        assert shard_bounds(3, 3) == [(0, 1), (1, 2), (2, 3)]

    def test_deterministic_in_shape_alone(self):
        assert shard_bounds(1000, 7) == shard_bounds(1000, 7)

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValidationError):
            shard_bounds(10, 0)


class TestShardFailurePolicy:
    @pytest.mark.parametrize("mode", ("strict", "recompute", "degrade"))
    def test_parse_known_modes(self, mode):
        assert ShardFailurePolicy.parse(mode).mode == mode

    def test_parse_none_defaults_to_strict(self):
        assert ShardFailurePolicy.parse(None).mode == "strict"

    def test_parse_instance_passthrough(self):
        policy = ShardFailurePolicy(mode="degrade")
        assert ShardFailurePolicy.parse(policy) is policy

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardFailurePolicy(mode="heroic")


class TestDegradedIteration:
    def test_round_trips_through_dict(self):
        record = DegradedIteration(
            iteration=3, shards=(1, 2), point_ranges=((10, 20), (20, 30)),
            error_types=("WorkerCrashError", "RunTimeoutError"),
        )
        assert DegradedIteration.from_dict(record.as_dict()) == record


class TestBitIdentity:
    """Sharded == single-process vectorized, bitwise, for every algorithm."""

    @pytest.mark.parametrize("shards", (2, 5))
    @pytest.mark.parametrize("name", sorted(SHARDED_ALGORITHMS))
    def test_inline_runner_matches_vectorized(self, name, shards, task):
        X, k, C0, max_iter = task
        want = VECTORIZED_ALGORITHMS[name]().fit(
            X, k, initial_centroids=C0, max_iter=max_iter
        )
        got = SHARDED_ALGORITHMS[name](shards=shards, runner="inline").fit(
            X, k, initial_centroids=C0, max_iter=max_iter
        )
        assert_results_identical(got, want, context=f"{name}/shards={shards}")
        assert got.extras["shards"] == shards

    def test_process_runner_matches_vectorized(self, task):
        X, k, C0, max_iter = task
        want = VECTORIZED_ALGORITHMS["lloyd"]().fit(
            X, k, initial_centroids=C0, max_iter=max_iter
        )
        got = SHARDED_ALGORITHMS["lloyd"](shards=3, runner="process").fit(
            X, k, initial_centroids=C0, max_iter=max_iter
        )
        assert_results_identical(got, want, context="lloyd/process")

    def test_more_shards_than_rows_clamps(self):
        X, _ = make_blobs(6, 2, 2, seed=1)
        result = SHARDED_ALGORITHMS["lloyd"](shards=50, runner="inline").fit(
            X, 2, max_iter=5, seed=0
        )
        assert result.extras["shards"] == 6


class TestGoldenReplay:
    """The sharded engine must replay the committed golden trajectories."""

    @pytest.mark.parametrize("name", ("lloyd", "elkan"))
    def test_sharded_replays_golden_trace(self, name):
        golden = json.loads(golden_path(name, 0).read_text())
        X, k, C0, max_iter = golden_task(0)
        algorithm = traced_class(SHARDED_ALGORITHMS[name])(
            shards=4, runner="inline"
        )
        result = algorithm.fit(X, k, initial_centroids=C0, max_iter=max_iter)
        assert result.n_iter == golden["n_iter"]
        assert result.converged == golden["converged"]
        assert result.sse == golden["sse"]
        assert result.centroids.tolist() == golden["final_centroids"]
        assert len(algorithm.trace_labels) == len(golden["iterations"])
        for t, (labels, stats, want) in enumerate(
            zip(algorithm.trace_labels, result.iteration_stats,
                golden["iterations"])
        ):
            assert labels.tolist() == want["labels"], (
                f"sharded {name} iteration {t}: labels diverge from golden"
            )
            for field in COUNTER_FIELDS:
                assert getattr(stats, field) == want[field], (
                    f"sharded {name} iteration {t}: {field} diverges"
                )


@pytest.fixture(scope="module")
def chaos_task():
    X, _ = make_blobs(120, 4, 4, seed=7)
    C0 = init_kmeans_plus_plus(X, 4, seed=0)
    return X, 4, C0


class TestChaosMatrix:
    """crash / hang / transient x strict / recompute / degrade."""

    FAULTS = {
        "kill": ("kill:lloyd:shard=1:iter=1", "WorkerCrashError"),
        "hang": ("hang:lloyd:shard=1:iter=1", "RunTimeoutError"),
    }

    def _fit(self, chaos_task, *, policy, fault, retries=0):
        X, k, C0 = chaos_task
        algorithm = SHARDED_ALGORITHMS["lloyd"](
            shards=3,
            shard_policy=policy,
            runner="process",
            fault_plan=FaultPlan.parse(fault) if fault else None,
            execution=ExecutionPolicy(
                timeout=2.0, retries=retries, backoff_base=0.01
            ),
        )
        return algorithm.fit(X, k, initial_centroids=C0, max_iter=6)

    @pytest.fixture(scope="class")
    def baseline(self, chaos_task):
        X, k, C0 = chaos_task
        return VECTORIZED_ALGORITHMS["lloyd"]().fit(
            X, k, initial_centroids=C0, max_iter=6
        )

    @pytest.mark.parametrize("kind", sorted(FAULTS))
    def test_strict_raises_classified_error(self, kind, chaos_task):
        fault, error_type = self.FAULTS[kind]
        with pytest.raises(ShardFailedError) as excinfo:
            self._fit(chaos_task, policy="strict", fault=fault)
        assert excinfo.value.shard == 1
        assert excinfo.value.iteration == 1
        assert excinfo.value.error_type == error_type

    @pytest.mark.parametrize("kind", sorted(FAULTS))
    def test_recompute_recovers_bit_identically(self, kind, chaos_task, baseline):
        fault, _ = self.FAULTS[kind]
        got = self._fit(chaos_task, policy="recompute", fault=fault)
        assert_results_identical(got, baseline, context=f"recompute/{kind}")
        assert "degraded_iterations" not in got.extras

    @pytest.mark.parametrize("kind", sorted(FAULTS))
    def test_degrade_finishes_with_audit_trail(self, kind, chaos_task):
        fault, error_type = self.FAULTS[kind]
        X, k, _ = chaos_task
        got = self._fit(chaos_task, policy="degrade", fault=fault)
        (degraded,) = got.extras["degraded_iterations"]
        assert degraded["iteration"] == 1
        assert degraded["shards"] == [1]
        assert degraded["point_ranges"] == [[40, 80]]  # shard_bounds(120, 3)
        assert degraded["error_types"] == [error_type]
        # Later healthy iterations reassign the stale points: the final
        # model is complete even though one iteration ran degraded.
        assert not np.any(got.labels < 0)
        assert got.n_iter >= 2

    @pytest.mark.parametrize("policy", ("strict", "recompute", "degrade"))
    def test_transient_is_retried_under_every_policy(
        self, policy, chaos_task, baseline
    ):
        # The supervised pool retries TransientError before the failure
        # policy ever engages, so every policy converges bit-identically.
        got = self._fit(
            chaos_task, policy=policy,
            fault="transient:lloyd:1:shard=1:iter=1", retries=2,
        )
        assert_results_identical(got, baseline, context=f"transient/{policy}")
        assert "degraded_iterations" not in got.extras

    def test_degrade_keeps_stale_labels_for_lost_range(self, chaos_task):
        # Lose shard 1 on *every* iteration: its rows keep the stale labels
        # from the last iteration that saw them (here: none after iter 0's
        # seed pass is also lost -> they stay -1 until a healthy pass).
        X, k, C0 = chaos_task
        algorithm = SHARDED_ALGORITHMS["lloyd"](
            shards=3, shard_policy="degrade", runner="process",
            fault_plan=FaultPlan.parse("kill:lloyd:shard=1"),
            execution=ExecutionPolicy(timeout=2.0, retries=0),
        )
        result = algorithm.fit(X, k, initial_centroids=C0, max_iter=3)
        assert np.all(result.labels[40:80] == -1)
        assert np.all(result.labels[:40] >= 0)
        assert np.all(result.labels[80:] >= 0)
        assert len(result.extras["degraded_iterations"]) == result.n_iter


@st.composite
def merge_cases(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    d = draw(st.integers(min_value=1, max_value=4))
    k = draw(st.integers(min_value=1, max_value=6))
    # Mix magnitudes so float addition order matters (1.0 + 1e16 loses the
    # 1.0): exactly the regime where a partial-sum merge would diverge.
    values = draw(
        st.lists(
            st.floats(
                min_value=-1e16, max_value=1e16,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=n * d, max_size=n * d,
        )
    )
    labels = draw(
        st.lists(st.integers(0, k - 1), min_size=n, max_size=n)
    )
    shards = draw(st.integers(min_value=1, max_value=min(6, n)))
    X = np.array(values, dtype=np.float64).reshape(n, d)
    return X, k, np.array(labels, dtype=np.intp), shards


class TestMergeDiscipline:
    @given(case=merge_cases())
    @settings(max_examples=60, deadline=None)
    def test_merge_is_bit_identical_to_unsharded_fold(self, case):
        X, k, labels, shards = case
        ranges = shard_bounds(len(X), shards)
        shard_labels = [labels[lo:hi] for lo, hi in ranges]
        merged, sums, counts = merge_shard_assignments(
            X, k, shard_labels, ranges
        )
        assert np.array_equal(merged, labels)
        assert sums.tobytes() == accumulate_cluster_sums(X, labels, k).tobytes()
        assert np.array_equal(counts, np.bincount(labels, minlength=k))

    def test_partial_sum_merge_counterexample(self):
        # The docstring's counterexample, pinned as a test: per-shard
        # partial sums associate differently and lose the small addend.
        X = np.array([[1.0], [1.0], [1e16]])
        labels = np.zeros(3, dtype=np.intp)
        ranges = [(0, 1), (1, 3)]
        _, sums, _ = merge_shard_assignments(
            X, 1, [labels[:1], labels[1:]], ranges
        )
        full_fold = accumulate_cluster_sums(X, labels, 1)
        partial = accumulate_cluster_sums(X[:1], labels[:1], 1) + (
            accumulate_cluster_sums(X[1:], labels[1:], 1)
        )
        assert sums.tobytes() == full_fold.tobytes()
        assert partial.tobytes() != full_fold.tobytes()

    def test_lost_shard_rows_stay_unassigned(self):
        X = np.arange(12, dtype=np.float64).reshape(6, 2)
        labels = np.array([0, 1, 0, 1, 0, 1], dtype=np.intp)
        ranges = shard_bounds(6, 3)
        merged, sums, counts = merge_shard_assignments(
            X, 2, [labels[0:2], None, labels[4:6]], ranges, lost=[1]
        )
        assert merged.tolist() == [0, 1, -1, -1, 0, 1]
        survivors = np.array([0, 1, 4, 5])
        expect = accumulate_cluster_sums(X[survivors], labels[survivors], 2)
        assert sums.tobytes() == expect.tobytes()
        assert counts.tolist() == [2, 2]


class TestWiring:
    def test_make_algorithm_requires_vectorized_backend(self):
        with pytest.raises(ConfigurationError, match="vectorized"):
            make_algorithm("lloyd", shards=2)

    def test_make_algorithm_rejects_unsharded_algorithms(self):
        with pytest.raises(ConfigurationError):
            make_algorithm("yinyang", backend="vectorized", shards=2)

    def test_make_sharded_algorithm_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_sharded_algorithm("annulus")

    def test_make_algorithm_builds_sharded_instance(self):
        algorithm = make_algorithm("lloyd", backend="vectorized", shards=4)
        assert type(algorithm) is SHARDED_ALGORITHMS["lloyd"]
        assert algorithm.shards == 4

    def test_shard_policy_alone_selects_sharded_engine(self):
        algorithm = make_algorithm(
            "elkan", backend="vectorized", shard_policy="degrade"
        )
        assert type(algorithm) is SHARDED_ALGORITHMS["elkan"]
        assert algorithm.shard_policy.mode == "degrade"

    def test_plain_vectorized_without_shards(self):
        algorithm = make_algorithm("lloyd", backend="vectorized")
        assert type(algorithm) is VECTORIZED_ALGORITHMS["lloyd"]

    def test_unknown_runner_rejected(self):
        with pytest.raises(ConfigurationError):
            SHARDED_ALGORITHMS["lloyd"](shards=2, runner="thread")

    def test_kernel_registry_covers_every_algorithm(self):
        # Every sharded algorithm's kernels must be registered so R007
        # checks them as pool-dispatch roots (docs/sharding.md).
        assert set(SHARD_KERNELS) == {
            "lloyd", "elkan_seed", "elkan", "hamerly_seed", "hamerly"
        }
        for kernel in SHARD_KERNELS.values():
            assert callable(kernel)


class TestHarnessIntegration:
    def test_run_algorithm_sharded_matches_serial(self, chaos_task):
        X, k, _ = chaos_task
        want = run_algorithm(
            "lloyd", X, k, repeats=1, max_iter=5, seed=0, backend="vectorized"
        )
        got = run_algorithm(
            "lloyd", X, k, repeats=1, max_iter=5, seed=0,
            backend="vectorized", shards=2, shard_policy="strict",
        )
        assert got.sse == want.sse
        assert got.n_iter == want.n_iter
        assert got.distance_computations == want.distance_computations
        assert got.point_accesses == want.point_accesses

    def test_parallel_compare_sharded_matches_serial(self, chaos_task):
        X, k, _ = chaos_task
        want = run_algorithm(
            "elkan", X, k, repeats=1, max_iter=5, seed=0, backend="vectorized"
        )
        # Pool workers are daemonic: the engine must auto-fall back to the
        # inline runner and still produce identical results.
        (got,) = parallel_compare(
            ["elkan"], X, k, repeats=1, max_iter=5, seed=0,
            backend="vectorized", shards=3,
        )
        assert got.sse == want.sse
        assert got.n_iter == want.n_iter
        assert got.distance_computations == want.distance_computations
        assert got.bound_accesses == want.bound_accesses

    def test_explicit_process_runner_in_daemon_is_classified(
        self, chaos_task, monkeypatch
    ):
        # An explicit runner="process" inside a daemonic pool worker must
        # raise a classified ConfigurationError, not multiprocessing's
        # bare AssertionError at Process.start().
        import repro.exec.sharded as sharded_mod

        X, k, _ = chaos_task

        class FakeDaemon:
            daemon = True

        monkeypatch.setattr(
            sharded_mod.multiprocessing, "current_process", FakeDaemon
        )
        algo = SHARDED_ALGORITHMS["lloyd"](shards=2, runner="process")
        with pytest.raises(ConfigurationError, match="daemonic"):
            algo.fit(X, k, seed=0)
        # auto still falls back cleanly under the same conditions.
        got = SHARDED_ALGORITHMS["lloyd"](shards=2, runner="auto").fit(
            X, k, seed=0
        )
        assert got.extras["shard_runner"] == "inline"


class TestDataPlaneProfile:
    """The PR 10 control/data-plane split: workers spawn once per fit and
    per-iteration IPC excludes the point shard (docs/sharding.md)."""

    @pytest.mark.parametrize("name", sorted(SHARDED_ALGORITHMS))
    def test_pool_runner_bit_identical_every_algorithm(self, name, task):
        X, k, C0, max_iter = task
        want = VECTORIZED_ALGORITHMS[name]().fit(
            X, k, initial_centroids=C0, max_iter=max_iter
        )
        got = SHARDED_ALGORITHMS[name](shards=4, runner="process").fit(
            X, k, initial_centroids=C0, max_iter=max_iter
        )
        assert_results_identical(got, want, context=f"{name}/pool")

    def test_workers_spawn_once_per_fit(self, task):
        X, k, C0, max_iter = task
        result = SHARDED_ALGORITHMS["lloyd"](shards=3, runner="process").fit(
            X, k, initial_centroids=C0, max_iter=max_iter
        )
        pool = result.extras["pool"]
        assert pool["workers"] == 3
        assert pool["spawned_processes"] == 3  # one spawn per slot, ever
        assert pool["respawns"] == 0
        assert result.n_iter > 1  # many iterations, still one spawn each

    def test_per_iteration_ipc_excludes_point_shard(self, task):
        X, k, C0, max_iter = task
        result = SHARDED_ALGORITHMS["elkan"](shards=3, runner="process").fit(
            X, k, initial_centroids=C0, max_iter=max_iter
        )
        ipc = result.extras["ipc"]
        # The O(k*d) contract: steady-state traffic per iteration must be
        # far below one point matrix, and the bulk bytes must have gone
        # through the shared-memory plane instead.
        assert 0 < ipc["bytes_per_iter"] < X.nbytes
        assert ipc["data_plane_bytes"] >= X.nbytes
        assert ipc["bytes_sent"] > 0 and ipc["bytes_received"] > 0
        assert result.extras["shard_runner"] == "process"

    def test_inline_runner_reports_no_ipc(self, task):
        X, k, C0, _ = task
        result = SHARDED_ALGORITHMS["lloyd"](shards=3, runner="inline").fit(
            X, k, initial_centroids=C0, max_iter=3
        )
        assert result.extras["shard_runner"] == "inline"
        assert "ipc" not in result.extras
        assert "pool" not in result.extras

    def test_chaos_respawn_is_counted_and_bit_identical(self, task):
        X, k, C0, max_iter = task
        want = VECTORIZED_ALGORITHMS["lloyd"]().fit(
            X, k, initial_centroids=C0, max_iter=max_iter
        )
        got = SHARDED_ALGORITHMS["lloyd"](
            shards=3, shard_policy="recompute", runner="process",
            fault_plan=FaultPlan.parse("kill:lloyd:shard=2:iter=2"),
            execution=ExecutionPolicy(timeout=10.0),
        ).fit(X, k, initial_centroids=C0, max_iter=max_iter)
        assert_results_identical(got, want, context="pool-respawn")
        assert got.extras["pool"]["respawns"] == 1

    def test_checkpoint_resume_across_pool_restart(self, tmp_path, task):
        """A fit killed mid-flight resumes on a *fresh* pool (new worker
        processes, republished data plane) to the identical final model."""
        X, k, C0, max_iter = task
        path = tmp_path / "ckpt.jsonl"
        want = VECTORIZED_ALGORITHMS["lloyd"]().fit(
            X, k, initial_centroids=C0, max_iter=max_iter
        )
        with pytest.raises(ShardFailedError):
            SHARDED_ALGORITHMS["lloyd"](
                shards=3, runner="process", checkpoint=path,
                fault_plan=FaultPlan.parse("raise:*:shard=1:iter=3"),
                execution=ExecutionPolicy(timeout=10.0),
            ).fit(X, k, initial_centroids=C0, max_iter=max_iter)
        resumed = SHARDED_ALGORITHMS["lloyd"](
            shards=3, runner="process", checkpoint=path,
        ).fit(X, k, initial_centroids=C0, max_iter=max_iter)
        assert_results_identical(resumed, want, context="pool-resume")
        assert resumed.extras["resumed_iterations"] == 3

    def test_data_plane_released_between_fits(self, task):
        from repro.exec.shm import live_lease_count

        X, k, C0, _ = task
        algorithm = SHARDED_ALGORITHMS["lloyd"](shards=2, runner="process")
        baseline = live_lease_count()
        algorithm.fit(X, k, initial_centroids=C0, max_iter=3)
        assert live_lease_count() == baseline
        # A second fit on the same instance republished cleanly.
        algorithm.fit(X, k, initial_centroids=C0, max_iter=3)
        assert live_lease_count() == baseline
