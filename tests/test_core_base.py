"""Tests for the shared algorithm skeleton (fit contract, refinement modes,
convergence, result bookkeeping)."""

import numpy as np
import pytest

from repro.common.exceptions import ConfigurationError, ValidationError
from repro.core import compute_sse, make_algorithm
from repro.core.lloyd import LloydKMeans


class TestFitContract:
    def test_rejects_bad_initial_shape(self, blobs_small):
        with pytest.raises(ConfigurationError, match="initial_centroids"):
            LloydKMeans().fit(blobs_small, 3, initial_centroids=np.ones((2, 6)))

    def test_rejects_bad_max_iter(self, blobs_small):
        with pytest.raises(ConfigurationError, match="max_iter"):
            LloydKMeans().fit(blobs_small, 3, max_iter=0)

    def test_rejects_k_above_n(self):
        X = np.random.default_rng(0).normal(size=(5, 2))
        with pytest.raises(ValidationError):
            LloydKMeans().fit(X, 10)

    def test_rejects_nan_data(self):
        X = np.ones((10, 2))
        X[3, 0] = np.nan
        with pytest.raises(ValidationError):
            LloydKMeans().fit(X, 2)

    def test_max_iter_respected(self, blobs_small):
        result = LloydKMeans().fit(blobs_small, 8, max_iter=3, seed=0)
        assert result.n_iter <= 3
        assert len(result.iteration_stats) == result.n_iter

    def test_initial_centroids_not_mutated(self, blobs_small, centroids_factory):
        C0 = centroids_factory(blobs_small, 4)
        snapshot = C0.copy()
        LloydKMeans().fit(blobs_small, 4, initial_centroids=C0, max_iter=10)
        np.testing.assert_array_equal(C0, snapshot)

    def test_seed_reproducibility(self, blobs_small):
        a = LloydKMeans().fit(blobs_small, 5, seed=42, max_iter=20)
        b = LloydKMeans().fit(blobs_small, 5, seed=42, max_iter=20)
        np.testing.assert_array_equal(a.labels, b.labels)
        assert a.sse == b.sse

    def test_random_init_supported(self, blobs_small):
        result = LloydKMeans().fit(blobs_small, 5, init="random", seed=1, max_iter=20)
        assert result.n_iter >= 1


class TestResultContents:
    def test_result_fields(self, blobs_small):
        result = LloydKMeans().fit(blobs_small, 6, seed=0, max_iter=15)
        assert result.algorithm == "lloyd"
        assert result.n == len(blobs_small)
        assert result.d == blobs_small.shape[1]
        assert result.k == 6
        assert result.labels.shape == (len(blobs_small),)
        assert result.centroids.shape == (6, blobs_small.shape[1])
        assert result.sse > 0.0

    def test_sse_matches_direct_computation(self, blobs_small):
        result = LloydKMeans().fit(blobs_small, 4, seed=0, max_iter=15)
        assert result.sse == pytest.approx(
            compute_sse(blobs_small, result.labels, result.centroids)
        )

    def test_sse_decreases_monotonically_over_restarts(self, blobs_small):
        # Not a property of one run; here we check SSE of converged >= 0 and
        # that more iterations never increase SSE.
        short = LloydKMeans().fit(blobs_small, 6, seed=3, max_iter=1)
        long = LloydKMeans().fit(blobs_small, 6, seed=3, max_iter=30)
        assert long.sse <= short.sse + 1e-9

    def test_iteration_stats_counters_sum(self, blobs_small):
        result = LloydKMeans().fit(blobs_small, 5, seed=0, max_iter=10)
        total = sum(s.distance_computations for s in result.iteration_stats)
        assert total == result.counters.distance_computations

    def test_lloyd_distance_count(self, blobs_small):
        result = LloydKMeans().fit(blobs_small, 5, seed=0, max_iter=10)
        assert result.counters.distance_computations == len(blobs_small) * 5 * result.n_iter

    def test_summary_round_trips_to_json(self, blobs_small):
        import json

        result = LloydKMeans().fit(blobs_small, 3, seed=0, max_iter=5)
        text = json.dumps(result.summary())
        assert json.loads(text)["algorithm"] == "lloyd"

    def test_modeled_cost_positive(self, blobs_small):
        result = LloydKMeans().fit(blobs_small, 3, seed=0, max_iter=5)
        assert result.modeled_cost > 0


class TestRefinementModes:
    def test_rescan_and_delta_agree(self, blobs_small, centroids_factory):
        C0 = centroids_factory(blobs_small, 5)
        rescan = LloydKMeans(refinement="rescan").fit(
            blobs_small, 5, initial_centroids=C0, max_iter=30
        )
        delta = LloydKMeans(refinement="delta").fit(
            blobs_small, 5, initial_centroids=C0, max_iter=30
        )
        np.testing.assert_array_equal(rescan.labels, delta.labels)
        np.testing.assert_allclose(rescan.centroids, delta.centroids, atol=1e-8)

    def test_delta_reads_fewer_points(self, blobs_small, centroids_factory):
        C0 = centroids_factory(blobs_small, 5)
        rescan = LloydKMeans(refinement="rescan").fit(
            blobs_small, 5, initial_centroids=C0, max_iter=30
        )
        delta = LloydKMeans(refinement="delta").fit(
            blobs_small, 5, initial_centroids=C0, max_iter=30
        )
        assert delta.counters.point_accesses < rescan.counters.point_accesses

    def test_empty_cluster_keeps_centroid(self):
        # Force an empty cluster: two distant blobs, three centroids with
        # one placed far away from all data.
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 0.1, size=(50, 2)), rng.normal(10, 0.1, size=(50, 2))])
        C0 = np.array([[0.0, 0.0], [10.0, 10.0], [500.0, 500.0]])
        result = LloydKMeans().fit(X, 3, initial_centroids=C0, max_iter=20)
        # The far-away centroid owns no points and must stay put.
        np.testing.assert_allclose(result.centroids[2], [500.0, 500.0])
        assert set(np.unique(result.labels)) <= {0, 1}


class TestPruningRatio:
    def test_lloyd_zero(self, blobs_small):
        result = LloydKMeans().fit(blobs_small, 5, seed=0, max_iter=10)
        assert result.pruning_ratio == 0.0

    def test_accelerated_in_unit_interval(self, blobs_small):
        result = make_algorithm("yinyang").fit(blobs_small, 10, seed=0, max_iter=30)
        assert 0.0 <= result.pruning_ratio <= 1.0
